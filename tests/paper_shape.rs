//! Cross-crate integration test: the paper's qualitative results must hold
//! on the benchmark suite at test scale.
//!
//! These are *shape* assertions (who wins, which counters move which way),
//! not absolute-number assertions — the point of the reproduction.

use hyperpred::{mean_speedup, run_experiment, Experiment, Model, Pipeline};
use hyperpred_workloads::Scale;
use std::sync::OnceLock;

fn fig8_results() -> &'static [hyperpred::BenchResult] {
    static CACHE: OnceLock<Vec<hyperpred::BenchResult>> = OnceLock::new();
    CACHE.get_or_init(|| {
        run_experiment(&Experiment::fig8(), Scale::Test, &Pipeline::default()).expect("fig8")
    })
}

#[test]
fn all_models_agree_on_every_benchmark() {
    // run_workload itself asserts result equality across models; reaching
    // here means all 15 benchmarks agreed under all three models.
    let results = fig8_results();
    assert_eq!(results.len(), 15);
}

#[test]
fn predication_order_holds_on_average() {
    let results = fig8_results();
    let sup = mean_speedup(results, Model::Superblock);
    let cmov = mean_speedup(results, Model::CondMove);
    let full = mean_speedup(results, Model::FullPred);
    assert!(sup > 1.0, "8-issue superblock must beat 1-issue ({sup:.2})");
    assert!(
        cmov > sup,
        "conditional move must beat superblock on average ({cmov:.2} !> {sup:.2})"
    );
    assert!(
        full >= cmov * 0.98,
        "full predication must at least match conditional move ({full:.2} vs {cmov:.2})"
    );
}

#[test]
fn predicated_models_execute_fewer_branches() {
    // Table 3's headline: hyperblock formation removes a large share of
    // dynamic branches under both predication models.
    let results = fig8_results();
    let total = |m: Model| -> u64 { results.iter().map(|r| r.stats(m).branches).sum() };
    let sup = total(Model::Superblock);
    let cmov = total(Model::CondMove);
    let full = total(Model::FullPred);
    assert!(
        cmov < sup * 8 / 10,
        "cmov should remove >20% of branches ({cmov} vs {sup})"
    );
    assert!(
        full < sup * 8 / 10,
        "full predication should remove >20% of branches ({full} vs {sup})"
    );
}

#[test]
fn cmov_model_runs_more_instructions_than_full() {
    // Table 2's headline: conditional-move code pays in dynamic
    // instruction count; full predication pays far less.
    let results = fig8_results();
    let total = |m: Model| -> u64 { results.iter().map(|r| r.stats(m).insts).sum() };
    let sup = total(Model::Superblock);
    let cmov = total(Model::CondMove);
    let full = total(Model::FullPred);
    assert!(
        cmov > full,
        "cmov executes more instructions ({cmov} !> {full})"
    );
    assert!(
        cmov > sup,
        "cmov executes more instructions than superblock ({cmov} !> {sup})"
    );
}

#[test]
fn second_branch_slot_helps_the_baseline() {
    // Figure 9 vs Figure 8: going from 1 to 2 branch slots lifts the
    // superblock model (it is the branch-bound one).
    let pipe = Pipeline::default();
    let f8 = run_experiment(&Experiment::fig8(), Scale::Test, &pipe).unwrap();
    let f9 = run_experiment(&Experiment::fig9(), Scale::Test, &pipe).unwrap();
    let sup8 = mean_speedup(&f8, Model::Superblock);
    let sup9 = mean_speedup(&f9, Model::Superblock);
    assert!(
        sup9 > sup8,
        "2-branch should help the superblock baseline ({sup9:.2} !> {sup8:.2})"
    );
}

#[test]
fn real_caches_never_help() {
    let pipe = Pipeline::default();
    let f8 = run_experiment(&Experiment::fig8(), Scale::Test, &pipe).unwrap();
    let f11 = run_experiment(&Experiment::fig11(), Scale::Test, &pipe).unwrap();
    for (a, b) in f8.iter().zip(&f11) {
        for m in Model::ALL {
            assert!(
                b.stats(m).cycles >= a.stats(m).cycles,
                "{}: caches cannot speed {m} up",
                a.name
            );
        }
    }
}

#[test]
fn mispredictions_collapse_on_predicated_wc() {
    // The paper's wc row: 33K -> 57 mispredictions. The same collapse must
    // show here: wc's in-word state branch is data-dependent and poorly
    // predicted, and if-conversion removes it.
    let results = fig8_results();
    let wc = results.iter().find(|r| r.name == "wc").unwrap();
    let sup_mp = wc.stats(Model::Superblock).mispredicts;
    let full_mp = wc.stats(Model::FullPred).mispredicts;
    assert!(
        full_mp * 5 < sup_mp.max(5),
        "wc mispredictions should collapse ({sup_mp} -> {full_mp})"
    );
}
