//! Golden-file pin of every simulation result in the paper matrix.
//!
//! The emulator and timing simulator are deterministic, so the full
//! matrix — every experiment x workload x model cell plus the shared
//! baseline — must produce *bit-identical* `SimStats` across refactors
//! of the hot path (pre-decoded dispatch, scoreboard layout changes,
//! caching). The golden file was recorded before the pre-decoded
//! emulator landed; any diff here means the rewrite changed observable
//! simulation behavior, not just its speed.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! HYPERPRED_GOLDEN_BLESS=1 cargo test -p hyperpred --test simstats_golden
//! ```
//!
//! The default run covers test scale. Full scale is the same check on
//! the big workloads and runs only when `HYPERPRED_GOLDEN_FULL=1` (it
//! is a release-build, seconds-long matrix; CI's tier-1 job stays
//! fast). Bless full scale with both variables set.

use hyperpred::workloads::Scale;
use hyperpred::{run_matrix_with_stats, Experiment, Model, Pipeline};
use hyperpred_sim::SimStats;
use std::fmt::Write as _;
use std::path::PathBuf;

fn stats_line(out: &mut String, exp: &str, workload: &str, who: &str, s: &SimStats) {
    writeln!(
        out,
        "{exp}|{workload}|{who}|cycles={} insts={} nullified={} branches={} \
         mispredicts={} loads={} stores={} icache={} dcache={} ret={}",
        s.cycles,
        s.insts,
        s.nullified,
        s.branches,
        s.mispredicts,
        s.loads,
        s.stores,
        s.icache_misses,
        s.dcache_misses,
        s.ret
    )
    .expect("write to String");
}

/// Canonical dump of every cell of the full figure matrix at `scale`.
fn matrix_dump(scale: Scale) -> String {
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    let pipe = Pipeline::default();
    let out = run_matrix_with_stats(&exps, scale, &pipe, 0).expect("matrix runs clean");
    let mut dump = String::new();
    for (exp, row) in exps.iter().zip(&out.figures) {
        for r in row {
            stats_line(&mut dump, exp.title, r.name, "baseline", &r.base);
            for model in Model::ALL {
                let slug = match model {
                    Model::Superblock => "superblock",
                    Model::CondMove => "condmove",
                    Model::FullPred => "fullpred",
                };
                stats_line(&mut dump, exp.title, r.name, slug, &r.models[model.index()]);
            }
        }
    }
    dump
}

fn golden_path(scale: Scale) -> PathBuf {
    let name = match scale {
        Scale::Test => "simstats_test_scale.txt",
        Scale::Full => "simstats_full_scale.txt",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_scale(scale: Scale) {
    let dump = matrix_dump(scale);
    let path = golden_path(scale);
    if std::env::var_os("HYPERPRED_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &dump).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it first",
            path.display()
        )
    });
    if dump != want {
        let diff: Vec<_> = want
            .lines()
            .zip(dump.lines())
            .filter(|(a, b)| a != b)
            .take(5)
            .map(|(a, b)| format!("  - {a}\n  + {b}"))
            .collect();
        panic!(
            "SimStats diverged from the committed golden matrix ({} lines differ; \
             first diffs:\n{}\nif the change is intentional, re-bless with \
             HYPERPRED_GOLDEN_BLESS=1)",
            want.lines()
                .zip(dump.lines())
                .filter(|(a, b)| a != b)
                .count()
                + want.lines().count().abs_diff(dump.lines().count()),
            diff.join("\n")
        );
    }
}

#[test]
fn matrix_simstats_match_golden_test_scale() {
    check_scale(Scale::Test);
}

#[test]
fn matrix_simstats_match_golden_full_scale() {
    if std::env::var_os("HYPERPRED_GOLDEN_FULL").is_none() {
        eprintln!("skipping full-scale golden check (set HYPERPRED_GOLDEN_FULL=1 to run)");
        return;
    }
    check_scale(Scale::Full);
}
