//! Property-based end-to-end testing: random MiniC programs must produce
//! identical results under every compilation model, at every issue width.
//!
//! Programs are generated from a seeded grammar (bounded loops, division
//! only by nonzero literals), so every generated program terminates and
//! never traps. proptest drives the seed, giving reproducible failures.

use hyperpred::emu::{
    DecodedModule, EmuError, Emulator, Event, NullSink, ReferenceEmulator, TraceSink,
};
use hyperpred::ir::{BlockId, FuncId, Module};
use hyperpred::lang::lower::entry_args;
use hyperpred::predoracle::{PredClaims, PredOracleSink};
use hyperpred::{evaluate, Model, Pipeline};
use hyperpred_sched::MachineConfig;
use hyperpred_sim::SimConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const VARS: [&str; 5] = ["a", "b", "c", "d", "e"];

struct Gen {
    r: StdRng,
    loops: usize,
    /// Allow division/modulo by a variable (may be zero at run time).
    /// The base grammar divides only by nonzero literals so every program
    /// is total; the differential suite flips this on to exercise the
    /// emulators' fault paths with programs that really do trap.
    div_by_var: bool,
}

impl Gen {
    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.r.gen_ratio(1, 3) {
            if self.r.gen_bool(0.5) {
                format!("{}", self.r.gen_range(-20..20))
            } else {
                VARS[self.r.gen_range(0..VARS.len())].to_string()
            }
        } else {
            let a = self.expr(depth - 1);
            let b = self.expr(depth - 1);
            match self.r.gen_range(0..12) {
                0 => format!("({a} + {b})"),
                1 => format!("({a} - {b})"),
                2 => format!("({a} * {b})"),
                3 if self.div_by_var && self.r.gen_bool(0.5) => format!("({a} / {b})"),
                3 => format!("({a} / {})", self.r.gen_range(1..9)),
                4 if self.div_by_var && self.r.gen_bool(0.5) => format!("({a} % {b})"),
                4 => format!("({a} % {})", self.r.gen_range(1..9)),
                5 => format!("({a} < {b})"),
                6 => format!("({a} == {b})"),
                7 => format!("({a} && {b})"),
                8 => format!("({a} || {b})"),
                9 => format!("({a} > {b} ? {a} : {b})"),
                10 => format!("({a} & {b})"),
                _ => format!("(!{a})"),
            }
        }
    }

    fn stmt(&mut self, depth: usize, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.r.gen_range(0..6) {
            0 | 1 => {
                let v = VARS[self.r.gen_range(0..VARS.len())];
                let e = self.expr(2);
                let op = ["=", "+=", "-="][self.r.gen_range(0..3)];
                out.push_str(&format!("{pad}{v} {op} {e};\n"));
            }
            2 if depth > 0 => {
                let c = self.expr(2);
                out.push_str(&format!("{pad}if ({c}) {{\n"));
                self.stmt(depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                self.stmt(depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            3 if depth > 0 => {
                // Bounded loop with a unique induction variable.
                let i = format!("i{}", self.loops);
                self.loops += 1;
                let n = self.r.gen_range(1..8);
                out.push_str(&format!("{pad}for ({i} = 0; {i} < {n}; {i} += 1) {{\n"));
                self.stmt(depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let v = VARS[self.r.gen_range(0..VARS.len())];
                let e = self.expr(1);
                out.push_str(&format!("{pad}{v} ^= {e};\n"));
            }
        }
    }

    fn program(&mut self) -> String {
        let mut body = String::new();
        let nstmt = self.r.gen_range(3..8);
        for _ in 0..nstmt {
            self.stmt(2, &mut body, 1);
        }
        if self.div_by_var {
            // Divisors that are nonzero for every profiling argument the
            // suite uses (a0 in -8..9, b0 in -6..7) but zero for some run
            // arguments (a0 in -11..12, b0 in -9..10) — so the fault paths
            // under test fire at run time on trained, verified modules.
            body.push_str("    d += (17 / (a0 + 11)) + (b0 / (b0 + 9));\n");
        }
        // Declare enough loop variables up front.
        let mut decls = String::new();
        for k in 0..self.loops.max(1) {
            decls.push_str(&format!("    int i{k}; i{k} = 0;\n"));
        }
        format!(
            "int main(int a0, int b0) {{\n\
             \x20   int a; int b; int c; int d; int e;\n\
             \x20   a = a0; b = b0; c = a0 - b0; d = 7; e = -3;\n\
             {decls}{body}\
             \x20   return a + b * 3 + c * 5 + d * 7 + e * 11;\n}}"
        )
    }
}

fn check_seed(seed: u64) {
    let mut g = Gen {
        r: StdRng::seed_from_u64(seed),
        loops: 0,
        div_by_var: false,
    };
    let src = g.program();
    let pipe = Pipeline::default();
    let sim = SimConfig::default();
    let args = [(seed % 17) as i64 - 8, ((seed / 17) % 13) as i64 - 6];
    let mut results = Vec::new();
    for model in Model::ALL {
        for machine in [MachineConfig::one_issue(), MachineConfig::new(8, 2)] {
            let s = evaluate(&src, &args, model, machine, sim, &pipe)
                .unwrap_or_else(|e| panic!("seed {seed}: {model} failed: {e}\n{src}"));
            results.push((model, machine.issue_width, s.ret));
        }
    }
    let want = results[0].2;
    for (model, width, got) in &results {
        assert_eq!(
            *got, want,
            "seed {seed}: {model} at {width}-issue diverged\n{src}"
        );
    }

    // Width monotonicity: a machine with strictly more resources never
    // takes more cycles (in-order issue, same latencies and predictor).
    for model in Model::ALL {
        let narrow = evaluate(&src, &args, model, MachineConfig::one_issue(), sim, &pipe)
            .unwrap()
            .cycles;
        let wide = evaluate(&src, &args, model, MachineConfig::new(8, 2), sim, &pipe)
            .unwrap()
            .cycles;
        assert!(
            wide <= narrow,
            "seed {seed}: {model} slower on the wider machine ({wide} > {narrow})\n{src}"
        );
    }
}

/// The frontend must be total: any string — arbitrary Unicode noise,
/// C-flavored character soup, or near-miss token streams — produces
/// either a module or a typed `CompileError`. A panic fails the test.
/// Bytes are drawn from a seeded generator so proptest can shrink on the
/// seed (the vendored proptest has no byte-vector strategy).
fn check_frontend_total(seed: u64) {
    let mut r = StdRng::seed_from_u64(seed);
    let len = r.gen_range(0..400usize);

    // Flavor 1: arbitrary Unicode scalar values (exercises the lexer's
    // char handling).
    let noise: String = (0..len)
        .filter_map(|_| char::from_u32(r.gen_range(0i64..0x11_0000) as u32))
        .collect();

    // Flavor 2: soup from the language's own alphabet (lexes further,
    // fails deeper).
    const ALPHABET: &[u8] = b"abi{}()[];=+-*/%<>!&|^?:, \n0123456789\"'#.~$@\\";
    let soup: String = (0..len)
        .map(|_| ALPHABET[r.gen_range(0..ALPHABET.len())] as char)
        .collect();

    // Flavor 3: random token streams (syntactically plausible fragments
    // that stress the parser's error paths, not just the lexer's).
    const TOKENS: &[&str] = &[
        "int",
        "if",
        "else",
        "for",
        "while",
        "return",
        "main",
        "x",
        "i0",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "=",
        "+=",
        "-=",
        "^=",
        "+",
        "-",
        "*",
        "/",
        "%",
        "<",
        ">",
        "==",
        "!=",
        "&&",
        "||",
        "!",
        "?",
        ":",
        "0",
        "7",
        "-3",
        "12345678901234567890",
    ];
    let tokens: String = (0..len)
        .map(|_| TOKENS[r.gen_range(0..TOKENS.len())])
        .collect::<Vec<_>>()
        .join(" ");

    for src in [noise, soup, tokens] {
        // Ok or Err are both fine; reaching this statement's end is the
        // property under test.
        let _ = hyperpred::lang::compile(&src);
    }
}

/// Records every sink callback, making two emulators' traces directly
/// comparable (`Event` is `PartialEq`).
#[derive(Default)]
struct Recorder {
    blocks: Vec<(FuncId, BlockId)>,
    events: Vec<Event>,
}

impl TraceSink for Recorder {
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        self.blocks.push((func, block));
    }

    fn inst(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
}

/// Error classification for cross-emulator comparison. Payloads are
/// compared separately where they matter (fuel boundaries).
fn error_kind(e: &EmuError) -> &'static str {
    match e {
        EmuError::Trap { .. } => "trap",
        EmuError::DivByZero { .. } => "div-by-zero",
        EmuError::OutOfFuel { .. } => "out-of-fuel",
        EmuError::CallDepth { .. } => "call-depth",
        EmuError::Malformed { .. } => "malformed",
        EmuError::SinkAbort { .. } => "sink-abort",
        EmuError::NoFunc(_) => "no-func",
        EmuError::BadGlobal(_) => "bad-global",
    }
}

/// Fuel is an exact boundary, not a heuristic: a budget of exactly the
/// run's fetch count completes, while one instruction less fails with
/// `OutOfFuel` reporting the exhausted budget — on both emulators.
fn check_fuel_boundary(
    seed: u64,
    model: Model,
    module: &Module,
    decoded: &Arc<DecodedModule>,
    args: &[i64],
    fetched: u64,
) {
    let mut r = ReferenceEmulator::new(module).with_fuel(fetched);
    assert!(
        r.run("main", args, &mut NullSink).is_ok(),
        "seed {seed}: {model}: reference failed with exactly enough fuel ({fetched})"
    );
    let mut d = Emulator::with_decoded(module, Arc::clone(decoded)).with_fuel(fetched);
    assert!(
        d.run("main", args, &mut NullSink).is_ok(),
        "seed {seed}: {model}: decoded failed with exactly enough fuel ({fetched})"
    );

    let short = fetched - 1; // every run fetches at least a return
    let mut r = ReferenceEmulator::new(module).with_fuel(short);
    let r_err = r.run("main", args, &mut NullSink).unwrap_err();
    let mut d = Emulator::with_decoded(module, Arc::clone(decoded)).with_fuel(short);
    let d_err = d.run("main", args, &mut NullSink).unwrap_err();
    for (who, err) in [("reference", &r_err), ("decoded", &d_err)] {
        match err {
            EmuError::OutOfFuel { ctx, fuel } => {
                assert_eq!(*fuel, short, "seed {seed}: {model}: {who} wrong budget");
                assert_eq!(
                    ctx.fetched, short,
                    "seed {seed}: {model}: {who} stopped at the wrong instruction"
                );
            }
            other => panic!("seed {seed}: {model}: {who} with fuel {short}: {other:?}"),
        }
    }
}

/// Differential oracle: the pre-decoded emulator must be observationally
/// identical to [`ReferenceEmulator`] — same return value and fetch count,
/// same event and block-entry streams, same error classification when the
/// program faults, and fuel exhaustion at the same exact boundary.
///
/// `div_by_var` admits division by possibly-zero variables so some runs
/// genuinely fault; the run args differ from the profiled args so faults
/// the profiling run never saw still occur here.
fn check_differential(seed: u64, div_by_var: bool) {
    let mut g = Gen {
        r: StdRng::seed_from_u64(seed),
        loops: 0,
        div_by_var,
    };
    let src = g.program();
    let pipe = Pipeline::default();
    let profile_args = [(seed % 17) as i64 - 8, ((seed / 17) % 13) as i64 - 6];
    let run_args = [(seed % 23) as i64 - 11, ((seed / 23) % 19) as i64 - 9];
    let machine = MachineConfig::new(8, 2);
    for model in Model::ALL {
        let module = match pipe.compile(&src, &profile_args, model, &machine) {
            Ok(m) => m,
            // A hazardous program may fault its own profiling run; with no
            // compiled module there is nothing to compare.
            Err(_) if div_by_var => continue,
            Err(e) => panic!("seed {seed}: {model} failed to compile: {e}\n{src}"),
        };
        let decoded = Arc::new(DecodedModule::decode(&module));
        let args = entry_args(&run_args);

        let mut r_trace = Recorder::default();
        let mut r_emu = ReferenceEmulator::new(&module);
        let r_out = r_emu.run("main", &args, &mut r_trace);
        let mut d_trace = Recorder::default();
        let mut d_emu = Emulator::with_decoded(&module, Arc::clone(&decoded));
        let d_out = d_emu.run("main", &args, &mut d_trace);

        // Traces must agree even for faulting runs: both emulators deliver
        // the same events up to the same failure point.
        assert_eq!(
            r_trace.blocks, d_trace.blocks,
            "seed {seed}: {model}: block-entry streams diverge\n{src}"
        );
        for (i, (a, b)) in r_trace.events.iter().zip(&d_trace.events).enumerate() {
            assert_eq!(a, b, "seed {seed}: {model}: event {i} diverges\n{src}");
        }
        assert_eq!(
            r_trace.events.len(),
            d_trace.events.len(),
            "seed {seed}: {model}: event counts diverge\n{src}"
        );

        match (&r_out, &d_out) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.ret, b.ret, "seed {seed}: {model}: return values\n{src}");
                assert_eq!(
                    a.fetched, b.fetched,
                    "seed {seed}: {model}: fetch counts\n{src}"
                );
                assert_eq!(
                    a.fetched,
                    r_trace.events.len() as u64,
                    "seed {seed}: {model}: fetch count disagrees with event count\n{src}"
                );
                check_fuel_boundary(seed, model, &module, &decoded, &args, a.fetched);
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    error_kind(a),
                    error_kind(b),
                    "seed {seed}: {model}: error classes diverge: {a:?} vs {b:?}\n{src}"
                );
            }
            _ => panic!(
                "seed {seed}: {model}: outcomes diverge: reference {r_out:?} \
                 vs decoded {d_out:?}\n{src}"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_model_agrees_on_random_programs(seed in any::<u64>()) {
        check_seed(seed);
    }

    #[test]
    fn frontend_never_panics_on_garbage(seed in any::<u64>()) {
        check_frontend_total(seed);
    }
}

/// Static-vs-dynamic differential for the relation analysis: every claim
/// the analysis makes about the final compiled module ("p ⟂ q here",
/// "p ⊆ q here", "p is false here") is audited against the predicate
/// file both emulators actually produce, at every dynamic predicate
/// write. Run arguments differ from the profiled arguments, so paths the
/// profile never took are audited too.
fn check_pred_relations(seed: u64) {
    let mut g = Gen {
        r: StdRng::seed_from_u64(seed),
        loops: 0,
        div_by_var: false,
    };
    let src = g.program();
    let pipe = Pipeline::default();
    let profile_args = [(seed % 17) as i64 - 8, ((seed / 17) % 13) as i64 - 6];
    let run_args = [(seed % 23) as i64 - 11, ((seed / 23) % 19) as i64 - 9];
    let machine = MachineConfig::new(8, 2);
    for model in Model::ALL {
        let module = pipe
            .compile(&src, &profile_args, model, &machine)
            .unwrap_or_else(|e| panic!("seed {seed}: {model} failed to compile: {e}\n{src}"));
        let claims = PredClaims::build(&module);
        if claims.is_empty() {
            continue; // unpredicated model: nothing to audit
        }
        let args = entry_args(&run_args);
        let mut sink = PredOracleSink::new(&claims);
        Emulator::new(&module)
            .run("main", &args, &mut sink)
            .unwrap_or_else(|e| panic!("seed {seed}: {model}: decoded run failed: {e}\n{src}"));
        ReferenceEmulator::new(&module)
            .run("main", &args, &mut sink)
            .unwrap_or_else(|e| panic!("seed {seed}: {model}: reference run failed: {e}\n{src}"));
        assert!(
            sink.checked > 0,
            "seed {seed}: {model}: predicated module ran without auditing a single write\n{src}"
        );
        assert_eq!(
            sink.violation, None,
            "seed {seed}: {model}: relation claim refuted by execution\n{src}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn decoded_emulator_matches_reference(seed in any::<u64>()) {
        check_differential(seed, false);
    }

    #[test]
    fn decoded_emulator_matches_reference_on_faulting_programs(seed in any::<u64>()) {
        check_differential(seed, true);
    }

    #[test]
    fn relation_claims_survive_execution(seed in any::<u64>()) {
        check_pred_relations(seed);
    }
}

#[test]
fn known_seeds_regression() {
    // A handful of fixed seeds so CI always covers the same ground too.
    for seed in [0, 1, 2, 42, 0xDEADBEEF, u64::MAX] {
        check_seed(seed);
        check_differential(seed, false);
        check_differential(seed, true);
        check_pred_relations(seed);
    }
}
