//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the macro and method surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! [`BenchmarkId`], [`BatchSize`], [`black_box`] — backed by a simple
//! wall-clock loop: measure `sample_size` samples, report min/median/mean.
//! There is no statistical analysis, warm-up calibration, or HTML report;
//! numbers print to stderr in a stable one-line-per-benchmark format.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per measured invocation regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark's display identity: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints one summary line.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Times `f` against `input` and prints one summary line.
    pub fn bench_with_input<I, D: Display, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (printing happens per-benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `sample_size` calls of `routine`, excluding `setup` time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("bench {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        eprintln!(
            "bench {group}/{id}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            sorted[0],
            sorted[sorted.len() / 2],
            mean,
            sorted.len()
        );
    }
}

/// Declares a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3u32), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * v, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
