//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`any`], integer-range strategies, [`prop_assert!`],
//! [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Semantics differ from upstream in two deliberate ways: cases are drawn
//! from a fixed seeded stream (derived from the test's module path and
//! name), so every run explores the same cases — there is no persistence
//! file and no OS entropy — and failing cases are not shrunk; the panic
//! message reports the raw generated values instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner configuration (the used subset: case count, plus the
/// shrink-iteration knob kept so `..ProptestConfig::default()` updates
/// behave as upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upstream-compatible knob; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one test, derived from the test's identity so
    /// adding tests elsewhere never shifts this test's stream.
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_id.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ (u64::from(case) << 32 | u64::from(case)),
        };
        rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator bound in a `proptest!` signature via `arg in strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Weight edge values: property tests care about extremes.
                match rng.next_u64() % 16 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an unconstrained value of `T` (use as `any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Returns the `any`-value strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// item becomes a test that runs the body over `cases` generated bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(id, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || $body;
                #[allow(clippy::redundant_closure_call)]
                run();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its generated inputs don't satisfy `cond`.
/// Only valid directly inside a `proptest!` body (it returns from the
/// per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 0usize..7, y in -3i64..3) {
            prop_assert!(x < 7);
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn assume_skips(v in any::<u64>()) {
            prop_assume!(v.is_multiple_of(2));
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_test() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test_a", 5);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test_a", 5);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("mod::test_b", 5);
        let c: Vec<u64> = (0..8).map(|_| other.next_u64()).collect();
        assert_ne!(a, c);
    }
}
