//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small, fully deterministic subset of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range`, `gen_bool`, and `gen_ratio`. The generator is
//! SplitMix64, which passes the statistical bar these uses need (synthetic
//! workload inputs and property-test case generation) while keeping every
//! stream reproducible from its seed.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`;
//! everything in this workspace treats seeded streams as opaque, so only
//! determinism matters, not the exact bytes.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio: {numerator}/{denominator} is not a probability"
        );
        self.next_u64() % u64::from(denominator) < u64::from(numerator)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample, mirroring `SampleUniform`. The blanket
/// [`SampleRange`] impls below route both range forms here; keeping them
/// blanket (one impl per range shape) is what lets integer-literal ranges
/// unify with the call site's expected type, exactly as upstream does.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_between<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let off = (u128::from(rng.next_u64()) % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_between<R: RngCore>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One scramble round so nearby seeds diverge immediately.
            let mut r = StdRng { state: seed };
            r.next_u64();
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_run: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let c_run: Vec<i64> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(1..=9usize);
            assert!((1..=9).contains(&w));
            let f = r.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let b = r.gen_range(0..26u8);
            assert!(b < 26);
        }
    }

    #[test]
    fn bool_and_ratio_hit_both_sides() {
        let mut r = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "{trues}");
        let hits = (0..1200).filter(|_| r.gen_ratio(1, 12)).count();
        assert!((30..300).contains(&hits), "{hits}");
    }
}
