//! Trace-driven timing simulation: an in-order superscalar issue model
//! with register interlocks (scoreboard), BTB-based branch prediction, and
//! optional blocking caches — the paper's simulated machine (§4.1).
//!
//! The functional emulator streams the dynamic instruction stream of
//! *compiler-scheduled* code; this sink issues those instructions into a
//! `k`-wide in-order pipeline:
//!
//! * up to `issue_width` instructions enter per cycle, of which at most
//!   `branches_per_cycle` may be branch-class;
//! * an instruction waits for its source registers (and its guard
//!   predicate — suppression happens at the decode/issue stage, so the
//!   predicate must be ready) but never passes an older instruction
//!   (in-order issue);
//! * correctly predicted taken branches redirect fetch: younger
//!   instructions issue in a later cycle; mispredictions add the penalty;
//! * a data-cache miss blocks issue for the miss penalty (blocking cache);
//!   an instruction-cache miss stalls fetch likewise.
//!
//! Because issue flows continuously across block boundaries, independent
//! work from consecutive loop iterations overlaps exactly as on the real
//! machine — the effect that gives the paper's wide-issue speedups.

use crate::btb::{Btb, BtbConfig};
use crate::cache::{Cache, CacheConfig};
use hyperpred_emu::{DecodedModule, EmuError, Emulator, Event, TraceSink};
use hyperpred_ir::{Module, Op, PredType};
use hyperpred_sched::MachineConfig;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Default cycle budget: far above any real workload (the full-scale
/// suite peaks in the tens of millions of cycles) but finite, so a
/// pathological program aborts instead of hanging a worker forever.
pub const DEFAULT_CYCLE_LIMIT: u64 = 10_000_000_000;

/// A timing-simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The underlying functional emulation failed (trap, fuel, ...).
    Emu(EmuError),
    /// The cycle-budget watchdog fired: simulated time passed
    /// [`SimConfig::max_cycles`] (mirrors the emulator's instruction
    /// fuel, but in cycles, so schedule blowups are bounded too).
    CycleLimit {
        /// The budget that was exceeded.
        limit: u64,
        /// Instructions fetched before the watchdog fired.
        insts: u64,
    },
    /// The wall-clock watchdog fired: real time passed
    /// [`SimConfig::deadline`]. Complements the cycle budget: a cell can
    /// stay within its simulated-cycle budget yet still hold a worker for
    /// too much real time (huge module, slow host), and this bounds that.
    Deadline {
        /// Instructions fetched before the deadline passed.
        insts: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Emu(e) => write!(f, "{e}"),
            SimError::CycleLimit { limit, insts } => write!(
                f,
                "cycle budget of {limit} exhausted after {insts} fetched insts"
            ),
            SimError::Deadline { insts } => write!(
                f,
                "wall-clock deadline exceeded after {insts} fetched insts"
            ),
        }
    }
}

impl Error for SimError {}

impl From<EmuError> for SimError {
    fn from(e: EmuError) -> SimError {
        SimError::Emu(e)
    }
}

/// Memory hierarchy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MemoryModel {
    /// Single-cycle memory (the paper's "perfect caches").
    #[default]
    Perfect,
    /// I/D caches with the given geometry.
    Caches(CacheConfig),
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Memory hierarchy.
    pub memory: MemoryModel,
    /// Branch target buffer geometry.
    pub btb: BtbConfig,
    /// Cycles lost per mispredicted branch.
    pub mispredict_penalty: u32,
    /// Watchdog budget: the run aborts with [`SimError::CycleLimit`] once
    /// the simulated clock reaches this many cycles.
    pub max_cycles: u64,
    /// Wall-clock watchdog: the run aborts with [`SimError::Deadline`]
    /// once real time passes this instant. Checked cooperatively every
    /// 1024 fetched instructions, so the overrun is bounded by one check
    /// interval. `None` (the default) disables the deadline.
    pub deadline: Option<std::time::Instant>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            memory: MemoryModel::Perfect,
            btb: BtbConfig::default(),
            mispredict_penalty: 2,
            max_cycles: DEFAULT_CYCLE_LIMIT,
            deadline: None,
        }
    }
}

/// Results of a timing simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total execution cycles.
    pub cycles: u64,
    /// Fetched instructions (nullified included).
    pub insts: u64,
    /// Instructions nullified by a false guard.
    pub nullified: u64,
    /// Dynamic branches (conditional + jumps, nullified included).
    pub branches: u64,
    /// BTB mispredictions.
    pub mispredicts: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// I-cache misses (0 with perfect memory).
    pub icache_misses: u64,
    /// D-cache (load) misses (0 with perfect memory).
    pub dcache_misses: u64,
    /// Program result (entry function return value).
    pub ret: i64,
}

impl SimStats {
    /// Misprediction rate over dynamic branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

/// Per-static-instruction timing facts, baked once in [`CycleSim::new`]
/// so the per-event hot path never touches the [`Inst`] struct: no
/// `src_regs()` iterator over `Operand` enums, no latency `match` on the
/// opcode, no per-event `func`-relative offset arithmetic. Register and
/// predicate operands are stored as *global* scoreboard slots
/// (`reg_off[f] + r` resolved at build time); the fetch address and the
/// machine latency are baked outright.
///
/// [`Inst`]: hyperpred_ir::Inst
#[derive(Clone, Copy)]
struct InstInfo {
    /// Code-layout fetch address (blocks outside a layout base at 0).
    addr: u64,
    /// Machine latency of this opcode (the `Latencies::of` result).
    lat: u32,
    /// Global destination-register slot, or [`SLOT_NONE`].
    dst: u32,
    /// Global guard-predicate slot, or [`SLOT_NONE`].
    guard: u32,
    /// Start of this instruction's register sources in `src_slots`.
    src_off: u32,
    /// Start of this instruction's predicate destinations in `pdsts`.
    pdst_off: u32,
    /// First two source slots inlined for the [`F_FAST`] path (the
    /// read-only dummy slot when the instruction has fewer sources).
    s0: u32,
    s1: u32,
    nsrcs: u8,
    npdsts: u8,
    flags: u8,
}

/// "No slot" sentinel for [`InstInfo::dst`] / [`InstInfo::guard`].
const SLOT_NONE: u32 = u32::MAX;
/// Branch-class opcode: consumes a branch issue slot.
const F_BRANCH: u8 = 1;
/// Partial register define with a destination: interlocks on `dst`.
const F_PARTIAL: u8 = 2;
/// `pred_clear`/`pred_set`: bumps the whole-file clear epoch.
const F_PREDFILE: u8 = 4;
/// `call`/`ret`/`halt`: redirects fetch when executed.
const F_REDIRECT: u8 = 8;
/// Load / store opcode (mem-addr events charge the data cache).
const F_LD: u8 = 16;
const F_ST: u8 = 32;
/// Eligible for the reduced issue path: unguarded, not a branch/memory/
/// predicate/redirect op, no partial define, at most two register
/// sources. Only baked under perfect memory (no I-cache to model), so
/// the fast path can skip the fetch-stall check entirely. Such an
/// instruction can never be nullified (no guard), never carries
/// `taken`/`mem_addr`, and writes at most one register — its complete
/// timing effect is: interlock on two sources, take one issue slot,
/// post the destination ready time.
const F_FAST: u8 = 64;

/// The in-order issue model as a trace sink.
///
/// # Hot-path layout
///
/// This sink receives one [`Event`] per fetched instruction — hundreds of
/// millions per full-scale sweep — so everything the hot path needs per
/// event is pre-baked in [`CycleSim::new`] into one flat [`InstInfo`]
/// record per *static* instruction, found by
/// `info[inst_base[block_off[func] + block] + index]`. Every per-event
/// lookup is a dense-array read: no hashing, no allocation, no enum
/// payload matching, no branching on map residency. A whole-file
/// `pred_clear`/`pred_set` bumps a per-function *clear epoch* instead of
/// walking the predicate slots; a slot whose stamp is stale reads as "no
/// pending write".
///
/// # Scoreboard model (per function, not per activation)
///
/// Register and predicate ready-times are keyed by *(function,
/// register)* — by architectural register, not by dynamic activation.
/// Re-entering a function (a call inside a loop, recursion) therefore
/// observes the pending write times of the previous activation. That is
/// the intended model: the simulated machine issues in order with no
/// register renaming, so consecutive activations reuse the same physical
/// registers and a fresh activation's reads and writes genuinely
/// interlock against the previous one's in-flight results, exactly like
/// back-to-back iterations of a loop inside one function. (Clearing the
/// scoreboard at call boundaries would instead model a zero-cost rename
/// of the whole file on every call.) Pinned by the
/// `reentry_scoreboard_is_per_function_not_per_activation` test.
pub struct CycleSim {
    machine: MachineConfig,
    config: SimConfig,
    btb: Btb,
    icache: Option<Cache>,
    dcache: Option<Cache>,
    stats: SimStats,
    /// Cycle currently being filled with issue slots.
    cycle: u64,
    slots: u32,
    branch_slots: u32,
    /// Earliest cycle the next instruction may issue (fetch redirects,
    /// misprediction penalties, blocking-cache stalls).
    fetch_ready: u64,
    /// Baked per-static-instruction timing facts, all functions flat.
    info: Vec<InstInfo>,
    /// Index into `info` of instruction 0 of each block, flat over all
    /// functions: `inst_base[block_off[f] + b]`.
    inst_base: Vec<u32>,
    /// Start of each function's slice of `inst_base`.
    block_off: Vec<usize>,
    /// Global register-source slots, sliced per instruction by
    /// `InstInfo::{src_off, nsrcs}`.
    src_slots: Vec<u32>,
    /// Global predicate-destination slots + types, sliced per instruction
    /// by `InstInfo::{pdst_off, npdsts}`.
    pdsts: Vec<(u32, PredType)>,
    /// Cycle each (function, register) value becomes available, flat by
    /// global slot; 0 = no pending write.
    reg_ready: Vec<u64>,
    /// Cycle each (function, predicate) value becomes available, flat by
    /// global slot — meaningful only while the slot's stamp in
    /// `pred_epoch` matches the function's `clear_epoch`.
    pred_ready: Vec<u64>,
    /// Clear-epoch stamp per predicate slot (see `clear_epoch`).
    pred_epoch: Vec<u64>,
    /// Current clear generation per function; bumped by `pred_clear`/
    /// `pred_set` so stale per-predicate entries die in O(1).
    clear_epoch: Vec<u64>,
    /// Cycle the last `pred_clear`/`pred_set` per function takes effect.
    pred_clear_time: Vec<u64>,
    /// Set once the simulated clock passes the watchdog budget; the
    /// emulator polls it via [`TraceSink::aborted`].
    over_budget: bool,
    /// Set once real time passes [`SimConfig::deadline`]; polled the same
    /// way. Sampled only every 1024 fetched instructions to keep
    /// `Instant::now()` off the per-event hot path.
    past_deadline: bool,
}

impl CycleSim {
    /// Builds a sink for `module`. Instruction addresses follow code
    /// layout: 4 bytes per instruction, functions and blocks in order.
    pub fn new(module: &Module, machine: MachineConfig, config: SimConfig) -> CycleSim {
        let nf = module.funcs.len();
        let mut block_off = Vec::with_capacity(nf);
        let mut reg_off = Vec::with_capacity(nf);
        let mut pred_off = Vec::with_capacity(nf);
        let (mut blocks, mut regs, mut preds) = (0usize, 0usize, 0usize);
        for f in &module.funcs {
            block_off.push(blocks);
            reg_off.push(regs);
            pred_off.push(preds);
            blocks += f.blocks.len();
            regs += f.reg_count as usize;
            preds += f.pred_count as usize;
        }
        let mut block_base = vec![0u64; blocks];
        let mut addr = 0x10000u64; // text base
        for (fi, f) in module.funcs.iter().enumerate() {
            for &b in &f.layout {
                block_base[block_off[fi] + b.0 as usize] = addr;
                addr += 4 * f.block(b).insts.len() as u64;
            }
        }
        let (icache, dcache) = match config.memory {
            MemoryModel::Perfect => (None, None),
            MemoryModel::Caches(c) => (Some(Cache::new(c)), Some(Cache::new(c))),
        };
        // The two scoreboard dummies past the real register slots: reads
        // of absent fast-path sources hit `rd_dummy` (never written, so
        // always "ready at 0"); writes of absent fast-path destinations
        // land in `wr_dummy` (never read).
        let rd_dummy = regs as u32;
        let wr_dummy = regs as u32 + 1;
        // F_FAST elides the fetch-stall check, so it may only be baked
        // when there is no I-cache to model.
        let fast_ok = icache.is_none();
        // Bake one InstInfo per static instruction: global scoreboard
        // slots, fetch address, machine latency and classification flags.
        let lat = machine.latency;
        let mut info = Vec::new();
        let mut inst_base = vec![0u32; blocks];
        let mut src_slots = Vec::new();
        let mut pdsts: Vec<(u32, PredType)> = Vec::new();
        for (fi, f) in module.funcs.iter().enumerate() {
            let ro = reg_off[fi] as u32;
            let po = pred_off[fi] as u32;
            for (bi, blk) in f.blocks.iter().enumerate() {
                inst_base[block_off[fi] + bi] = info.len() as u32;
                let base = block_base[block_off[fi] + bi];
                for (k, inst) in blk.insts.iter().enumerate() {
                    let mut flags = 0u8;
                    if MachineConfig::is_branch_class(inst.op) {
                        flags |= F_BRANCH;
                    }
                    if inst.is_partial_reg_def() && inst.dst.is_some() {
                        flags |= F_PARTIAL;
                    }
                    if matches!(inst.op, Op::PredClear | Op::PredSet) {
                        flags |= F_PREDFILE;
                    }
                    if matches!(inst.op, Op::Call | Op::Ret | Op::Halt) {
                        flags |= F_REDIRECT;
                    }
                    if matches!(inst.op, Op::Ld(_)) {
                        flags |= F_LD;
                    }
                    if matches!(inst.op, Op::St(_)) {
                        flags |= F_ST;
                    }
                    let src_off = src_slots.len() as u32;
                    for r in inst.src_regs() {
                        src_slots.push(ro + r.0);
                    }
                    let nsrcs = (src_slots.len() as u32 - src_off) as u8;
                    let pdst_off = pdsts.len() as u32;
                    for pd in &inst.pdsts {
                        pdsts.push((po + pd.reg.0, pd.ty));
                    }
                    let mut dst = inst.dst.map_or(SLOT_NONE, |d| ro + d.0);
                    if fast_ok
                        && flags == 0
                        && inst.guard.is_none()
                        && !inst.is_partial_reg_def()
                        && inst.pdsts.is_empty()
                        && nsrcs <= 2
                    {
                        flags |= F_FAST;
                        if dst == SLOT_NONE {
                            dst = wr_dummy;
                        }
                    }
                    let s = &src_slots[src_off as usize..];
                    info.push(InstInfo {
                        addr: base + 4 * k as u64,
                        lat: lat.of(inst.op),
                        dst,
                        guard: inst.guard.map_or(SLOT_NONE, |g| po + g.0),
                        src_off,
                        pdst_off,
                        s0: s.first().copied().unwrap_or(rd_dummy),
                        s1: s.get(1).copied().unwrap_or(rd_dummy),
                        nsrcs,
                        npdsts: inst.pdsts.len() as u8,
                        flags,
                    });
                }
            }
        }
        CycleSim {
            machine,
            config,
            btb: Btb::new(config.btb),
            icache,
            dcache,
            stats: SimStats::default(),
            cycle: 0,
            slots: machine.issue_width,
            branch_slots: machine.branches_per_cycle,
            fetch_ready: 0,
            info,
            inst_base,
            block_off,
            src_slots,
            pdsts,
            // +2: the read-only and write-absorber dummy slots.
            reg_ready: vec![0; regs + 2],
            pred_ready: vec![0; preds],
            // Slots start one epoch behind `clear_epoch`, i.e. "absent".
            pred_epoch: vec![0; preds],
            clear_epoch: vec![1; nf],
            pred_clear_time: vec![0; nf],
            over_budget: false,
            past_deadline: false,
        }
    }

    /// Cycle the predicate in global `slot` of function `fk` is readable:
    /// its last define if still live in the current clear epoch, floored
    /// by the last whole-file write's completion time.
    #[inline]
    fn pred_time(&self, fk: usize, slot: usize) -> u64 {
        let defined = if self.pred_epoch[slot] == self.clear_epoch[fk] {
            self.pred_ready[slot]
        } else {
            0
        };
        defined.max(self.pred_clear_time[fk])
    }

    #[inline]
    fn advance_to(&mut self, c: u64) {
        if c > self.cycle {
            self.cycle = c;
            self.slots = self.machine.issue_width;
            self.branch_slots = self.machine.branches_per_cycle;
        }
    }

    /// Finalizes accounting and returns the statistics.
    pub fn finish(mut self) -> SimStats {
        self.stats.cycles = self.cycle + 1;
        self.stats.branches = self.btb.branches;
        self.stats.mispredicts = self.btb.mispredicts;
        if let Some(ic) = &self.icache {
            self.stats.icache_misses = ic.misses();
        }
        if let Some(dc) = &self.dcache {
            self.stats.dcache_misses = dc.misses();
        }
        self.stats
    }
}

impl TraceSink for CycleSim {
    fn inst(&mut self, ev: &Event) {
        self.stats.insts += 1;
        let fk = ev.func.0 as usize;
        let ii = self.inst_base[self.block_off[fk] + ev.block.0 as usize] as usize + ev.index;
        let info = self.info[ii];

        // Reduced path for the common case (see [`F_FAST`]): the
        // instruction's entire timing effect is two source interlocks,
        // one issue slot, one destination ready time. Bit-identical to
        // the full path below, which for such an instruction does the
        // same things plus many no-op checks.
        if info.flags & F_FAST != 0 {
            let earliest = self
                .fetch_ready
                .max(self.reg_ready[info.s0 as usize])
                .max(self.reg_ready[info.s1 as usize]);
            self.advance_to(earliest);
            if self.slots == 0 {
                // After an advance the full width is free, so one step
                // always yields a slot.
                self.advance_to(self.cycle + 1);
            }
            self.slots -= 1;
            self.reg_ready[info.dst as usize] = self.cycle + info.lat as u64;
            if self.cycle >= self.config.max_cycles {
                self.over_budget = true;
            }
            if let Some(deadline) = self.config.deadline {
                if self.stats.insts & 1023 == 0 && std::time::Instant::now() >= deadline {
                    self.past_deadline = true;
                }
            }
            return;
        }

        if ev.nullified {
            self.stats.nullified += 1;
        }

        // --- fetch ------------------------------------------------------
        let addr = info.addr;
        let mut earliest = self.fetch_ready;
        if let Some(ic) = &mut self.icache {
            if ic.read(addr) {
                // Fetch stalls while the line fills.
                self.fetch_ready =
                    self.fetch_ready.max(self.cycle).max(earliest) + ic.miss_penalty() as u64;
                earliest = self.fetch_ready;
            }
        }

        // --- register / predicate interlocks ------------------------------
        let so = info.src_off as usize;
        for k in 0..info.nsrcs as usize {
            earliest = earliest.max(self.reg_ready[self.src_slots[so + k] as usize]);
        }
        if info.flags & F_PARTIAL != 0 {
            earliest = earliest.max(self.reg_ready[info.dst as usize]);
        }
        // The guard must be ready at decode/issue.
        if info.guard != SLOT_NONE {
            earliest = earliest.max(self.pred_time(fk, info.guard as usize));
        }
        // OR/AND-type destinations are wired, not read-modify-write: defines
        // to the same predicate may issue together, so no interlock on the
        // destination.

        // --- issue ---------------------------------------------------------
        self.advance_to(earliest);
        let is_branch = info.flags & F_BRANCH != 0;
        loop {
            if self.slots == 0 || (is_branch && self.branch_slots == 0) {
                let next = self.cycle + 1;
                self.advance_to(next);
                continue;
            }
            break;
        }
        self.slots -= 1;
        if is_branch {
            self.branch_slots -= 1;
        }
        let issue = self.cycle;

        // --- execute -------------------------------------------------------
        let lat = info.lat as u64;
        let mut result_lat = lat;
        if let Some(maddr) = ev.mem_addr {
            if info.flags & F_LD != 0 {
                self.stats.loads += 1;
                if let Some(dc) = &mut self.dcache {
                    if dc.read(maddr) {
                        // Blocking cache: issue stalls until the fill.
                        let pen = dc.miss_penalty() as u64;
                        result_lat += pen;
                        self.fetch_ready = self.fetch_ready.max(issue + pen);
                    }
                }
            } else if info.flags & F_ST != 0 {
                self.stats.stores += 1;
                if let Some(dc) = &mut self.dcache {
                    dc.write(maddr);
                }
            }
        }
        if !ev.nullified {
            if info.dst != SLOT_NONE {
                self.reg_ready[info.dst as usize] = issue + result_lat;
            }
            if info.flags & F_PREDFILE != 0 {
                // Writes the whole file; everything becomes (re)available
                // one cycle later. Bumping the epoch retires every
                // per-predicate entry of this function in O(1).
                self.clear_epoch[fk] += 1;
                self.pred_clear_time[fk] = issue + result_lat;
            }
            let po = info.pdst_off as usize;
            for k in 0..info.npdsts as usize {
                let (slot, ty) = self.pdsts[po + k];
                let t = issue + lat;
                let ready = match ty {
                    PredType::U | PredType::UBar => t,
                    // Wired-OR/AND: the value settles once the *latest*
                    // contributing define executes.
                    _ => self.pred_time(fk, slot as usize).max(t),
                };
                self.pred_ready[slot as usize] = ready;
                self.pred_epoch[slot as usize] = self.clear_epoch[fk];
            }
        }

        // --- control flow ----------------------------------------------------
        if let Some(taken) = ev.taken {
            let mispredicted = self.btb.predict(addr, taken);
            if mispredicted {
                self.fetch_ready = self
                    .fetch_ready
                    .max(issue + 1 + self.config.mispredict_penalty as u64);
            } else if taken {
                // Correctly predicted taken branch still redirects fetch:
                // younger instructions start next cycle.
                self.fetch_ready = self.fetch_ready.max(issue + 1);
            }
        } else if info.flags & F_REDIRECT != 0 && !ev.nullified {
            // Calls and returns redirect fetch like taken branches.
            self.fetch_ready = self.fetch_ready.max(issue + 1);
        }

        // --- watchdog --------------------------------------------------------
        if self.cycle >= self.config.max_cycles {
            self.over_budget = true;
        }
        if let Some(deadline) = self.config.deadline {
            // Sample the clock once per 1024 events: cheap enough for the
            // hot path, tight enough that an overrun is bounded.
            if self.stats.insts & 1023 == 0 && std::time::Instant::now() >= deadline {
                self.past_deadline = true;
            }
        }
    }

    fn aborted(&self) -> bool {
        self.over_budget || self.past_deadline
    }
}

/// Runs `entry(args...)` of the **scheduled** module under the timing
/// model, returning cycle counts and statistics.
///
/// # Errors
/// Propagates emulator failures (traps, fuel) and reports
/// [`SimError::CycleLimit`] when the simulated clock exceeds
/// [`SimConfig::max_cycles`].
pub fn simulate(
    module: &Module,
    entry: &str,
    args: &[i64],
    machine: MachineConfig,
    config: SimConfig,
) -> Result<SimStats, SimError> {
    let sink = CycleSim::new(module, machine, config);
    let emu = Emulator::new(module);
    drive(emu, sink, entry, args, config)
}

/// [`simulate`] with a pre-decoded module: the emulator reuses `decoded`
/// instead of decoding `module` on entry. `decoded` must come from
/// [`DecodedModule::decode`] on this `module` (a stale decode is detected
/// and silently replaced, costing one re-decode). This is the entry point
/// the experiment matrix uses — each compiled module is decoded once and
/// simulated under many machine configurations.
pub fn simulate_decoded(
    module: &Module,
    decoded: &Arc<DecodedModule>,
    entry: &str,
    args: &[i64],
    machine: MachineConfig,
    config: SimConfig,
) -> Result<SimStats, SimError> {
    let sink = CycleSim::new(module, machine, config);
    let emu = Emulator::with_decoded(module, Arc::clone(decoded));
    drive(emu, sink, entry, args, config)
}

fn drive(
    mut emu: Emulator<'_>,
    mut sink: CycleSim,
    entry: &str,
    args: &[i64],
    config: SimConfig,
) -> Result<SimStats, SimError> {
    match emu.run(entry, args, &mut sink) {
        Ok(out) => {
            let mut stats = sink.finish();
            stats.ret = out.ret;
            Ok(stats)
        }
        Err(EmuError::SinkAbort { ctx }) => {
            debug_assert!(
                sink.over_budget || sink.past_deadline,
                "only the watchdogs abort this sink"
            );
            if sink.over_budget {
                Err(SimError::CycleLimit {
                    limit: config.max_cycles,
                    insts: ctx.fetched,
                })
            } else {
                Err(SimError::Deadline { insts: ctx.fetched })
            }
        }
        Err(e) => Err(SimError::Emu(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, MemWidth, Operand};
    use hyperpred_sched::schedule_module;

    fn simple_loop_module(n: i64) -> Module {
        // for i in 0..n { sum += i }
        let mut b = FuncBuilder::new("main");
        let acc = b.mov(Operand::Imm(0));
        let i = b.mov(Operand::Imm(0));
        let body = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let acc2 = b.add(acc.into(), i.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(n), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn wider_issue_takes_fewer_cycles() {
        let mut m1 = simple_loop_module(1000);
        schedule_module(&mut m1, &MachineConfig::one_issue()).unwrap();
        let s1 = simulate(
            &m1,
            "main",
            &[],
            MachineConfig::one_issue(),
            SimConfig::default(),
        )
        .unwrap();

        let mut m8 = simple_loop_module(1000);
        schedule_module(&mut m8, &MachineConfig::new(8, 1)).unwrap();
        let s8 = simulate(
            &m8,
            "main",
            &[],
            MachineConfig::new(8, 1),
            SimConfig::default(),
        )
        .unwrap();

        assert_eq!(s1.ret, s8.ret);
        assert!(
            s8.cycles < s1.cycles,
            "8-issue must beat 1-issue: {} !< {}",
            s8.cycles,
            s1.cycles
        );
        assert!(s8.ipc() > s1.ipc());
        // 1-issue can never exceed IPC 1.
        assert!(s1.ipc() <= 1.0 + 1e-9);
    }

    #[test]
    fn expired_deadline_aborts_with_deadline_error() {
        // An already-passed deadline trips at the first cooperative check
        // (event 1024), long before this 6000-event loop finishes.
        let mut m = simple_loop_module(1000);
        schedule_module(&mut m, &MachineConfig::one_issue()).unwrap();
        let cfg = SimConfig {
            deadline: Some(std::time::Instant::now()),
            ..SimConfig::default()
        };
        let err = simulate(&m, "main", &[], MachineConfig::one_issue(), cfg).unwrap_err();
        match err {
            SimError::Deadline { insts } => assert!(insts >= 1000, "tripped too early: {insts}"),
            other => panic!("expected Deadline, got {other}"),
        }
    }

    #[test]
    fn cycle_limit_wins_over_deadline_when_both_fire() {
        // Both watchdogs are armed and expired; the cycle budget is the
        // one reported (it is checked first and is deterministic).
        let mut m = simple_loop_module(1000);
        schedule_module(&mut m, &MachineConfig::one_issue()).unwrap();
        let cfg = SimConfig {
            max_cycles: 10,
            deadline: Some(std::time::Instant::now()),
            ..SimConfig::default()
        };
        let err = simulate(&m, "main", &[], MachineConfig::one_issue(), cfg).unwrap_err();
        assert!(
            matches!(err, SimError::CycleLimit { limit: 10, .. }),
            "expected CycleLimit, got {err}"
        );
    }

    #[test]
    fn one_issue_charges_at_least_one_cycle_per_inst() {
        let mut m = simple_loop_module(100);
        schedule_module(&mut m, &MachineConfig::one_issue()).unwrap();
        let s = simulate(
            &m,
            "main",
            &[],
            MachineConfig::one_issue(),
            SimConfig::default(),
        )
        .unwrap();
        assert!(s.cycles >= s.insts);
    }

    #[test]
    fn biased_loop_branch_mispredicts_rarely() {
        let mut m = simple_loop_module(500);
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[],
            MachineConfig::new(4, 1),
            SimConfig::default(),
        )
        .unwrap();
        assert!(s.branches >= 500);
        assert!(
            s.mispredicts <= 4,
            "biased branch: {} mispredicts",
            s.mispredicts
        );
    }

    #[test]
    fn perfect_memory_has_no_cache_misses() {
        let mut m = simple_loop_module(10);
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[],
            MachineConfig::new(4, 1),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(s.icache_misses, 0);
        assert_eq!(s.dcache_misses, 0);
    }

    #[test]
    fn real_caches_charge_misses() {
        // Stream over a large array: every 8th load misses (64B lines, 8B
        // elements).
        let mut b = FuncBuilder::new("main");
        let base = 0x2000i64;
        let i = b.mov(Operand::Imm(0));
        let acc = b.mov(Operand::Imm(0));
        let body = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let off = b.op2(hyperpred_ir::Op::Shl, i.into(), Operand::Imm(3));
        let v = b.load(MemWidth::Word, Operand::Imm(base), off.into());
        let acc2 = b.add(acc.into(), v.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(4096), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.add_global("arr", 0x8000, vec![]);
        m.push(b.finish());
        m.link().unwrap();
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();

        let machine = MachineConfig::new(4, 1);
        let perfect = simulate(&m, "main", &[], machine, SimConfig::default()).unwrap();
        let cached = simulate(
            &m,
            "main",
            &[],
            machine,
            SimConfig {
                memory: MemoryModel::Caches(CacheConfig::default()),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(perfect.ret, cached.ret);
        assert_eq!(cached.dcache_misses, 4096 / 8, "one miss per 64B line");
        assert!(cached.cycles > perfect.cycles);
    }

    #[test]
    fn mispredict_penalty_scales_cycles() {
        // Alternating branch: mispredicts heavily under a 2-bit counter.
        let mut b = FuncBuilder::new("main");
        let i = b.mov(Operand::Imm(0));
        let body = b.block();
        let t = b.block();
        let join = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let r = b.op2(hyperpred_ir::Op::And, i.into(), Operand::Imm(1));
        b.br(CmpOp::Eq, r.into(), Operand::Imm(0), t);
        b.jump(join);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(join);
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(512), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();
        let machine = MachineConfig::new(4, 1);
        let cheap = simulate(&m, "main", &[], machine, SimConfig::default()).unwrap();
        let dear = simulate(
            &m,
            "main",
            &[],
            machine,
            SimConfig {
                mispredict_penalty: 10,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(cheap.mispredicts > 100, "alternating branch mispredicts");
        assert!(dear.cycles > cheap.cycles + 8 * 100);
    }

    #[test]
    fn nullified_instructions_are_counted_as_fetched() {
        use hyperpred_ir::PredType;
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(5));
        b.mov_to(out, Operand::Imm(7));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[0],
            MachineConfig::new(4, 1),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(s.ret, 5);
        assert_eq!(s.nullified, 1);
        assert_eq!(s.insts, 4);
    }

    #[test]
    fn guarded_use_waits_for_predicate_define() {
        use hyperpred_ir::PredType;
        // pred define at cycle c -> guarded instruction cannot issue in the
        // same cycle (decode-stage suppression).
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(1));
        b.mov_to(out, Operand::Imm(2));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        schedule_module(&mut m, &MachineConfig::new(8, 1)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[1],
            MachineConfig::new(8, 1),
            SimConfig::default(),
        )
        .unwrap();
        // define @0 (+mov @0), guarded mov @1, ret @2 -> 3 cycles.
        assert!(s.cycles >= 3, "{}", s.cycles);
    }

    #[test]
    fn iterations_overlap_on_wide_issue() {
        // A loop whose body has a long independent tail: consecutive
        // iterations must overlap, pushing IPC above what a single
        // iteration's critical path allows.
        let mut b = FuncBuilder::new("main");
        let i = b.mov(Operand::Imm(0));
        let acc = b.mov(Operand::Imm(0));
        let body = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        // 6 independent adds off `i`.
        let mut parts = Vec::new();
        for k in 0..6 {
            parts.push(b.add(i.into(), Operand::Imm(k)));
        }
        let mut sum = parts[0];
        for p in &parts[1..] {
            sum = b.add(sum.into(), (*p).into());
        }
        let acc2 = b.add(acc.into(), sum.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(256), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        schedule_module(&mut m, &MachineConfig::new(8, 2)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[],
            MachineConfig::new(8, 2),
            SimConfig::default(),
        )
        .unwrap();
        // In-order issue lets independent work fill the slots while the
        // reduction chain drains; the whole 15-instruction body completes
        // in ~7 cycles per iteration.
        assert!(
            s.ipc() > 1.8,
            "wide issue should overlap independent work: ipc {:.2}",
            s.ipc()
        );
    }

    /// Builds `main` calling a div-tailed helper twice. With `shared`,
    /// both calls target one helper function; otherwise each call gets
    /// its own identical copy. The helper *reads* its second parameter
    /// register first and *writes* it last with a 10-cycle divide that no
    /// later instruction of the same activation consumes — so any stall
    /// on that register is strictly cross-activation.
    fn double_call_module(shared: bool) -> Module {
        let helper = |name: &str| {
            let mut b = FuncBuilder::new(name);
            let x = b.param();
            let d = b.param();
            let z = b.add(d.into(), Operand::Imm(1));
            b.op2_to(hyperpred_ir::Op::Div, d, x.into(), Operand::Imm(3));
            b.ret(Some(z.into()));
            b.finish()
        };
        let mut b = FuncBuilder::new("main");
        let a = b.call("slow", vec![Operand::Imm(9), Operand::Imm(0)]);
        let second = if shared { "slow" } else { "slow_copy" };
        let c = b.call(second, vec![Operand::Imm(9), Operand::Imm(0)]);
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.push(helper("slow"));
        if !shared {
            m.push(helper("slow_copy"));
        }
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    /// Pins the scoreboard keying documented on [`CycleSim`]: ready times
    /// are per (function, architectural register), NOT per dynamic
    /// activation. Re-entering a function observes the previous
    /// activation's in-flight writes — the machine has no renaming, so a
    /// second call really does interlock on the first call's divide still
    /// in the pipe. Calling two *identical but distinct* functions (same
    /// dynamic instruction sequence, disjoint scoreboard slices) must be
    /// faster than calling one function twice.
    #[test]
    fn reentry_scoreboard_is_per_function_not_per_activation() {
        let machine = MachineConfig::one_issue();
        let mut same = double_call_module(true);
        schedule_module(&mut same, &machine).unwrap();
        let mut distinct = double_call_module(false);
        schedule_module(&mut distinct, &machine).unwrap();
        let s_same = simulate(&same, "main", &[], machine, SimConfig::default()).unwrap();
        let s_distinct = simulate(&distinct, "main", &[], machine, SimConfig::default()).unwrap();
        assert_eq!(s_same.ret, s_distinct.ret, "identical computation");
        assert_eq!(s_same.insts, s_distinct.insts, "identical dynamic stream");
        assert!(
            s_same.cycles > s_distinct.cycles,
            "re-entry must interlock on the prior activation's pending div: \
             {} !> {} cycles",
            s_same.cycles,
            s_distinct.cycles
        );
        // The stall is the div latency minus the instructions between the
        // write and the re-entrant read (ret/call/add) — several cycles.
        assert!(
            s_same.cycles - s_distinct.cycles >= 4,
            "expected a multi-cycle cross-activation stall, got {}",
            s_same.cycles - s_distinct.cycles
        );
    }

    /// A branch whose guard is sometimes false: i even -> executed and
    /// taken, i odd -> nullified (fetched, suppressed, reported as
    /// fall-through per the trace contract).
    fn guarded_branch_module(n: i64) -> Module {
        use hyperpred_ir::PredType;
        let mut b = FuncBuilder::new("main");
        let i = b.mov(Operand::Imm(0));
        let body = b.block();
        let t = b.block();
        let join = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let r = b.op2(hyperpred_ir::Op::And, i.into(), Operand::Imm(1));
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U)],
            r.into(),
            Operand::Imm(0),
            None,
        );
        // Condition is constant-true: every *executed* instance is taken.
        b.br(CmpOp::Eq, Operand::Imm(0), Operand::Imm(0), t);
        b.guard_last(p);
        b.jump(join);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(join);
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(n), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    /// Pins how nullified predicated branches meet the branch machinery:
    /// a nullified branch is still a fetched branch-class instruction, so
    /// it counts toward [`SimStats::branches`] and it consults AND
    /// updates the BTB with its architectural outcome `taken = false`
    /// (the trace contract reports nullified branches as fall-through).
    /// This matches the paper's Table 2 accounting — fetched predicated
    /// instructions occupy fetch/issue (and branch-unit) resources whether
    /// or not they execute — and models a sequencer that resolves every
    /// fetched branch.
    ///
    /// The observable: an execute-taken / nullified alternation looks
    /// like a taken/not-taken alternation to the 2-bit counter, which is
    /// its worst case (~every instance mispredicts). If nullified
    /// branches skipped the BTB, the branch would look always-taken and
    /// mispredict about once.
    #[test]
    fn nullified_branches_count_and_train_the_btb() {
        let n = 200u64;
        let mut m = guarded_branch_module(n as i64);
        schedule_module(&mut m, &MachineConfig::new(4, 1)).unwrap();
        let s = simulate(
            &m,
            "main",
            &[],
            MachineConfig::new(4, 1),
            SimConfig::default(),
        )
        .unwrap();
        // Odd i: guard false, branch fetched but suppressed.
        assert_eq!(s.nullified, n / 2);
        // Every fetch of the guarded branch counts, nullified included:
        // n guarded-branch fetches + n backedge fetches at minimum.
        assert!(
            s.branches >= 2 * n,
            "nullified branch fetches must count toward branches: {}",
            s.branches
        );
        // The nullified instances update the counter as not-taken, so the
        // alternation defeats the 2-bit hysteresis on the guarded branch.
        assert!(
            s.mispredicts >= n * 3 / 4,
            "nullified branches must train the BTB toward not-taken \
             (expected ~{n} mispredicts on the alternating branch, got {})",
            s.mispredicts
        );
    }

    #[test]
    fn cycle_watchdog_stops_runaway_runs() {
        // A long loop under a tiny cycle budget must abort with CycleLimit
        // promptly (within one instruction of the budget) instead of
        // simulating to completion.
        let mut m = simple_loop_module(1_000_000);
        schedule_module(&mut m, &MachineConfig::one_issue()).unwrap();
        let err = simulate(
            &m,
            "main",
            &[],
            MachineConfig::one_issue(),
            SimConfig {
                max_cycles: 5_000,
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        match err {
            SimError::CycleLimit { limit, insts } => {
                assert_eq!(limit, 5_000);
                assert!(insts < 10_000, "aborted promptly, not at {insts} insts");
            }
            other => panic!("expected CycleLimit, got {other}"),
        }
        // The same program under the default budget completes.
        let mut m2 = simple_loop_module(1000);
        schedule_module(&mut m2, &MachineConfig::one_issue()).unwrap();
        simulate(
            &m2,
            "main",
            &[],
            MachineConfig::one_issue(),
            SimConfig::default(),
        )
        .expect("default budget is generous");
    }
}
