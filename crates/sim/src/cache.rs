//! Direct-mapped caches.
//!
//! The paper's memory system: 64K direct-mapped instruction and data
//! caches with 64-byte blocks; the data cache is write-through with no
//! write-allocate; miss penalty 12 cycles.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Miss penalty in cycles.
    pub miss_penalty: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size: 64 * 1024,
            line: 64,
            miss_penalty: 12,
        }
    }
}

/// A direct-mapped cache with per-line valid+tag state.
///
/// Counter discipline: `hits`/`misses` classify *demand reads* only
/// (loads and instruction fetches — the accesses that can stall the
/// pipeline). Write-through writes that find their line present are
/// tallied separately in `write_hits`; mixing them into `hits` would
/// dilute [`Cache::miss_rate`] with accesses that never miss by
/// construction (write-no-allocate writes to absent lines are not
/// demand misses — they retire through the write buffer).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    /// Demand reads that hit.
    hits: u64,
    /// Demand reads that missed (and filled the line).
    misses: u64,
    /// Write-through writes that found their line present (updated in
    /// place). Not part of the demand-read miss rate.
    write_hits: u64,
}

impl Cache {
    /// Creates a cold cache.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.size.is_multiple_of(config.line),
            "size must be a multiple of line"
        );
        let lines = (config.size / config.line) as usize;
        assert!(lines.is_power_of_two(), "line count must be 2^k");
        Cache {
            config,
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
            write_hits: 0,
        }
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line;
        let idx = (line as usize) & (self.tags.len() - 1);
        (idx, line)
    }

    /// Read access (load or instruction fetch): returns `true` on a miss,
    /// filling the line.
    pub fn read(&mut self, addr: u64) -> bool {
        let (idx, tag) = self.index_tag(addr);
        if self.tags[idx] == Some(tag) {
            self.hits += 1;
            false
        } else {
            self.misses += 1;
            self.tags[idx] = Some(tag);
            true
        }
    }

    /// Write access: write-through, no write-allocate. Never stalls
    /// (writes retire through a buffer), never fills.
    pub fn write(&mut self, addr: u64) {
        let (idx, tag) = self.index_tag(addr);
        // Write-through keeps a present line up to date; an absent line is
        // not allocated.
        if self.tags[idx] == Some(tag) {
            self.write_hits += 1;
        }
    }

    /// The configured miss penalty.
    pub fn miss_penalty(&self) -> u32 {
        self.config.miss_penalty
    }

    /// Demand reads that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand reads that missed (and filled the line).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Write-through writes that found their line present.
    pub fn write_hits(&self) -> u64 {
        self.write_hits
    }

    /// Miss rate over demand reads (write traffic excluded).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size: 256,
            line: 64,
            miss_penalty: 12,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = small();
        assert!(c.read(0));
        assert!(!c.read(8));
        assert!(!c.read(63));
        assert!(c.read(64));
        assert_eq!(c.misses, 2);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = small(); // 4 lines
        assert!(c.read(0));
        assert!(c.read(256)); // same index as 0
        assert!(c.read(0)); // evicted
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut c = small();
        c.write(0);
        assert!(c.read(0), "write-no-allocate: line still cold");
    }

    #[test]
    fn write_hits_do_not_dilute_read_miss_rate() {
        let mut c = small();
        assert!(c.read(0)); // miss, fills the line
        assert!(!c.read(8)); // hit
                             // A storm of write hits to the cached line must not change the
                             // demand-read miss rate (historically each one bumped `hits`,
                             // shrinking miss_rate toward 0).
        for _ in 0..1000 {
            c.write(16);
        }
        c.write(512); // absent line: no allocate, no counter
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.write_hits(), 1000);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn whole_working_set_fits() {
        let mut c = Cache::new(CacheConfig::default());
        for addr in (0..64 * 1024).step_by(64) {
            c.read(addr);
        }
        for addr in (0..64 * 1024).step_by(64) {
            assert!(!c.read(addr), "second sweep must hit");
        }
    }
}
