//! Direct-mapped caches.
//!
//! The paper's memory system: 64K direct-mapped instruction and data
//! caches with 64-byte blocks; the data cache is write-through with no
//! write-allocate; miss penalty 12 cycles.

/// Cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Miss penalty in cycles.
    pub miss_penalty: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size: 64 * 1024,
            line: 64,
            miss_penalty: 12,
        }
    }
}

/// A direct-mapped cache with per-line valid+tag state.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (and filled, for reads).
    pub misses: u64,
}

impl Cache {
    /// Creates a cold cache.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.size.is_multiple_of(config.line),
            "size must be a multiple of line"
        );
        let lines = (config.size / config.line) as usize;
        assert!(lines.is_power_of_two(), "line count must be 2^k");
        Cache {
            config,
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line;
        let idx = (line as usize) & (self.tags.len() - 1);
        (idx, line)
    }

    /// Read access (load or instruction fetch): returns `true` on a miss,
    /// filling the line.
    pub fn read(&mut self, addr: u64) -> bool {
        let (idx, tag) = self.index_tag(addr);
        if self.tags[idx] == Some(tag) {
            self.hits += 1;
            false
        } else {
            self.misses += 1;
            self.tags[idx] = Some(tag);
            true
        }
    }

    /// Write access: write-through, no write-allocate. Never stalls
    /// (writes retire through a buffer), never fills.
    pub fn write(&mut self, addr: u64) {
        let (idx, tag) = self.index_tag(addr);
        // Write-through keeps a present line up to date; an absent line is
        // not allocated.
        if self.tags[idx] == Some(tag) {
            self.hits += 1;
        }
    }

    /// The configured miss penalty.
    pub fn miss_penalty(&self) -> u32 {
        self.config.miss_penalty
    }

    /// Miss rate over demand reads.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size: 256,
            line: 64,
            miss_penalty: 12,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = small();
        assert!(c.read(0));
        assert!(!c.read(8));
        assert!(!c.read(63));
        assert!(c.read(64));
        assert_eq!(c.misses, 2);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = small(); // 4 lines
        assert!(c.read(0));
        assert!(c.read(256)); // same index as 0
        assert!(c.read(0)); // evicted
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut c = small();
        c.write(0);
        assert!(c.read(0), "write-no-allocate: line still cold");
    }

    #[test]
    fn whole_working_set_fits() {
        let mut c = Cache::new(CacheConfig::default());
        for addr in (0..64 * 1024).step_by(64) {
            c.read(addr);
        }
        for addr in (0..64 * 1024).step_by(64) {
            assert!(!c.read(addr), "second sweep must hit");
        }
    }
}
