//! Branch target buffer with 2-bit saturating counters.
//!
//! The paper's dynamic prediction model: a 1K-entry BTB with a 2-bit
//! counter per entry and a 2-cycle misprediction penalty.

/// Prediction indexing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predictor {
    /// Per-branch 2-bit counters indexed by address — the paper's model.
    #[default]
    Bimodal,
    /// Gshare: counters indexed by address XOR global history (Yeh/Patt-
    /// style two-level prediction, an extension beyond the paper's BTB).
    Gshare {
        /// Number of global-history bits folded into the index.
        history_bits: u32,
    },
}

/// BTB configuration.
#[derive(Debug, Clone, Copy)]
pub struct BtbConfig {
    /// Number of entries (direct-mapped).
    pub entries: usize,
    /// Indexing scheme.
    pub predictor: Predictor,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig {
            entries: 1024,
            predictor: Predictor::Bimodal,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    counter: u8, // 0..=3; >=2 predicts taken
    valid: bool,
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Entry>,
    predictor: Predictor,
    /// Global branch-history register (gshare only).
    ghr: u64,
    /// Dynamic branches predicted.
    pub branches: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl Btb {
    /// Creates an empty BTB.
    pub fn new(config: BtbConfig) -> Btb {
        assert!(config.entries.is_power_of_two(), "BTB size must be 2^k");
        Btb {
            entries: vec![
                Entry {
                    tag: 0,
                    counter: 0,
                    valid: false
                };
                config.entries
            ],
            predictor: config.predictor,
            ghr: 0,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the branch at `addr`, observes the real outcome, updates
    /// state, and returns `true` on a misprediction.
    ///
    /// A BTB miss predicts not-taken (sequential fetch); a taken branch
    /// that misses allocates an entry.
    pub fn predict(&mut self, addr: u64, taken: bool) -> bool {
        self.branches += 1;
        let base = addr >> 2;
        let idx = match self.predictor {
            Predictor::Bimodal => base as usize & (self.entries.len() - 1),
            Predictor::Gshare { history_bits } => {
                let mask = (1u64 << history_bits.min(63)) - 1;
                ((base ^ (self.ghr & mask)) as usize) & (self.entries.len() - 1)
            }
        };
        let e = &mut self.entries[idx];
        let hit = e.valid && e.tag == addr;
        let predicted_taken = hit && e.counter >= 2;
        let mispredict = predicted_taken != taken;
        if hit {
            if taken {
                e.counter = (e.counter + 1).min(3);
            } else {
                e.counter = e.counter.saturating_sub(1);
            }
        } else if taken {
            // Allocate, biased taken.
            *e = Entry {
                tag: addr,
                counter: 2,
                valid: true,
            };
        }
        if mispredict {
            self.mispredicts += 1;
        }
        self.ghr = (self.ghr << 1) | taken as u64;
        mispredict
    }

    /// Misprediction rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_taken_branch_converges() {
        let mut btb = Btb::new(BtbConfig {
            entries: 16,
            ..BtbConfig::default()
        });
        // First encounter: miss, predicted not-taken, actual taken -> miss.
        assert!(btb.predict(0x100, true));
        // Now allocated with counter 2: predicts taken.
        for _ in 0..100 {
            assert!(!btb.predict(0x100, true));
        }
        assert_eq!(btb.mispredicts, 1);
        assert_eq!(btb.branches, 101);
    }

    #[test]
    fn never_taken_branch_never_mispredicts() {
        let mut btb = Btb::new(BtbConfig {
            entries: 16,
            ..BtbConfig::default()
        });
        for _ in 0..50 {
            assert!(!btb.predict(0x200, false));
        }
        assert_eq!(btb.mispredicts, 0);
    }

    #[test]
    fn two_bit_hysteresis_tolerates_single_flip() {
        let mut btb = Btb::new(BtbConfig {
            entries: 16,
            ..BtbConfig::default()
        });
        btb.predict(0x300, true); // allocate at 2
        btb.predict(0x300, true); // 3
        assert!(btb.predict(0x300, false)); // mispredict, 2
        assert!(!btb.predict(0x300, true)); // still predicts taken
    }

    #[test]
    fn aliasing_branches_interfere() {
        let mut btb = Btb::new(BtbConfig {
            entries: 4,
            ..BtbConfig::default()
        });
        // Addresses 0x10 and 0x50 map to the same entry (stride 16 insts).
        btb.predict(0x10, true);
        assert!(!btb.predict(0x10, true));
        // Conflicting tag evicts on allocate.
        assert!(btb.predict(0x50, true)); // miss (tag differs), taken -> realloc
        assert!(btb.predict(0x10, true)); // evicted: miss again
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        Btb::new(BtbConfig {
            entries: 1000,
            ..BtbConfig::default()
        });
    }

    #[test]
    fn gshare_separates_correlated_aliases() {
        // A branch whose direction alternates is hopeless for a bimodal
        // 2-bit counter but perfectly predictable from 1+ history bits.
        let mut bimodal = Btb::new(BtbConfig {
            entries: 64,
            ..BtbConfig::default()
        });
        let mut gshare = Btb::new(BtbConfig {
            entries: 64,
            predictor: Predictor::Gshare { history_bits: 4 },
        });
        let mut bi_miss = 0;
        let mut gs_miss = 0;
        for i in 0..400u64 {
            let taken = i % 2 == 0;
            bi_miss += bimodal.predict(0x40, taken) as u64;
            gs_miss += gshare.predict(0x40, taken) as u64;
        }
        assert!(
            gs_miss * 4 < bi_miss,
            "gshare should learn the alternation ({gs_miss} vs {bi_miss})"
        );
    }
}
