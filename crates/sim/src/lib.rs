//! Trace-driven timing simulator.
//!
//! Implements the simulation half of the paper's emulation-driven
//! methodology (§4.1): the functional emulator streams the dynamic
//! instruction trace of *scheduled* code, and this crate charges cycles
//! against the static schedule plus dynamic penalties:
//!
//! * [`btb`] — 1K-entry, 2-bit-counter branch target buffer with a 2-cycle
//!   misprediction penalty;
//! * [`cache`] — 64K direct-mapped I/D caches, 64-byte lines, 12-cycle
//!   miss penalty, write-through no-allocate data cache;
//! * [`cyclesim`] — the cycle-accounting [`TraceSink`] and the one-call
//!   [`simulate`] entry point.
//!
//! [`TraceSink`]: hyperpred_emu::TraceSink

pub mod btb;
pub mod cache;
pub mod cyclesim;

pub use btb::{Btb, BtbConfig, Predictor};
pub use cache::{Cache, CacheConfig};
pub use cyclesim::{
    simulate, simulate_decoded, CycleSim, MemoryModel, SimConfig, SimError, SimStats,
    DEFAULT_CYCLE_LIMIT,
};
