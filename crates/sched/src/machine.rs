//! The machine model: issue resources and instruction latencies.

use hyperpred_ir::Op;

/// Instruction latencies, modelled on the HP PA-7100 (the paper §4.1 uses
/// PA-7100 latencies).
#[derive(Debug, Clone, Copy)]
pub struct Latencies {
    /// Integer ALU / logical / compare.
    pub int_alu: u32,
    /// Integer multiply.
    pub mul: u32,
    /// Integer divide.
    pub div: u32,
    /// Load (cache hit).
    pub load: u32,
    /// FP add/sub and conversions.
    pub fp_add: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide.
    pub fp_div: u32,
    /// Branches, jumps, calls.
    pub branch: u32,
    /// Predicate define to guarded-use distance. 1 models suppression at
    /// the decode/issue stage (the paper's simulated model); 0 models
    /// suppression at write-back.
    pub pred_def: u32,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            int_alu: 1,
            mul: 3,
            div: 10,
            load: 2,
            fp_add: 2,
            fp_mul: 2,
            fp_div: 8,
            branch: 1,
            pred_def: 1,
        }
    }
}

impl Latencies {
    /// Result latency of `op` (cycles until a dependent instruction may
    /// issue).
    pub fn of(&self, op: Op) -> u32 {
        match op {
            Op::Mul => self.mul,
            Op::Div | Op::Rem => self.div,
            Op::Ld(_) => self.load,
            Op::FAdd | Op::FSub | Op::IToF | Op::FToI => self.fp_add,
            Op::FMul => self.fp_mul,
            Op::FDiv => self.fp_div,
            Op::FCmp(_) => self.fp_add,
            Op::Br(_) | Op::Jump | Op::Call | Op::Ret | Op::Halt => self.branch,
            Op::PredDef(_) | Op::FPredDef(_) | Op::PredClear | Op::PredSet => self.pred_def,
            _ => self.int_alu,
        }
    }
}

/// Issue-stage configuration of the simulated processor.
///
/// The paper's machines issue `k` instructions of any type per cycle,
/// except branches, which are limited separately (`branches_per_cycle`).
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Branch-class instructions (branch/jump/call/return) per cycle.
    pub branches_per_cycle: u32,
    /// Latency table.
    pub latency: Latencies,
}

impl MachineConfig {
    /// A `k`-issue, `b`-branch machine with default latencies.
    pub fn new(issue_width: u32, branches_per_cycle: u32) -> MachineConfig {
        assert!(issue_width >= 1 && branches_per_cycle >= 1);
        MachineConfig {
            issue_width,
            branches_per_cycle,
            latency: Latencies::default(),
        }
    }

    /// The paper's scalar baseline: 1-issue, 1-branch.
    pub fn one_issue() -> MachineConfig {
        MachineConfig::new(1, 1)
    }

    /// True when `op` consumes a branch slot.
    pub fn is_branch_class(op: Op) -> bool {
        matches!(op, Op::Br(_) | Op::Jump | Op::Call | Op::Ret | Op::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, MemWidth};

    #[test]
    fn default_latencies_shape() {
        let l = Latencies::default();
        assert_eq!(l.of(Op::Add), 1);
        assert_eq!(l.of(Op::Ld(MemWidth::Word)), 2);
        assert!(l.of(Op::Div) > l.of(Op::Mul));
        assert!(l.of(Op::FDiv) > l.of(Op::FMul));
        assert_eq!(l.of(Op::PredDef(CmpOp::Eq)), 1);
    }

    #[test]
    fn branch_class() {
        assert!(MachineConfig::is_branch_class(Op::Br(CmpOp::Eq)));
        assert!(MachineConfig::is_branch_class(Op::Call));
        assert!(!MachineConfig::is_branch_class(Op::Cmov));
    }

    #[test]
    #[should_panic]
    fn zero_issue_is_rejected() {
        MachineConfig::new(0, 1);
    }
}
