//! The list scheduler.
//!
//! Scheduling is per block (superblocks and hyperblocks are single blocks,
//! so the region *is* the scheduling scope). The scheduler:
//!
//! * builds a dependence DAG (register flow/anti/output, predicate
//!   flow/anti, memory ordering, control ordering);
//! * exploits predication: OR-type predicate defines to the same register
//!   commute (wired-OR, issuable in the same cycle), and conditional moves
//!   with complementary conditions may share a cycle;
//! * performs **speculative upward code motion**: a silent instruction may
//!   hoist above an exit branch when its destination is dead at the branch
//!   target (general percolation for the superblock baseline);
//! * list-schedules by critical-path priority under the issue-width and
//!   branch-slot limits of the [`MachineConfig`].
//!
//! The block's instructions are physically reordered into issue order and
//! each instruction's [`Inst::cycle`] is set, so the emulator executes the
//! scheduled code directly and the timing simulator can charge cycles.

use crate::machine::MachineConfig;
use hyperpred_ir::liveness::Liveness;
use hyperpred_ir::{BlockId, Cfg, Function, Inst, Module, Op};
use std::collections::HashMap;
use std::fmt;

/// Summary of one block's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSchedule {
    /// Total schedule length in cycles (max issue cycle + 1).
    pub len: u32,
}

/// A typed scheduling failure.
///
/// The list scheduler is total on well-formed input (the dependence DAG is
/// acyclic by construction, edges always point forward in original order),
/// so these errors are defensive: they bound the issue loop and surface
/// internal inconsistencies — a machine config that can never issue some
/// instruction, or a malformed block from an upstream pass — as data
/// instead of a panic or a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedError {
    /// Function being scheduled.
    pub func: String,
    /// Block being scheduled.
    pub block: BlockId,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduling `{}` block b{}: {}",
            self.func,
            self.block.index(),
            self.detail
        )
    }
}

impl std::error::Error for SchedError {}

/// Schedules every block of every function in `m`.
pub fn schedule_module(m: &mut Module, config: &MachineConfig) -> Result<(), SchedError> {
    for f in &mut m.funcs {
        schedule_function(f, config)?;
    }
    Ok(())
}

/// Schedules every block of `f`, reordering instructions into issue order
/// and assigning [`Inst::cycle`].
pub fn schedule_function(f: &mut Function, config: &MachineConfig) -> Result<(), SchedError> {
    let cfg = Cfg::new(f);
    let lv = Liveness::compute(f, &cfg);
    for &b in &f.layout.clone() {
        schedule_block(f, b, &lv, config)?;
    }
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "scheduler broke {}",
        f.name
    );
    Ok(())
}

/// Dependence edge: `to` may issue no earlier than `cycle(from) + delay`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    delay: u32,
}

/// Schedules a single block.
pub fn schedule_block(
    f: &mut Function,
    b: BlockId,
    lv: &Liveness,
    config: &MachineConfig,
) -> Result<BlockSchedule, SchedError> {
    let insts = std::mem::take(&mut f.block_mut(b).insts);
    let n = insts.len();
    if n == 0 {
        f.block_mut(b).insts = insts;
        return Ok(BlockSchedule { len: 0 });
    }
    let succs: Vec<(usize, Vec<Edge>)> = build_dag(f, &insts, lv, config);
    let mut preds_left: Vec<usize> = vec![0; n];
    for (_, edges) in &succs {
        for e in edges {
            preds_left[e.to] += 1;
        }
    }
    // Critical-path priority (longest path to any leaf).
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for e in &succs[i].1 {
            height[i] = height[i].max(e.delay + height[e.to]);
        }
    }

    // earliest[i]: lower bound on issue cycle from scheduled predecessors.
    let mut earliest = vec![0u32; n];
    let mut scheduled: Vec<Option<u32>> = vec![None; n];
    let mut unscheduled = n;
    let mut cycle = 0u32;
    while unscheduled > 0 {
        let mut slots = config.issue_width;
        let mut branch_slots = config.branches_per_cycle;
        let mut placed_this_cycle = 0usize;
        // Ready list for this cycle, by priority then original order.
        loop {
            let mut ready: Vec<usize> = (0..n)
                .filter(|&i| scheduled[i].is_none() && preds_left[i] == 0 && earliest[i] <= cycle)
                .collect();
            if ready.is_empty() || slots == 0 {
                break;
            }
            ready.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));
            let mut placed_any = false;
            for i in ready {
                if slots == 0 {
                    break;
                }
                let is_br = MachineConfig::is_branch_class(insts[i].op);
                if is_br && branch_slots == 0 {
                    continue;
                }
                scheduled[i] = Some(cycle);
                unscheduled -= 1;
                slots -= 1;
                if is_br {
                    branch_slots -= 1;
                }
                placed_any = true;
                placed_this_cycle += 1;
                for e in &succs[i].1 {
                    preds_left[e.to] -= 1;
                    earliest[e.to] = earliest[e.to].max(cycle + e.delay);
                }
            }
            if !placed_any {
                break;
            }
        }
        if placed_this_cycle == 0 {
            // Nothing issued this cycle: either every dependence-ready
            // instruction is waiting on a future earliest-cycle (skip
            // ahead), or nothing can ever issue — a machine config with no
            // usable slot for some instruction class, or a dependence
            // deadlock. Report the latter instead of spinning forever.
            let next = (0..n)
                .filter(|&i| scheduled[i].is_none() && preds_left[i] == 0)
                .map(|i| earliest[i])
                .min();
            match next {
                Some(e) if e > cycle => cycle = e,
                _ => {
                    let detail = format!(
                        "issue deadlock at cycle {cycle}: {unscheduled} of {n} \
                         instruction(s) can never become ready \
                         (issue width {}, branch slots {})",
                        config.issue_width, config.branches_per_cycle
                    );
                    let func = f.name.clone();
                    f.block_mut(b).insts = insts;
                    return Err(SchedError {
                        func,
                        block: b,
                        detail,
                    });
                }
            }
        } else {
            cycle += 1;
        }
    }

    // Every instruction has an issue cycle now; the loop above only exits
    // with `unscheduled == 0`.
    let mut cycles: Vec<u32> = Vec::with_capacity(n);
    for (i, s) in scheduled.iter().enumerate() {
        match s {
            Some(c) => cycles.push(*c),
            None => {
                let detail = format!("instruction {i} of {n} left without an issue cycle");
                let func = f.name.clone();
                f.block_mut(b).insts = insts;
                return Err(SchedError {
                    func,
                    block: b,
                    detail,
                });
            }
        }
    }

    // Reorder: (cycle, original index) keeps same-cycle instructions in
    // original relative order, which preserves sequential-execution
    // semantics for delay-0 dependences.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (cycles[i], i));
    let mut len = 0;
    let mut out: Vec<Inst> = Vec::with_capacity(n);
    // Mark trap-capable instructions that were hoisted above a branch as
    // silent: on the taken path they now execute where they previously did
    // not.
    for &i in &order {
        let mut inst = insts[i].clone();
        inst.cycle = cycles[i];
        len = len.max(cycles[i] + 1);
        out.push(inst);
    }
    for bi in 0..n {
        if !MachineConfig::is_branch_class(insts[bi].op) {
            continue;
        }
        for i in bi + 1..n {
            // Strictly earlier cycle = textually hoisted above the branch
            // (same-cycle instructions keep their original order and are
            // squashed on the taken path).
            if cycles[i] < cycles[bi] && insts[i].op.may_trap() {
                // Find it in `out` and silence it.
                let pos = match out.iter().position(|x| x.id == insts[i].id) {
                    Some(p) => p,
                    None => {
                        let detail = format!("instruction {:?} lost while reordering", insts[i].id);
                        let func = f.name.clone();
                        f.block_mut(b).insts = insts;
                        return Err(SchedError {
                            func,
                            block: b,
                            detail,
                        });
                    }
                };
                out[pos].speculative = true;
            }
        }
    }
    f.block_mut(b).insts = out;
    Ok(BlockSchedule { len })
}

/// Builds the dependence DAG. Edges always point from a smaller original
/// index to a larger one.
fn build_dag(
    _f: &Function,
    insts: &[Inst],
    lv: &Liveness,
    config: &MachineConfig,
) -> Vec<(usize, Vec<Edge>)> {
    let n = insts.len();
    let lat = &config.latency;
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let add = |from: usize, to: usize, delay: u32, edges: &mut Vec<Vec<Edge>>| {
        debug_assert!(from < to);
        edges[from].push(Edge { to, delay });
    };

    // --- register and predicate dependences -----------------------------
    // last full/partial writers and readers per register.
    let mut reg_writers: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut reg_readers: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut pred_writers: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut pred_readers: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, inst) in insts.iter().enumerate() {
        // Register uses (including partial-def destination reads).
        let mut uses: Vec<u32> = inst.src_regs().map(|r| r.0).collect();
        if inst.is_partial_reg_def() {
            if let Some(d) = inst.dst {
                uses.push(d.0);
            }
        }
        for r in &uses {
            // flow: last writers -> this use.
            if let Some(ws) = reg_writers.get(r) {
                for &w in ws {
                    // The implicit destination read of a conditional move
                    // does not depend on its complementary partner.
                    if Some(*r) == inst.dst.map(|d| d.0) && commuting_writes(&insts[w], inst) {
                        continue;
                    }
                    add(w, i, lat.of(insts[w].op), &mut edges);
                }
            }
            reg_readers.entry(*r).or_default().push(i);
        }
        if let Some(d) = inst.dst {
            let full = !inst.is_partial_reg_def();
            // anti: earlier readers -> this write (same cycle allowed).
            if let Some(rs) = reg_readers.get(&d.0) {
                for &rdr in rs {
                    if rdr != i {
                        add(rdr, i, 0, &mut edges);
                    }
                }
            }
            // output: earlier writers -> this write.
            if let Some(ws) = reg_writers.get(&d.0) {
                for &w in ws {
                    if commuting_writes(&insts[w], inst) {
                        continue;
                    }
                    add(w, i, 1, &mut edges);
                }
            }
            if full {
                reg_writers.insert(d.0, vec![i]);
                reg_readers.remove(&d.0);
            } else {
                reg_writers.entry(d.0).or_default().push(i);
            }
        }

        // Predicate uses (guards + partial pdst reads).
        // `pred_clear`/`pred_set` are handled as barriers below.
        if !inst.defines_all_preds() {
            for p in inst.pred_uses() {
                if let Some(ws) = pred_writers.get(&p.0) {
                    for &w in ws {
                        // OR-family defines to the same register commute;
                        // their "read" of the destination is the wired-OR,
                        // so skip the self-family flow edge.
                        if or_family_pair(&insts[w], inst, p.0) {
                            continue;
                        }
                        add(w, i, lat.of(insts[w].op), &mut edges);
                    }
                }
                pred_readers.entry(p.0).or_default().push(i);
            }
            for pd in &inst.pdsts {
                let p = pd.reg.0;
                if let Some(rs) = pred_readers.get(&p) {
                    for &rdr in rs {
                        if rdr != i && !or_family_pair(&insts[rdr], inst, p) {
                            add(rdr, i, 0, &mut edges);
                        }
                    }
                }
                if let Some(ws) = pred_writers.get(&p) {
                    for &w in ws {
                        if or_family_pair(&insts[w], inst, p) {
                            continue;
                        }
                        add(w, i, 1, &mut edges);
                    }
                }
                if pd.ty.is_partial() {
                    pred_writers.entry(p).or_default().push(i);
                } else {
                    pred_writers.insert(p, vec![i]);
                    pred_readers.remove(&p);
                }
            }
        }
    }

    // --- predicate-file barriers (pred_clear / pred_set) ------------------
    {
        let mut barrier: Option<usize> = None;
        let mut touched: Vec<usize> = Vec::new();
        for (i, inst) in insts.iter().enumerate() {
            if inst.defines_all_preds() {
                for &t in &touched {
                    add(t, i, 1, &mut edges);
                }
                if let Some(prev) = barrier {
                    add(prev, i, 1, &mut edges);
                }
                barrier = Some(i);
                touched.clear();
            } else if inst.pred_uses().next().is_some() || inst.pred_defs().next().is_some() {
                if let Some(bi) = barrier {
                    add(bi, i, lat.of(insts[bi].op), &mut edges);
                }
                touched.push(i);
            }
        }
    }

    // --- memory ordering --------------------------------------------------
    let mut last_stores: Vec<usize> = Vec::new();
    let mut loads_since_store: Vec<usize> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if inst.op.is_load() {
            for &s in &last_stores {
                add(s, i, 1, &mut edges);
            }
            loads_since_store.push(i);
        } else if inst.op.is_store() || inst.op == Op::Call {
            for &s in &last_stores {
                add(s, i, 1, &mut edges);
            }
            for &l in &loads_since_store {
                add(l, i, 0, &mut edges);
            }
            last_stores = vec![i];
            loads_since_store.clear();
        }
    }

    // --- control ordering ---------------------------------------------------
    for (j, br) in insts.iter().enumerate() {
        if !MachineConfig::is_branch_class(br.op) {
            continue;
        }
        // Everything before the branch must issue no later than it.
        for i in 0..j {
            add(i, j, 0, &mut edges);
        }
        // Later instructions may hoist above the branch only when safe.
        // Unsafe instructions may still *share* the branch's cycle (delay
        // 0): text order is preserved within a cycle, so on the taken path
        // they are squashed exactly as before — the classic "fill the
        // branch's issue group" freedom of superblock scheduling.
        let target_live = br.target.map(|t| &lv.live_in[t.index()]);
        for (i, inst) in insts.iter().enumerate().take(n).skip(j + 1) {
            let safe = inst.op.can_speculate()
                && inst.dst.is_some()
                && match target_live {
                    Some(live) => !live.regs.contains(&inst.dst.unwrap()),
                    // Calls/returns/halts: nothing may cross.
                    None => false,
                };
            if !safe {
                add(j, i, 0, &mut edges);
            }
        }
    }

    edges
        .into_iter()
        .enumerate()
        .map(|(i, mut es)| {
            // Deduplicate keeping max delay.
            es.sort_by_key(|e| (e.to, std::cmp::Reverse(e.delay)));
            es.dedup_by_key(|e| e.to);
            (i, es)
        })
        .collect()
}

/// True when two writes to the same destination may share a cycle:
/// complementary conditional moves (paper §2.2) testing the same condition
/// register.
fn commuting_writes(a: &Inst, b: &Inst) -> bool {
    let pair = matches!(
        (a.op, b.op),
        (Op::Cmov, Op::CmovCom) | (Op::CmovCom, Op::Cmov)
    );
    pair && a.srcs.get(1) == b.srcs.get(1)
}

/// True when `a` and `b` are both OR-family (or both AND-family) predicate
/// defines of predicate `p` — such defines commute (wired-OR/AND) and may
/// issue simultaneously.
fn or_family_pair(a: &Inst, b: &Inst, p: u32) -> bool {
    let fam = |i: &Inst| -> Option<bool> {
        // Some(true) = OR family, Some(false) = AND family, None = other.
        let pd = i.pdsts.iter().find(|pd| pd.reg.0 == p)?;
        if pd.ty.is_or_family() {
            Some(true)
        } else if pd.ty.is_and_family() {
            Some(false)
        } else {
            None
        }
    };
    match (fam(a), fam(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, MemWidth, Operand, PredType};

    fn sched(f: &mut Function, k: u32, b: u32) -> Vec<u32> {
        schedule_function(f, &MachineConfig::new(k, b)).unwrap();
        f.blocks[f.entry().index()]
            .insts
            .iter()
            .map(|i| i.cycle)
            .collect()
    }

    #[test]
    fn independent_ops_share_a_cycle() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let a1 = b.add(x.into(), Operand::Imm(1));
        let a2 = b.add(x.into(), Operand::Imm(2));
        let s = b.add(a1.into(), a2.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let cycles = sched(&mut f, 4, 1);
        assert_eq!(cycles[0], 0);
        assert_eq!(cycles[1], 0);
        assert_eq!(cycles[2], 1, "flow dependence respected");
    }

    #[test]
    fn one_issue_serializes() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let _ = b.add(x.into(), Operand::Imm(1));
        let _ = b.add(x.into(), Operand::Imm(2));
        b.ret(None);
        let mut f = b.finish();
        let cycles = sched(&mut f, 1, 1);
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn load_latency_stalls_consumer() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let v = b.load(MemWidth::Word, x.into(), Operand::Imm(0));
        let s = b.add(v.into(), Operand::Imm(1));
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let cycles = sched(&mut f, 4, 1);
        assert_eq!(cycles[1] - cycles[0], 2, "load latency is 2");
    }

    #[test]
    fn branch_limit_splits_branches() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let t1 = b.block();
        let t2 = b.block();
        b.br(CmpOp::Eq, x.into(), Operand::Imm(1), t1);
        b.br(CmpOp::Eq, x.into(), Operand::Imm(2), t2);
        b.ret(None);
        b.switch_to(t1);
        b.ret(None);
        b.switch_to(t2);
        b.ret(None);
        let mut f = b.finish();
        let cycles = sched(&mut f, 8, 1);
        assert!(cycles[1] > cycles[0], "1 branch per cycle");
        let mut f2 = {
            let mut b = FuncBuilder::new("t");
            let x = b.param();
            let t1 = b.block();
            let t2 = b.block();
            b.br(CmpOp::Eq, x.into(), Operand::Imm(1), t1);
            b.br(CmpOp::Eq, x.into(), Operand::Imm(2), t2);
            b.ret(None);
            b.switch_to(t1);
            b.ret(None);
            b.switch_to(t2);
            b.ret(None);
            b.finish()
        };
        let cycles2 = sched(&mut f2, 8, 2);
        assert_eq!(cycles2[0], cycles2[1], "2 branches per cycle fit together");
    }

    #[test]
    fn or_defines_issue_simultaneously() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            y.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        schedule_function(&mut f, &MachineConfig::new(8, 1)).unwrap();
        let insts = &f.blocks[0].insts;
        let defs: Vec<u32> = insts
            .iter()
            .filter(|i| i.op.is_pred_def())
            .map(|i| i.cycle)
            .collect();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0], defs[1], "wired-OR defines share a cycle:\n{f}");
        // Guarded use comes at least one cycle later.
        let guarded = insts.iter().find(|i| i.guard == Some(p)).unwrap();
        assert!(guarded.cycle > defs[0]);
    }

    #[test]
    fn complementary_cmovs_share_a_cycle() {
        let mut b = FuncBuilder::new("t");
        let c = b.param();
        let out = b.mov(Operand::Imm(0));
        b.cmov(out, Operand::Imm(1), c.into());
        b.cmov_com(out, Operand::Imm(2), c.into());
        b.ret(Some(out.into()));
        let mut f = b.finish();
        schedule_function(&mut f, &MachineConfig::new(8, 1)).unwrap();
        let insts = &f.blocks[0].insts;
        let cm: Vec<u32> = insts
            .iter()
            .filter(|i| matches!(i.op, Op::Cmov | Op::CmovCom))
            .map(|i| i.cycle)
            .collect();
        assert_eq!(cm[0], cm[1], "complementary cmovs issue together:\n{f}");
    }

    #[test]
    fn speculation_hoists_safe_load_above_exit() {
        // superblock-style: the exit branch waits on a multiply chain, so
        // a safe load on the fall-through path hoists strictly above it.
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let exit = b.block();
        let m1 = b.mul(x.into(), Operand::Imm(3));
        let m2 = b.mul(m1.into(), Operand::Imm(5));
        b.br(CmpOp::Eq, m2.into(), Operand::Imm(0), exit);
        let v = b.load(MemWidth::Word, x.into(), Operand::Imm(0));
        let s = b.add(v.into(), Operand::Imm(1));
        b.ret(Some(s.into()));
        b.switch_to(exit);
        b.ret(Some(Operand::Imm(-1)));
        let mut f = b.finish();
        schedule_function(&mut f, &MachineConfig::new(8, 1)).unwrap();
        let insts = &f.blocks[0].insts;
        let br_cycle = insts.iter().find(|i| i.op.is_branch()).unwrap().cycle;
        let ld = insts.iter().find(|i| i.op.is_load()).unwrap();
        assert!(ld.cycle < br_cycle, "load should hoist:\n{f}");
        assert!(ld.speculative, "hoisted load must be silent");
    }

    #[test]
    fn unsafe_motion_is_blocked() {
        // The store must not move above the branch.
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let exit = b.block();
        b.br(CmpOp::Eq, x.into(), Operand::Imm(0), exit);
        b.store(MemWidth::Word, x.into(), Operand::Imm(0), Operand::Imm(5));
        b.ret(None);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        schedule_function(&mut f, &MachineConfig::new(8, 1)).unwrap();
        let insts = &f.blocks[0].insts;
        let br_pos = insts.iter().position(|i| i.op.is_branch()).unwrap();
        let st_pos = insts.iter().position(|i| i.op.is_store()).unwrap();
        // The store may share the branch's cycle (squashed on the taken
        // path) but must never move textually above it.
        assert!(insts[st_pos].cycle >= insts[br_pos].cycle);
        assert!(st_pos > br_pos, "store must stay after the branch:\n{f}");
    }

    #[test]
    fn live_at_target_blocks_motion() {
        // v is returned at the exit target, so the add defining v must not
        // hoist above the branch.
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let v = b.mov(Operand::Imm(7));
        let exit = b.block();
        b.br(CmpOp::Eq, x.into(), Operand::Imm(0), exit);
        b.mov_to(v, Operand::Imm(9));
        b.ret(Some(v.into()));
        b.switch_to(exit);
        b.ret(Some(v.into()));
        let mut f = b.finish();
        schedule_function(&mut f, &MachineConfig::new(8, 1)).unwrap();
        let insts = &f.blocks[0].insts;
        let br_cycle = insts.iter().find(|i| i.op.is_branch()).unwrap().cycle;
        let mov9 = insts
            .iter()
            .find(|i| i.op == Op::Mov && i.srcs[0] == Operand::Imm(9))
            .unwrap();
        assert!(mov9.cycle > br_cycle, "{f}");
    }

    #[test]
    fn unissuable_config_is_a_typed_error_not_a_hang() {
        // A machine with no branch slots can never issue the return: the
        // issue loop must detect the deadlock and report it instead of
        // spinning forever.
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let s = b.add(x.into(), Operand::Imm(1));
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let before = f.blocks[f.entry().index()].insts.len();
        let cfg = MachineConfig {
            issue_width: 8,
            branches_per_cycle: 0,
            latency: crate::machine::Latencies::default(),
        };
        let err = schedule_function(&mut f, &cfg).unwrap_err();
        assert!(err.detail.contains("deadlock"), "{err}");
        assert_eq!(err.func, "t");
        // The block is restored intact on failure.
        assert_eq!(f.blocks[f.entry().index()].insts.len(), before);
    }

    #[test]
    fn schedule_is_executable() {
        use hyperpred_emu::{Emulator, NullSink};
        use hyperpred_lang::lower::entry_args;
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 50; i += 1) { if (i % 3 == 0) s += i * 2; else s -= 1; }
            return s;
        }";
        let mut m = hyperpred_lang::compile(src).unwrap();
        hyperpred_opt::optimize_module(&mut m);
        let want = Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut NullSink)
            .unwrap()
            .ret;
        schedule_module(&mut m, &MachineConfig::new(8, 1)).unwrap();
        m.verify().unwrap();
        let got = Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut NullSink)
            .unwrap()
            .ret;
        assert_eq!(got, want, "scheduling changed behaviour");
    }
}
