//! VLIW machine model and list scheduler.
//!
//! The paper evaluates in-order `k`-issue processors with a separate branch
//! issue limit and HP PA-7100 latencies. This crate provides:
//!
//! * [`MachineConfig`]/[`Latencies`] — the machine description;
//! * [`schedule_function`] — a dependence-DAG list scheduler that assigns
//!   an issue cycle to every instruction and physically reorders each
//!   block into issue order (so the emulator executes exactly the
//!   scheduled code), performing speculative upward code motion of silent
//!   instructions past exit branches and exploiting predicate-specific
//!   freedoms (wired-OR defines, complementary conditional moves).
//!
//! Cycle accounting against the schedule (plus caches and branch
//! prediction) happens in `hyperpred-sim`.

pub mod machine;
pub mod sched;

pub use machine::{Latencies, MachineConfig};
pub use sched::{schedule_block, schedule_function, schedule_module, BlockSchedule, SchedError};
