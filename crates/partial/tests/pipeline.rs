//! End-to-end differential test of the full→partial pipeline:
//! MiniC → classic opt → hyperblock if-conversion → promotion →
//! partial conversion → peephole, checked against the unconverted code.

use hyperpred_emu::{DynStats, Emulator, Profiler};
use hyperpred_hyperblock::{form_hyperblocks, promote, HyperblockConfig};
use hyperpred_ir::FuncId;
use hyperpred_lang::compile;
use hyperpred_lang::lower::entry_args;
use hyperpred_partial::{is_fully_converted, to_partial_module, PartialConfig, PartialStyle};

const PROGRAMS: &[(&str, &[i64])] = &[
    (
        "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i += 1) { if (i % 2 == 0) s += 3; else s += 1; }
            return s;
        }",
        &[],
    ),
    (
        "int main(int a, int b, int c) {
            int i; int j; int k; i = 0; j = 0; k = 0;
            int n;
            for (n = 0; n < 50; n += 1) {
                if (a != 0 && b != 0) j += 1;
                else if (c != 0) k += 1;
                else k -= 1;
                i += 1;
                a = (a + 1) % 3; b = (b + 2) % 5; c = (c + 1) % 2;
            }
            return i * 10000 + j * 100 + k;
        }",
        &[1, 1, 0],
    ),
    (
        "int buf[128];
        int main() {
            int i;
            for (i = 0; i < 128; i += 1) {
                if ((i & 3) == 0) buf[i] = i * 5;
                else if ((i & 3) == 1) buf[i] = i - 7;
                else buf[i] = -i;
            }
            int s; int j; s = 0;
            for (j = 0; j < 128; j += 1) s = s * 3 + buf[j];
            return s;
        }",
        &[],
    ),
    (
        "char text[64] = \"mississippi river runs deep\";
        int main() {
            int i; int hits; hits = 0;
            for (i = 0; text[i] != 0; i += 1) {
                if (text[i] == 's' || text[i] == 'i') hits += 1;
            }
            return hits;
        }",
        &[],
    ),
];

fn pipeline(src: &str, args: &[i64], config: &PartialConfig) -> (i64, i64, DynStats, DynStats) {
    let mut m = compile(src).unwrap();
    hyperpred_opt::optimize_module(&mut m);
    let reference = m.clone();
    let mut prof = Profiler::new();
    Emulator::new(&m)
        .run("main", &entry_args(args), &mut prof)
        .unwrap();
    for i in 0..m.funcs.len() {
        let mut f = m.funcs[i].clone();
        form_hyperblocks(
            &mut f,
            FuncId(i as u32),
            &prof,
            &HyperblockConfig::default(),
        )
        .unwrap();
        promote(&mut f);
        m.funcs[i] = f;
    }
    let full = m.clone();
    to_partial_module(&mut m, config);
    m.verify().unwrap_or_else(|e| panic!("verify: {e}\n{m}"));
    for f in &m.funcs {
        assert!(
            is_fully_converted(f),
            "leftover predication in {}:\n{f}",
            f.name
        );
    }
    let mut s_full = DynStats::new();
    let r_full = Emulator::new(&full)
        .run("main", &entry_args(args), &mut s_full)
        .unwrap()
        .ret;
    let mut s_part = DynStats::new();
    let r_part = Emulator::new(&m)
        .run("main", &entry_args(args), &mut s_part)
        .unwrap()
        .ret;
    let r_ref = Emulator::new(&reference)
        .run("main", &entry_args(args), &mut hyperpred_emu::NullSink)
        .unwrap()
        .ret;
    assert_eq!(r_full, r_ref, "hyperblock broke:\n{src}");
    (r_full, r_part, s_full, s_part)
}

#[test]
fn partial_conversion_preserves_behaviour_cmov() {
    for (src, args) in PROGRAMS {
        let (full, part, _, _) = pipeline(src, args, &PartialConfig::default());
        assert_eq!(full, part, "partial conversion changed behaviour:\n{src}");
    }
}

#[test]
fn partial_conversion_preserves_behaviour_select() {
    let config = PartialConfig {
        style: PartialStyle::Select,
        ..PartialConfig::default()
    };
    for (src, args) in PROGRAMS {
        let (full, part, _, _) = pipeline(src, args, &config);
        assert_eq!(full, part, "select conversion changed behaviour:\n{src}");
    }
}

#[test]
fn partial_conversion_preserves_behaviour_excepting() {
    let config = PartialConfig {
        nonexcepting: false,
        ..PartialConfig::default()
    };
    for (src, args) in PROGRAMS {
        let (full, part, _, _) = pipeline(src, args, &config);
        assert_eq!(full, part, "excepting conversion changed behaviour:\n{src}");
    }
}

#[test]
fn partial_code_executes_more_instructions_than_full() {
    // Table 2's central observation: conditional-move code runs more
    // dynamic instructions than fully predicated code.
    let mut total_full = 0;
    let mut total_part = 0;
    for (src, args) in PROGRAMS {
        let (_, _, sf, sp) = pipeline(src, args, &PartialConfig::default());
        total_full += sf.insts;
        total_part += sp.insts;
    }
    assert!(
        total_part > total_full,
        "cmov code should execute more instructions ({total_part} !> {total_full})"
    );
}

#[test]
fn partial_code_uses_cmovs_and_no_branér_increase() {
    let (src, args) = PROGRAMS[1];
    let (_, _, sf, sp) = pipeline(src, args, &PartialConfig::default());
    assert!(
        sp.cmovs > 0,
        "converted code must contain conditional moves"
    );
    // Both models eliminate the same branches (paper §1: partial predication
    // removes as many branches as full).
    assert_eq!(sf.branches, sp.branches, "branch counts should match");
}
