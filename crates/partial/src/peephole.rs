//! Peephole clean-up after the basic conversions (paper §3.2).
//!
//! The basic conversions handle each instruction independently and leave
//! redundancy behind:
//!
//! * duplicate comparisons (each predicate define emitted its own) — the
//!   classic CSE in `hyperpred-opt` removes the identical ones;
//! * *complementary* comparisons — [`invert_comparisons`] rewrites all
//!   invertible uses of one onto the other (`cmov` ↔ `cmov_com`, `select`
//!   arm swap) so dead-code elimination can delete it;
//! * sequential OR chains from OR-type defines — rebuilt as balanced trees
//!   by [`crate::ortree`].

use crate::convert::PartialConfig;
use hyperpred_ir::{Function, Op, Operand, Reg};
use std::collections::HashMap;

/// Runs the whole post-conversion peephole pipeline.
pub fn run(f: &mut Function, config: &PartialConfig) {
    hyperpred_opt::optimize(f);
    if invert_comparisons(f) {
        hyperpred_opt::optimize(f);
    }
    if config.or_tree {
        crate::ortree::run(f);
        hyperpred_opt::optimize(f);
    }
}

/// Finds pairs of complementary comparisons in a block and rewrites the
/// uses of the second onto the first, when every use is invertible.
/// Returns true on change.
pub fn invert_comparisons(f: &mut Function) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        if f.layout_pos(hyperpred_ir::BlockId(bi as u32)).is_none() {
            continue;
        }
        let insts = &mut f.blocks[bi].insts;
        // Map (cmp, srcs) -> dst for unguarded comparisons, tracked
        // forward; a redefinition of any involved register invalidates.
        // For simplicity (and because converted hyperblocks define each
        // temp once), restrict to registers defined exactly once in the
        // block.
        let mut def_count: HashMap<Reg, usize> = HashMap::new();
        for i in insts.iter() {
            if let Some(d) = i.dst {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
        // Parameters have zero in-block definitions and are stable too.
        let stable = |r: Reg| def_count.get(&r).copied().unwrap_or(0) <= 1;

        // Collect comparisons with stable sources and a single-def dest.
        let mut cmps: Vec<(usize, hyperpred_ir::CmpOp, Vec<Operand>, Reg)> = Vec::new();
        for (idx, i) in insts.iter().enumerate() {
            if let Op::Cmp(c) = i.op {
                if i.guard.is_none() {
                    let d = i.dst.unwrap();
                    let srcs_ok = i.src_regs().all(stable);
                    if def_count.get(&d).copied() == Some(1) && srcs_ok {
                        cmps.push((idx, c, i.srcs.clone(), d));
                    }
                }
            }
        }
        // Find complementary pairs (first wins; second's uses rewritten).
        for a in 0..cmps.len() {
            for b in (a + 1)..cmps.len() {
                let (ia, ca, sa, da) = (&cmps[a].0, cmps[a].1, &cmps[a].2, cmps[a].3);
                let (_ib, cb, sb, db) = (&cmps[b].0, cmps[b].1, &cmps[b].2, cmps[b].3);
                if sa != sb || cb != ca.inverse() || da == db {
                    continue;
                }
                // Every use of db must be invertible.
                let uses: Vec<usize> = insts
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| i.src_regs().any(|r| r == db))
                    .map(|(j, _)| j)
                    .collect();
                // Only *truthiness* positions are invertible on a 64-bit
                // register file: `cmov`/`select` conditions test `!= 0`.
                // (The paper's `and_not`/`or_not` flips assume 1-bit
                // predicate values; bitwise complement of a 0/1 register is
                // not value-exact, e.g. `or_not x, 0` yields -1, so we do
                // not flip logical ops.)
                let all_invertible = uses.iter().all(|&j| {
                    let i = &insts[j];
                    match i.op {
                        Op::Cmov | Op::CmovCom => {
                            i.srcs[1] == Operand::Reg(db) && i.srcs[0] != Operand::Reg(db)
                        }
                        Op::Select => {
                            i.srcs[2] == Operand::Reg(db)
                                && i.srcs[0] != Operand::Reg(db)
                                && i.srcs[1] != Operand::Reg(db)
                        }
                        _ => false,
                    }
                });
                if !all_invertible || uses.is_empty() {
                    continue;
                }
                // The replacement register must be defined before every use.
                if uses.iter().any(|&j| j < *ia) {
                    continue;
                }
                for &j in &uses {
                    let i = &mut insts[j];
                    match i.op {
                        Op::Cmov => {
                            i.op = Op::CmovCom;
                            i.srcs[1] = Operand::Reg(da);
                        }
                        Op::CmovCom => {
                            i.op = Op::Cmov;
                            i.srcs[1] = Operand::Reg(da);
                        }
                        Op::Select => {
                            i.srcs.swap(0, 1);
                            i.srcs[2] = Operand::Reg(da);
                        }
                        _ => unreachable!("checked invertible"),
                    }
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_ir::{CmpOp, FuncBuilder, Module};

    fn run_main(m: &Module, args: &[i64]) -> i64 {
        Emulator::new(m)
            .run("main", args, &mut NullSink)
            .unwrap()
            .ret
    }

    #[test]
    fn complementary_compare_is_eliminated() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let c1 = b.cmp(CmpOp::Lt, x.into(), Operand::Imm(10));
        let c2 = b.cmp(CmpOp::Ge, x.into(), Operand::Imm(10));
        let out = b.mov(Operand::Imm(0));
        b.cmov(out, Operand::Imm(1), c1.into());
        b.cmov(out, Operand::Imm(2), c2.into());
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        assert!(invert_comparisons(&mut m.funcs[0]));
        hyperpred_opt::optimize(&mut m.funcs[0]);
        // Only one comparison should remain.
        let n = m.funcs[0]
            .insts()
            .filter(|(_, _, i)| matches!(i.op, Op::Cmp(_)))
            .count();
        assert_eq!(n, 1, "{}", m.funcs[0]);
        for x in [5, 15] {
            assert_eq!(run_main(&m0, &[x]), run_main(&m, &[x]));
        }
    }

    #[test]
    fn logical_op_uses_are_not_flipped() {
        // `or x, c` -> `or_not x, c'` is not value-exact on a 64-bit
        // register file (bitwise complement of 0 is -1), so logical uses
        // must block the rewrite.
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let g = b.param();
        let _c1 = b.cmp(CmpOp::Eq, x.into(), Operand::Imm(0));
        let c2 = b.cmp(CmpOp::Ne, x.into(), Operand::Imm(0));
        let o = b.op2(Op::Or, g.into(), c2.into());
        b.ret(Some(o.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        assert!(!invert_comparisons(&mut m.funcs[0]));
    }

    #[test]
    fn select_condition_flips_and_swaps_arms() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let c1 = b.cmp(CmpOp::Lt, x.into(), Operand::Imm(0));
        let c2 = b.cmp(CmpOp::Ge, x.into(), Operand::Imm(0));
        let s = b.select(Operand::Imm(10), Operand::Imm(20), c2.into());
        b.ret(Some(s.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        assert!(invert_comparisons(&mut m.funcs[0]));
        let _ = c1;
        m.verify().unwrap();
        for x in [-5, 5] {
            assert_eq!(run_main(&m0, &[x]), run_main(&m, &[x]));
        }
    }

    #[test]
    fn non_invertible_use_blocks_the_rewrite() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let _c1 = b.cmp(CmpOp::Eq, x.into(), Operand::Imm(0));
        let c2 = b.cmp(CmpOp::Ne, x.into(), Operand::Imm(0));
        // c2 used as an addend: not invertible.
        let s = b.add(c2.into(), Operand::Imm(5));
        b.ret(Some(s.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        assert!(!invert_comparisons(&mut m.funcs[0]));
    }
}
