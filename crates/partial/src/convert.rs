//! Basic conversions from fully predicated code to conditional-move code
//! (paper Figures 3 and 4).

use hyperpred_ir::module::SAFE_ADDR;
use hyperpred_ir::{CmpOp, Function, Inst, Op, Operand, PredReg, PredType, Reg};
use std::collections::HashMap;

/// Which partial-predication primitive to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialStyle {
    /// `cmov`/`cmov_com` (the paper's Conditional Move model).
    #[default]
    Cmov,
    /// `select` (Multiflow-style); always writes its destination, which
    /// removes the read-modify-write output dependence of `cmov`.
    Select,
}

/// Conversion configuration.
#[derive(Debug, Clone, Copy)]
pub struct PartialConfig {
    /// Primitive used to conditionally commit results.
    pub style: PartialStyle,
    /// Whether the target provides non-excepting (silent) instruction
    /// forms. True selects the short Fig. 3 sequences; false the longer
    /// Fig. 4 sequences that guard source operands with `$safe_val` /
    /// `$safe_addr`.
    pub nonexcepting: bool,
    /// Apply the OR-tree height-reduction peephole.
    pub or_tree: bool,
}

impl Default for PartialConfig {
    fn default() -> PartialConfig {
        PartialConfig {
            style: PartialStyle::Cmov,
            nonexcepting: true,
            or_tree: true,
        }
    }
}

/// Rewrites every predicated instruction of `f` into an equivalent
/// unpredicated sequence using conditional moves / selects.
///
/// # Panics
/// Panics on predicated calls or returns — hyperblock formation never
/// produces them (call blocks are excluded from hyperblocks).
pub fn convert_to_partial(f: &mut Function, config: &PartialConfig) {
    // Map each predicate register to a general register.
    let mut pmap: HashMap<PredReg, Reg> = HashMap::new();
    // Preds that are targets of OR/AND-family defines need explicit
    // initialization at pred_clear/pred_set points.
    let mut partial_targets: Vec<PredReg> = Vec::new();
    for (_, _, inst) in f.insts() {
        for pd in &inst.pdsts {
            if pd.ty.is_partial() && !partial_targets.contains(&pd.reg) {
                partial_targets.push(pd.reg);
            }
        }
    }
    partial_targets.sort();

    for bi in 0..f.blocks.len() {
        if f.layout_pos(hyperpred_ir::BlockId(bi as u32)).is_none() {
            continue;
        }
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut out: Vec<Inst> = Vec::with_capacity(old.len());
        for inst in old {
            convert_inst(f, inst, config, &mut pmap, &partial_targets, &mut out);
        }
        f.blocks[bi].insts = out;
    }
}

fn preg(f: &mut Function, pmap: &mut HashMap<PredReg, Reg>, p: PredReg) -> Reg {
    *pmap.entry(p).or_insert_with(|| f.fresh_reg())
}

fn push_op2(f: &mut Function, out: &mut Vec<Inst>, op: Op, dst: Reg, a: Operand, b: Operand) {
    let mut i = f.make_inst(op);
    i.dst = Some(dst);
    i.srcs = vec![a, b];
    out.push(i);
}

/// Commits `value` into `dst` when `cond` (a 0/1 register) is true,
/// using the configured primitive.
fn commit(
    f: &mut Function,
    out: &mut Vec<Inst>,
    style: PartialStyle,
    dst: Reg,
    value: Operand,
    cond: Operand,
) {
    match style {
        PartialStyle::Cmov => {
            let mut i = f.make_inst(Op::Cmov);
            i.dst = Some(dst);
            i.srcs = vec![value, cond];
            out.push(i);
        }
        PartialStyle::Select => {
            let mut i = f.make_inst(Op::Select);
            i.dst = Some(dst);
            i.srcs = vec![value, Operand::Reg(dst), cond];
            out.push(i);
        }
    }
}

fn convert_inst(
    f: &mut Function,
    mut inst: Inst,
    config: &PartialConfig,
    pmap: &mut HashMap<PredReg, Reg>,
    partial_targets: &[PredReg],
    out: &mut Vec<Inst>,
) {
    match inst.op {
        // ---- predicate file management ---------------------------------
        Op::PredClear | Op::PredSet => {
            // Only OR/AND-family targets need explicit initialization; U
            // predicates are always fully written by their defines.
            let v = if inst.op == Op::PredClear { 0 } else { 1 };
            for &p in partial_targets {
                let r = preg(f, pmap, p);
                let mut m = f.make_inst(Op::Mov);
                m.dst = Some(r);
                m.srcs = vec![Operand::Imm(v)];
                out.push(m);
            }
        }
        // ---- predicate defines ------------------------------------------
        Op::PredDef(cmp) | Op::FPredDef(cmp) => {
            let is_f = matches!(inst.op, Op::FPredDef(_));
            let guard = inst.guard.map(|g| preg(f, pmap, g));
            let pdsts = inst.pdsts.clone();
            for pd in pdsts {
                let pout = preg(f, pmap, pd.reg);
                // Comparison (complemented types compare the inverse).
                let c = if pd.ty.is_complemented() {
                    cmp.inverse()
                } else {
                    cmp
                };
                let cop = if is_f { Op::FCmp(c) } else { Op::Cmp(c) };
                let t = f.fresh_reg();
                push_op2(f, out, cop, t, inst.srcs[0], inst.srcs[1]);
                match (pd.ty, guard) {
                    (PredType::U | PredType::UBar, None) => {
                        // Pout = cmp  (write directly; drop the temp via a mov)
                        let mut m = f.make_inst(Op::Mov);
                        m.dst = Some(pout);
                        m.srcs = vec![Operand::Reg(t)];
                        out.push(m);
                    }
                    (PredType::U | PredType::UBar, Some(g)) => {
                        // Pout = Pin & cmp
                        push_op2(f, out, Op::And, pout, g.into(), t.into());
                    }
                    (PredType::Or | PredType::OrBar, g) => {
                        let term = match g {
                            Some(g) => {
                                let t2 = f.fresh_reg();
                                push_op2(f, out, Op::And, t2, g.into(), t.into());
                                t2
                            }
                            None => t,
                        };
                        push_op2(f, out, Op::Or, pout, pout.into(), term.into());
                    }
                    (PredType::And | PredType::AndBar, g) => {
                        // Pout &= (cmp' | !Pin); unguarded: Pout &= cmp'
                        // where cmp' is true when the predicate is kept.
                        // For AND type "cleared when Pin && !cmp", keep
                        // condition is cmp itself (already inverted above
                        // for AndBar).
                        let term = match g {
                            Some(g) => {
                                let t2 = f.fresh_reg();
                                push_op2(f, out, Op::OrNot, t2, t.into(), g.into());
                                t2
                            }
                            None => t,
                        };
                        push_op2(f, out, Op::And, pout, pout.into(), term.into());
                    }
                }
            }
        }
        // ---- control flow ------------------------------------------------
        Op::Br(c) => match inst.guard.take() {
            None => out.push(inst),
            Some(g) => {
                let g = preg(f, pmap, g);
                // Fig. 3: `blt src1,src2,label (Pin)` becomes
                // `ge t,src1,src2 ; blt t,Pin,label` — taken iff the
                // original condition holds (t = 0) and Pin = 1.
                let t = f.fresh_reg();
                push_op2(f, out, Op::Cmp(c.inverse()), t, inst.srcs[0], inst.srcs[1]);
                let mut br = f.make_inst(Op::Br(CmpOp::Lt));
                br.srcs = vec![t.into(), g.into()];
                br.target = inst.target;
                out.push(br);
            }
        },
        Op::Jump => match inst.guard.take() {
            None => out.push(inst),
            Some(g) => {
                let g = preg(f, pmap, g);
                let mut br = f.make_inst(Op::Br(CmpOp::Ne));
                br.srcs = vec![g.into(), Operand::Imm(0)];
                br.target = inst.target;
                out.push(br);
            }
        },
        Op::Call | Op::Ret | Op::Halt => {
            assert!(
                inst.guard.is_none(),
                "predicated calls/returns are never generated"
            );
            out.push(inst);
        }
        // ---- stores -------------------------------------------------------
        Op::St(w) => match inst.guard.take() {
            None => out.push(inst),
            Some(g) => {
                let g = preg(f, pmap, g);
                // Compute the address; redirect to $safe_addr when the
                // predicate is false (Fig. 3).
                let ta = f.fresh_reg();
                push_op2(f, out, Op::Add, ta, inst.srcs[0], inst.srcs[1]);
                let mut redirect = f.make_inst(Op::CmovCom);
                redirect.dst = Some(ta);
                redirect.srcs = vec![Operand::Imm(SAFE_ADDR as i64), g.into()];
                out.push(redirect);
                let mut st = f.make_inst(Op::St(w));
                st.srcs = vec![ta.into(), Operand::Imm(0), inst.srcs[2]];
                out.push(st);
            }
        },
        // ---- conditional moves already in the code -----------------------
        Op::Cmov | Op::CmovCom | Op::Select => match inst.guard.take() {
            None => out.push(inst),
            Some(g) => {
                // Fold the guard into the condition operand.
                let g = preg(f, pmap, g);
                let ci = inst.srcs.len() - 1;
                let t = f.fresh_reg();
                if inst.op == Op::CmovCom {
                    // fires when cond==0: guarded form fires when
                    // g && cond==0  ==  !( !g || cond )  — compute
                    // cond' = cond | !g and keep cmov_com.
                    push_op2(f, out, Op::OrNot, t, inst.srcs[ci], g.into());
                } else {
                    push_op2(f, out, Op::And, t, g.into(), inst.srcs[ci]);
                }
                inst.srcs[ci] = t.into();
                out.push(inst);
            }
        },
        // ---- everything else (ALU, compares, loads, moves, fp) -----------
        _ => match inst.guard.take() {
            None => out.push(inst),
            Some(g) => {
                let g = preg(f, pmap, g);
                let Some(d) = inst.dst else {
                    // Guarded nop: drop.
                    return;
                };
                if config.nonexcepting || !inst.op.may_trap() {
                    // Fig. 3: speculate into a temp, then commit.
                    let t = f.fresh_reg();
                    inst.dst = Some(t);
                    if inst.op.may_trap() {
                        inst.speculative = true;
                    }
                    out.push(inst);
                    commit(f, out, config.style, d, t.into(), g.into());
                } else {
                    // Fig. 4: no silent forms — substitute a safe source so
                    // the (non-speculative) instruction cannot trap.
                    match inst.op {
                        Op::Div | Op::Rem | Op::FDiv => {
                            // Divisor becomes 1 when the predicate is
                            // false.
                            let safe = if inst.op == Op::FDiv {
                                Operand::fimm(1.0)
                            } else {
                                Operand::Imm(1)
                            };
                            let ts = f.fresh_reg();
                            let mut m = f.make_inst(Op::Mov);
                            m.dst = Some(ts);
                            m.srcs = vec![inst.srcs[1]];
                            out.push(m);
                            let mut c = f.make_inst(Op::CmovCom);
                            c.dst = Some(ts);
                            c.srcs = vec![safe, g.into()];
                            out.push(c);
                            let t = f.fresh_reg();
                            let mut op = f.make_inst(inst.op);
                            op.dst = Some(t);
                            op.srcs = vec![inst.srcs[0], ts.into()];
                            out.push(op);
                            commit(f, out, config.style, d, t.into(), g.into());
                        }
                        Op::Ld(w) => {
                            // Address becomes $safe_addr when false.
                            let ta = f.fresh_reg();
                            push_op2(f, out, Op::Add, ta, inst.srcs[0], inst.srcs[1]);
                            let mut c = f.make_inst(Op::CmovCom);
                            c.dst = Some(ta);
                            c.srcs = vec![Operand::Imm(SAFE_ADDR as i64), g.into()];
                            out.push(c);
                            let t = f.fresh_reg();
                            let mut ld = f.make_inst(Op::Ld(w));
                            ld.dst = Some(t);
                            ld.srcs = vec![ta.into(), Operand::Imm(0)];
                            out.push(ld);
                            commit(f, out, config.style, d, t.into(), g.into());
                        }
                        _ => unreachable!("may_trap covers div/rem/fdiv/load"),
                    }
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_fully_converted;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_ir::{FuncBuilder, MemWidth, Module};

    fn run_module(m: &Module, args: &[i64]) -> i64 {
        let mut emu = Emulator::new(m);
        emu.run("main", args, &mut NullSink).unwrap().ret
    }

    /// Builds: p,q = (x == 0) and complement; y = p ? 10 : 20.
    fn diamond() -> Module {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let y = b.mov(Operand::Imm(0));
        b.mov_to(y, Operand::Imm(10));
        b.guard_last(p);
        b.mov_to(y, Operand::Imm(20));
        b.guard_last(q);
        b.ret(Some(y.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m
    }

    #[test]
    fn diamond_converts_and_matches() {
        for style in [PartialStyle::Cmov, PartialStyle::Select] {
            let m0 = diamond();
            let mut m1 = m0.clone();
            let config = PartialConfig {
                style,
                ..PartialConfig::default()
            };
            convert_to_partial(&mut m1.funcs[0], &config);
            m1.verify().unwrap();
            assert!(is_fully_converted(&m1.funcs[0]), "{}", m1.funcs[0]);
            for x in [0, 5] {
                assert_eq!(
                    run_module(&m0, &[x]),
                    run_module(&m1, &[x]),
                    "style {style:?}"
                );
            }
        }
    }

    #[test]
    fn guarded_store_redirects_to_safe_addr() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let addr = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.store(
            MemWidth::Word,
            addr.into(),
            Operand::Imm(0),
            Operand::Imm(42),
        );
        b.guard_last(p);
        let v = b.load(MemWidth::Word, addr.into(), Operand::Imm(0));
        b.ret(Some(v.into()));
        let mut m = Module::new();
        let g = m.add_global("slot", 8, vec![]);
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        let mut m1 = m;
        convert_to_partial(&mut m1.funcs[0], &PartialConfig::default());
        m1.verify().unwrap();
        for x in [0, 1] {
            assert_eq!(
                run_module(&m0, &[x, g as i64]),
                run_module(&m1, &[x, g as i64]),
                "x={x}"
            );
        }
        // The converted code must contain a store through a cmov_com'd
        // address, never a guarded store.
        assert!(is_fully_converted(&m1.funcs[0]));
        assert!(m1.funcs[0].insts().any(|(_, _, i)| i.op == Op::CmovCom));
    }

    #[test]
    fn or_type_define_becomes_or_chain() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            y.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        let mut m1 = m;
        convert_to_partial(&mut m1.funcs[0], &PartialConfig::default());
        m1.verify().unwrap();
        for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert_eq!(run_module(&m0, &[x, y]), run_module(&m1, &[x, y]));
        }
        let ors = m1.funcs[0]
            .insts()
            .filter(|(_, _, i)| i.op == Op::Or)
            .count();
        assert_eq!(ors, 2, "each OR define deposits with a logical or");
    }

    #[test]
    fn guarded_branch_uses_figure3_encoding() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        let target = b.block();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.br(CmpOp::Lt, y.into(), Operand::Imm(10), target);
        b.guard_last(p);
        b.ret(Some(Operand::Imm(1)));
        b.switch_to(target);
        b.ret(Some(Operand::Imm(2)));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        let mut m1 = m;
        convert_to_partial(&mut m1.funcs[0], &PartialConfig::default());
        m1.verify().unwrap();
        for (x, y) in [(0, 5), (0, 15), (1, 5), (1, 15)] {
            assert_eq!(run_module(&m0, &[x, y]), run_module(&m1, &[x, y]));
        }
    }

    #[test]
    fn excepting_conversion_guards_divisor_and_address() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let d = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            d.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(-1));
        let q = b.op2(Op::Div, x.into(), d.into());
        b.guard_last(p);
        b.mov_to(out, q.into());
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        let mut m1 = m.clone();
        let config = PartialConfig {
            nonexcepting: false,
            ..PartialConfig::default()
        };
        convert_to_partial(&mut m1.funcs[0], &config);
        m1.verify().unwrap();
        // d = 0 would trap a plain div; the Fig. 4 sequence must not trap
        // and must match the predicated original.
        for (x, d) in [(10, 2), (10, 0)] {
            assert_eq!(run_module(&m0, &[x, d]), run_module(&m1, &[x, d]));
        }
        // No speculative (silent) instructions may be emitted.
        assert!(m1.funcs[0].insts().all(|(_, _, i)| !i.speculative));
    }

    #[test]
    fn pred_clear_initializes_only_partial_targets() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred(); // OR target
        let q = b.fresh_pred(); // U target
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Ne,
            &[(q, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(1));
        b.guard_last(p);
        b.mov_to(out, Operand::Imm(2));
        b.guard_last(q);
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let mut m1 = m.clone();
        convert_to_partial(&mut m1.funcs[0], &PartialConfig::default());
        // Exactly one `mov <preg>, 0` from the pred_clear (for p only).
        let init_movs = m1.funcs[0].blocks[0]
            .insts
            .iter()
            .take_while(|i| i.op == Op::Mov)
            .count();
        assert_eq!(init_movs, 1);
        for x in [0, 3] {
            assert_eq!(run_module(&m, &[x]), run_module(&m1, &[x]));
        }
    }
}
