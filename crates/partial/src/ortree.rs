//! OR-tree height reduction (paper §3.2).
//!
//! With full predicate support, OR-type defines to the same predicate can
//! all issue in the same cycle (wired-OR). After conversion to partial
//! predication they become a *sequential* chain
//!
//! ```text
//! or a, a, t1
//! or a, a, t2
//! or a, a, t3
//! ...
//! ```
//!
//! with dependence height `n`. Associativity lets us rebuild the reduction
//! as a balanced tree of height `ceil(log2(n+1))`, which is what makes the
//! conditional-move model competitive on branch-merge code like the
//! paper's `grep` example.

use hyperpred_ir::{Function, Inst, Op, Operand, Reg};

/// Balances every accumulator chain of `or`/`and` instructions in every
/// block. Returns the number of chains rebuilt.
pub fn run(f: &mut Function) -> usize {
    let mut rebuilt = 0;
    for bi in 0..f.blocks.len() {
        if f.layout_pos(hyperpred_ir::BlockId(bi as u32)).is_none() {
            continue;
        }
        loop {
            let insts = std::mem::take(&mut f.blocks[bi].insts);
            match rebuild_one(f, insts) {
                Ok(new) => {
                    f.blocks[bi].insts = new;
                    rebuilt += 1;
                }
                Err(old) => {
                    f.blocks[bi].insts = old;
                    break;
                }
            }
        }
    }
    rebuilt
}

/// A link `op a, a, t` of an accumulator chain.
fn chain_link(inst: &Inst, acc: Reg, op: Op) -> Option<Operand> {
    if inst.op == op
        && inst.guard.is_none()
        && inst.dst == Some(acc)
        && inst.srcs[0] == Operand::Reg(acc)
        && inst.srcs[1] != Operand::Reg(acc)
    {
        Some(inst.srcs[1])
    } else {
        None
    }
}

/// Finds one chain of length ≥ 3 and rebuilds it balanced; `Err` returns
/// the block unchanged when there is nothing to do.
fn rebuild_one(f: &mut Function, insts: Vec<Inst>) -> Result<Vec<Inst>, Vec<Inst>> {
    for op in [Op::Or, Op::And] {
        for start in 0..insts.len() {
            let Some(acc) = insts[start].dst else {
                continue;
            };
            if chain_link(&insts[start], acc, op).is_none() {
                continue;
            }
            // Extend the chain: links may be separated by instructions that
            // neither read nor write the accumulator and are not exits
            // (we must not move a term computation across an exit branch —
            // conservatively, links must be contiguous up to independent
            // non-branch instructions).
            let mut terms = Vec::new();
            let mut links = Vec::new();
            let mut i = start;
            while i < insts.len() {
                if let Some(t) = chain_link(&insts[i], acc, op) {
                    terms.push(t);
                    links.push(i);
                    i += 1;
                    continue;
                }
                let inst = &insts[i];
                let touches_acc =
                    inst.src_regs().any(|r| r == acc) || inst.dst == Some(acc) || inst.is_exit();
                // Terms must also not be redefined between their link and
                // the chain end; requiring "does not define any term
                // register" keeps it safe.
                let defines_term = inst.dst.is_some_and(|d| terms.contains(&Operand::Reg(d)));
                if touches_acc || defines_term {
                    break;
                }
                i += 1;
            }
            if links.len() < 3 {
                continue;
            }
            // Rebuild: a balanced tree over `terms`, then one final
            // `op acc, acc, tree` at the position of the last link.
            let mut out = Vec::with_capacity(insts.len() + terms.len());
            let last_link = *links.last().unwrap();
            for (j, inst) in insts.iter().enumerate() {
                if links.contains(&j) {
                    continue;
                }
                out.push(inst.clone());
            }
            // Insertion index: after all retained instructions that
            // originally preceded the last link.
            let before_last = insts[..last_link]
                .iter()
                .enumerate()
                .filter(|(j, _)| !links.contains(j))
                .count();
            let mut tree: Vec<Operand> = terms.clone();
            let mut emitted: Vec<Inst> = Vec::new();
            while tree.len() > 1 {
                let mut next = Vec::with_capacity(tree.len().div_ceil(2));
                for pair in tree.chunks(2) {
                    if pair.len() == 2 {
                        let t = f.fresh_reg();
                        let mut n = f.make_inst(op);
                        n.dst = Some(t);
                        n.srcs = vec![pair[0], pair[1]];
                        emitted.push(n);
                        next.push(Operand::Reg(t));
                    } else {
                        next.push(pair[0]);
                    }
                }
                tree = next;
            }
            let mut fin = f.make_inst(op);
            fin.dst = Some(acc);
            fin.srcs = vec![Operand::Reg(acc), tree[0]];
            emitted.push(fin);
            let tail = out.split_off(before_last);
            out.extend(emitted);
            out.extend(tail);
            return Ok(out);
        }
    }
    Err(insts)
}

/// Longest sequential dependence chain through `or`/`and` accumulators in
/// a block — a cheap proxy for checking height reduction in tests.
pub fn acc_chain_height(f: &Function, block: hyperpred_ir::BlockId, acc: Reg) -> usize {
    f.block(block)
        .insts
        .iter()
        .filter(|i| i.dst == Some(acc) && i.srcs.first() == Some(&Operand::Reg(acc)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_ir::{FuncBuilder, Module};

    /// acc = x0|x1|...|x5 via a sequential chain.
    fn chain_module(n: usize) -> (Module, Reg) {
        let mut b = FuncBuilder::new("main");
        let seed = b.param();
        let acc = b.mov(Operand::Imm(0));
        let mut xs = Vec::new();
        for k in 0..n {
            // xk = (seed >> k) & 1
            let sh = b.op2(Op::Shr, seed.into(), Operand::Imm(k as i64));
            let bit = b.op2(Op::And, sh.into(), Operand::Imm(1));
            xs.push(bit);
        }
        for &x in &xs {
            b.op2_to(Op::Or, acc, acc.into(), x.into());
        }
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        (m, acc)
    }

    #[test]
    fn balances_and_preserves_value() {
        let (m0, acc) = chain_module(6);
        let mut m1 = m0.clone();
        let rebuilt = run(&mut m1.funcs[0]);
        assert!(rebuilt >= 1);
        m1.verify().unwrap();
        let entry = m1.funcs[0].entry();
        assert_eq!(
            acc_chain_height(&m1.funcs[0], entry, acc),
            1,
            "chain through acc collapses to a single deposit:\n{}",
            m1.funcs[0]
        );
        for seed in [0i64, 1, 0b100000, 0b111111, 37] {
            let r0 = Emulator::new(&m0)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            let r1 = Emulator::new(&m1)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            assert_eq!(r0, r1, "seed={seed}");
        }
    }

    #[test]
    fn short_chains_are_left_alone() {
        let (mut m, _) = chain_module(2);
        assert_eq!(run(&mut m.funcs[0]), 0);
    }

    #[test]
    fn does_not_cross_exit_branches() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let acc = b.mov(Operand::Imm(0));
        let exit = b.block();
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(1));
        b.br(hyperpred_ir::CmpOp::Eq, x.into(), Operand::Imm(0), exit);
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(2));
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(4));
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(8));
        b.ret(Some(acc.into()));
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        run(&mut m.funcs[0]);
        m.verify().unwrap();
        for x in [0, 1] {
            let r0 = Emulator::new(&m0)
                .run("main", &[x], &mut NullSink)
                .unwrap()
                .ret;
            let r1 = Emulator::new(&m)
                .run("main", &[x], &mut NullSink)
                .unwrap()
                .ret;
            assert_eq!(r0, r1);
        }
    }
}
