//! OR-tree height reduction (paper §3.2).
//!
//! With full predicate support, OR-type defines to the same predicate can
//! all issue in the same cycle (wired-OR). After conversion to partial
//! predication they become a *sequential* chain
//!
//! ```text
//! or a, a, t1
//! or a, a, t2
//! or a, a, t3
//! ...
//! ```
//!
//! with dependence height `n`. Associativity lets us rebuild the reduction
//! as a balanced tree of height `ceil(log2(n+1))`, which is what makes the
//! conditional-move model competitive on branch-merge code like the
//! paper's `grep` example.

use hyperpred_ir::analysis::{forward, DefState, ForwardAnalysis, MustDefined, RelAnalysis};
use hyperpred_ir::{BlockId, Cfg, Function, Inst, Op, Operand, PredReg, Reg, RelState};

/// Balances every accumulator chain of `or`/`and` instructions in every
/// block. Returns the number of chains rebuilt.
///
/// Unguarded chains rebuild exactly as before. A chain whose links all
/// carry one common guard `p` (same-guard deposits into one accumulator
/// commute) also rebuilds: the balanced tree over the terms is computed
/// unguarded into fresh registers — each term register must be provably
/// defined for an unguarded read — and the single final deposit keeps the
/// guard, so a false `p` still leaves the accumulator untouched. Guarded
/// chains may additionally cross accumulator reads/writes and exits whose
/// guard is *disjoint* from `p` (relation query): if such an instruction
/// executes, `p` was false and no deposit fired, so the accumulator is
/// identical on both sides.
pub fn run(f: &mut Function) -> usize {
    let mut rebuilt = 0;
    for bi in 0..f.blocks.len() {
        if f.layout_pos(hyperpred_ir::BlockId(bi as u32)).is_none() {
            continue;
        }
        loop {
            // Guarded chains need flow facts; post-conversion code has no
            // guards and skips both fixpoints entirely.
            let flow = has_guarded_acc(f, bi).then(|| block_flow(f, bi)).flatten();
            let insts = std::mem::take(&mut f.blocks[bi].insts);
            match rebuild_one(f, insts, flow.as_ref()) {
                Ok(new) => {
                    f.blocks[bi].insts = new;
                    rebuilt += 1;
                }
                Err(old) => {
                    f.blocks[bi].insts = old;
                    break;
                }
            }
        }
    }
    rebuilt
}

fn has_guarded_acc(f: &Function, bi: usize) -> bool {
    f.blocks[bi]
        .insts
        .iter()
        .any(|i| i.guard.is_some() && matches!(i.op, Op::Or | Op::And))
}

/// Relation + definedness states at the top of block `bi`.
fn block_flow(f: &Function, bi: usize) -> Option<(RelState, DefState)> {
    let cfg = Cfg::new(f);
    let b = BlockId(bi as u32);
    let rel = forward(f, &cfg, &RelAnalysis).entry[b.index()].take()?;
    let defs = forward(f, &cfg, &MustDefined).entry[b.index()].take()?;
    Some((rel, defs))
}

/// A link `op a, a, t` of an accumulator chain guarded by `guard`.
fn chain_link(inst: &Inst, acc: Reg, op: Op, guard: Option<PredReg>) -> Option<Operand> {
    if inst.op == op
        && inst.guard == guard
        && inst.dst == Some(acc)
        && inst.srcs[0] == Operand::Reg(acc)
        && inst.srcs[1] != Operand::Reg(acc)
    {
        Some(inst.srcs[1])
    } else {
        None
    }
}

/// Finds one chain of length ≥ 3 and rebuilds it balanced; `Err` returns
/// the block unchanged when there is nothing to do. `flow` carries the
/// block-entry relation/definedness states and is required for guarded
/// chains (absent, only unguarded chains rebuild).
fn rebuild_one(
    f: &mut Function,
    insts: Vec<Inst>,
    flow: Option<&(RelState, DefState)>,
) -> Result<Vec<Inst>, Vec<Inst>> {
    for op in [Op::Or, Op::And] {
        for start in 0..insts.len() {
            let Some(acc) = insts[start].dst else {
                continue;
            };
            let guard = insts[start].guard;
            if chain_link(&insts[start], acc, op, guard).is_none() {
                continue;
            }
            let mut state = match (guard, flow) {
                (None, _) => None,
                (Some(_), Some(flow)) => Some(flow.clone()),
                // No flow facts for this block: guarded chains stay put.
                (Some(_), None) => continue,
            };
            // Replay flow up to the chain start.
            if let Some(s) = &mut state {
                for inst in &insts[..start] {
                    RelAnalysis.transfer(inst, &mut s.0);
                    MustDefined.transfer(inst, &mut s.1);
                }
            }
            // Extend the chain: links may be separated by instructions that
            // neither read nor write the accumulator and are not exits
            // (we must not move a term computation across an exit branch —
            // conservatively, links must be contiguous up to independent
            // non-branch instructions). For a guarded chain, an exit or
            // accumulator toucher whose guard is disjoint from the chain
            // guard may be crossed, and the chain guard itself must stay
            // stable.
            let mut terms = Vec::new();
            let mut links = Vec::new();
            let mut i = start;
            while i < insts.len() {
                let inst = &insts[i];
                if let Some(t) = chain_link(inst, acc, op, guard) {
                    // A guarded chain's tree reads every term unguarded:
                    // each term register must be fully defined here.
                    let term_ok = match (&state, t) {
                        (Some(s), Operand::Reg(r)) => s.1.reg(r),
                        _ => true,
                    };
                    if !term_ok {
                        break;
                    }
                    terms.push(t);
                    links.push(i);
                    advance(&mut state, inst);
                    i += 1;
                    continue;
                }
                if let Some(p) = guard {
                    if inst.defines_all_preds() || inst.pred_defs().any(|q| q == p) {
                        break;
                    }
                }
                let touches_acc =
                    inst.src_regs().any(|r| r == acc) || inst.dst == Some(acc) || inst.is_exit();
                // Terms must also not be redefined between their link and
                // the chain end; requiring "does not define any term
                // register" keeps it safe.
                let defines_term = inst.dst.is_some_and(|d| terms.contains(&Operand::Reg(d)));
                if defines_term {
                    break;
                }
                if touches_acc {
                    let crossable = match (guard, inst.guard, &state) {
                        (Some(p), Some(h), Some(s)) => s.0.disjoint(h, p),
                        _ => false,
                    };
                    if !crossable {
                        break;
                    }
                }
                advance(&mut state, inst);
                i += 1;
            }
            if links.len() < 3 {
                continue;
            }
            // Rebuild: a balanced tree over `terms`, then one final
            // `op acc, acc, tree` at the position of the last link.
            let mut out = Vec::with_capacity(insts.len() + terms.len());
            let last_link = *links.last().unwrap();
            for (j, inst) in insts.iter().enumerate() {
                if links.contains(&j) {
                    continue;
                }
                out.push(inst.clone());
            }
            // Insertion index: after all retained instructions that
            // originally preceded the last link.
            let before_last = insts[..last_link]
                .iter()
                .enumerate()
                .filter(|(j, _)| !links.contains(j))
                .count();
            let mut tree: Vec<Operand> = terms.clone();
            let mut emitted: Vec<Inst> = Vec::new();
            while tree.len() > 1 {
                let mut next = Vec::with_capacity(tree.len().div_ceil(2));
                for pair in tree.chunks(2) {
                    if pair.len() == 2 {
                        let t = f.fresh_reg();
                        let mut n = f.make_inst(op);
                        n.dst = Some(t);
                        n.srcs = vec![pair[0], pair[1]];
                        emitted.push(n);
                        next.push(Operand::Reg(t));
                    } else {
                        next.push(pair[0]);
                    }
                }
                tree = next;
            }
            let mut fin = f.make_inst(op);
            fin.dst = Some(acc);
            fin.srcs = vec![Operand::Reg(acc), tree[0]];
            // The single remaining deposit keeps the chain guard: a false
            // guard leaves the accumulator untouched, as every nullified
            // link would have.
            fin.guard = guard;
            emitted.push(fin);
            let tail = out.split_off(before_last);
            out.extend(emitted);
            out.extend(tail);
            return Ok(out);
        }
    }
    Err(insts)
}

/// Advances the replayed relation/definedness states across `inst`.
fn advance(state: &mut Option<(RelState, DefState)>, inst: &Inst) {
    if let Some(s) = state {
        RelAnalysis.transfer(inst, &mut s.0);
        MustDefined.transfer(inst, &mut s.1);
    }
}

/// Longest sequential dependence chain through `or`/`and` accumulators in
/// a block — a cheap proxy for checking height reduction in tests.
pub fn acc_chain_height(f: &Function, block: hyperpred_ir::BlockId, acc: Reg) -> usize {
    f.block(block)
        .insts
        .iter()
        .filter(|i| i.dst == Some(acc) && i.srcs.first() == Some(&Operand::Reg(acc)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_ir::{FuncBuilder, Module};

    /// acc = x0|x1|...|x5 via a sequential chain.
    fn chain_module(n: usize) -> (Module, Reg) {
        let mut b = FuncBuilder::new("main");
        let seed = b.param();
        let acc = b.mov(Operand::Imm(0));
        let mut xs = Vec::new();
        for k in 0..n {
            // xk = (seed >> k) & 1
            let sh = b.op2(Op::Shr, seed.into(), Operand::Imm(k as i64));
            let bit = b.op2(Op::And, sh.into(), Operand::Imm(1));
            xs.push(bit);
        }
        for &x in &xs {
            b.op2_to(Op::Or, acc, acc.into(), x.into());
        }
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        (m, acc)
    }

    #[test]
    fn balances_and_preserves_value() {
        let (m0, acc) = chain_module(6);
        let mut m1 = m0.clone();
        let rebuilt = run(&mut m1.funcs[0]);
        assert!(rebuilt >= 1);
        m1.verify().unwrap();
        let entry = m1.funcs[0].entry();
        assert_eq!(
            acc_chain_height(&m1.funcs[0], entry, acc),
            1,
            "chain through acc collapses to a single deposit:\n{}",
            m1.funcs[0]
        );
        for seed in [0i64, 1, 0b100000, 0b111111, 37] {
            let r0 = Emulator::new(&m0)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            let r1 = Emulator::new(&m1)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            assert_eq!(r0, r1, "seed={seed}");
        }
    }

    #[test]
    fn short_chains_are_left_alone() {
        let (mut m, _) = chain_module(2);
        assert_eq!(run(&mut m.funcs[0]), 0);
    }

    /// acc = bits of seed OR-ed in under guard `p` (= seed != 0 when
    /// `sense` is Ne); terms are computed unguarded, deposits guarded.
    fn guarded_chain_module(
        n: usize,
        mut interloper: impl FnMut(&mut FuncBuilder, Reg, Reg, hyperpred_ir::PredReg),
    ) -> (Module, Reg) {
        use hyperpred_ir::{CmpOp, PredType};
        let mut b = FuncBuilder::new("main");
        let seed = b.param();
        let acc = b.mov(Operand::Imm(0));
        let out = b.mov(Operand::Imm(-1));
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U), (q, PredType::UBar)],
            seed.into(),
            Operand::Imm(0),
            None,
        );
        let mut xs = Vec::new();
        for k in 0..n {
            let sh = b.op2(Op::Shr, seed.into(), Operand::Imm(k as i64));
            let bit = b.op2(Op::And, sh.into(), Operand::Imm(1));
            xs.push(bit);
        }
        for (k, &x) in xs.iter().enumerate() {
            b.op2_to(Op::Or, acc, acc.into(), x.into());
            b.guard_last(p);
            if k == n / 2 {
                interloper(&mut b, out, acc, q);
            }
        }
        b.op2_to(Op::Add, out, out.into(), acc.into());
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        (m, acc)
    }

    fn same_ret(m0: &Module, m1: &Module, seeds: &[i64]) {
        for &seed in seeds {
            let r0 = Emulator::new(m0)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            let r1 = Emulator::new(m1)
                .run("main", &[seed], &mut NullSink)
                .unwrap()
                .ret;
            assert_eq!(r0, r1, "seed={seed}");
        }
    }

    #[test]
    fn same_guard_chain_balances() {
        let (m0, acc) = guarded_chain_module(6, |_, _, _, _| {});
        let mut m1 = m0.clone();
        assert!(run(&mut m1.funcs[0]) >= 1, "guarded chain must rebuild");
        m1.verify().unwrap();
        let entry = m1.funcs[0].entry();
        assert_eq!(
            acc_chain_height(&m1.funcs[0], entry, acc),
            1,
            "one guarded deposit remains:\n{}",
            m1.funcs[0]
        );
        let fin = m1.funcs[0]
            .block(entry)
            .insts
            .iter()
            .find(|i| i.dst == Some(acc) && i.srcs.first() == Some(&Operand::Reg(acc)))
            .unwrap();
        assert!(fin.guard.is_some(), "final deposit keeps the chain guard");
        same_ret(&m0, &m1, &[0, 1, 0b100000, 0b111111, 37]);
    }

    #[test]
    fn crosses_accumulator_reader_under_disjoint_guard() {
        // A read of acc guarded by the complement of the chain guard sits
        // mid-chain: if it executes, the chain guard is false and no
        // deposit fired, so the chain may be rebuilt across it.
        let (m0, acc) = guarded_chain_module(6, |b, out, acc, q| {
            b.op2_to(Op::Add, out, out.into(), acc.into());
            b.guard_last(q);
        });
        let mut m1 = m0.clone();
        assert!(run(&mut m1.funcs[0]) >= 1, "disjoint reader is crossable");
        m1.verify().unwrap();
        assert_eq!(acc_chain_height(&m1.funcs[0], m1.funcs[0].entry(), acc), 1);
        same_ret(&m0, &m1, &[0, 1, 0b101010, 0b111111, 64]);
    }

    #[test]
    fn does_not_cross_accumulator_reader_under_same_guard() {
        // A reader under the chain guard itself observes the partial
        // accumulation — the chain must split at the reader (two
        // independent 3-link rebuilds), never cross it as one tree.
        use hyperpred_ir::{CmpOp, PredType};
        let mut b = FuncBuilder::new("main");
        let seed = b.param();
        let acc = b.mov(Operand::Imm(0));
        let out = b.mov(Operand::Imm(-1));
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            seed.into(),
            Operand::Imm(0),
            None,
        );
        let mut xs = Vec::new();
        for k in 0..6 {
            let sh = b.op2(Op::Shr, seed.into(), Operand::Imm(k as i64));
            let bit = b.op2(Op::And, sh.into(), Operand::Imm(1));
            xs.push(bit);
        }
        for (k, &x) in xs.iter().enumerate() {
            b.op2_to(Op::Or, acc, acc.into(), x.into());
            b.guard_last(p);
            if k == 2 {
                b.op2_to(Op::Add, out, out.into(), acc.into());
                b.guard_last(p);
            }
        }
        b.op2_to(Op::Add, out, out.into(), acc.into());
        b.ret(Some(out.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        assert_eq!(run(&mut m.funcs[0]), 2, "same-guard reader splits chain");
        same_ret(&m0, &m, &[0, 1, 5, 21, 42, 63, -7]);
    }

    #[test]
    fn skips_guarded_chain_whose_term_is_guarded() {
        // A term defined only under the chain guard cannot be read by the
        // unguarded tree: the chain must stay put.
        use hyperpred_ir::{CmpOp, PredType};
        let mut b = FuncBuilder::new("main");
        let seed = b.param();
        let acc = b.mov(Operand::Imm(0));
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            seed.into(),
            Operand::Imm(0),
            None,
        );
        let mut xs = Vec::new();
        for k in 0..4 {
            let sh = b.op2(Op::Shr, seed.into(), Operand::Imm(k as i64));
            let bit = b.op2(Op::And, sh.into(), Operand::Imm(1));
            b.guard_last(p);
            xs.push(bit);
        }
        for &x in &xs {
            b.op2_to(Op::Or, acc, acc.into(), x.into());
            b.guard_last(p);
        }
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        assert_eq!(run(&mut m.funcs[0]), 0, "guarded terms block the tree");
    }

    #[test]
    fn does_not_cross_exit_branches() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let acc = b.mov(Operand::Imm(0));
        let exit = b.block();
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(1));
        b.br(hyperpred_ir::CmpOp::Eq, x.into(), Operand::Imm(0), exit);
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(2));
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(4));
        b.op2_to(Op::Or, acc, acc.into(), Operand::Imm(8));
        b.ret(Some(acc.into()));
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let m0 = m.clone();
        run(&mut m.funcs[0]);
        m.verify().unwrap();
        for x in [0, 1] {
            let r0 = Emulator::new(&m0)
                .run("main", &[x], &mut NullSink)
                .unwrap()
                .ret;
            let r1 = Emulator::new(&m)
                .run("main", &[x], &mut NullSink)
                .unwrap()
                .ret;
            assert_eq!(r0, r1);
        }
    }
}
