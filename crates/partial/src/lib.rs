//! Full-to-partial predication conversion (paper §3.2).
//!
//! The compiler keeps a *fully predicated* IR through hyperblock formation
//! regardless of the target. For a target with only partial support
//! (conditional moves / selects), this crate rewrites every predicated
//! instruction into an equivalent unpredicated sequence:
//!
//! 1. **Predicate promotion** (in `hyperpred-hyperblock`) runs first so
//!    fewer guarded instructions remain.
//! 2. **Basic conversions** ([`convert`]) — each remaining predicated
//!    instruction becomes speculation into a temporary plus a
//!    `cmov`/`cmov_com` (Fig. 3; or the longer Fig. 4 sequences when the
//!    target lacks non-excepting instructions). Predicate registers become
//!    general registers; predicate defines become compare/and/or sequences.
//! 3. **Peephole optimization** ([`peephole`]) — comparison CSE and
//!    inversion elimination, the classic clean-ups, and OR-tree height
//!    reduction ([`ortree`], giving the `log2(n)` dependence height the
//!    paper describes in §3.2).

pub mod convert;
pub mod ortree;
pub mod peephole;

pub use convert::{convert_to_partial, PartialConfig, PartialStyle};

use hyperpred_ir::{Function, Module};

/// Converts one function to partial predication and cleans it up.
pub fn to_partial(f: &mut Function, config: &PartialConfig) {
    convert::convert_to_partial(f, config);
    peephole::run(f, config);
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "partial conversion broke {}: {:?}",
        f.name,
        hyperpred_ir::verify::verify_function(f).err()
    );
    // In debug builds, also hold the output to the partial model's
    // semantic rules: no guards or predicate writes may survive, and
    // every read must still be defined on all paths.
    #[cfg(debug_assertions)]
    {
        use hyperpred_ir::analysis::{check_function, ModelClass};
        let vs = check_function(f, ModelClass::PartialPred);
        assert!(
            vs.is_empty(),
            "partial conversion broke {}: {vs:#?}",
            f.name
        );
    }
}

/// Converts every function in a module.
pub fn to_partial_module(m: &mut Module, config: &PartialConfig) {
    for f in &mut m.funcs {
        to_partial(f, config);
    }
}

/// True when the function contains no remnants of full predication
/// (no guards, no predicate defines, no `pred_clear`/`pred_set`).
pub fn is_fully_converted(f: &Function) -> bool {
    f.insts().all(|(_, _, i)| {
        i.guard.is_none()
            && i.pdsts.is_empty()
            && !matches!(
                i.op,
                hyperpred_ir::Op::PredClear | hyperpred_ir::Op::PredSet
            )
    })
}
