//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each variant's *simulated* cycle count (the scientifically interesting
//! number) is printed once; Criterion then times the pipeline itself.
//! Variants:
//!
//! * OR-tree height reduction on/off (conditional-move model, grep)
//! * predicate promotion on/off (both predicated models, wc)
//! * `select` vs `cmov` conversion primitive
//! * non-excepting (Fig. 3) vs excepting (Fig. 4) conversions
//! * loop unrolling factor 1/2/4
//! * hyperblock inclusion threshold sweep

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperpred::hyperblock::{HyperblockConfig, UnrollConfig};
use hyperpred::partial::{PartialConfig, PartialStyle};
use hyperpred::sched::MachineConfig;
use hyperpred::sim::{BtbConfig, Predictor, SimConfig};
use hyperpred::{evaluate, Model, Pipeline};
use hyperpred_workloads::{by_name, Scale};

fn report(tag: &str, w: &hyperpred_workloads::Workload, model: Model, pipe: &Pipeline) -> u64 {
    let s = evaluate(
        &w.source,
        &w.args,
        model,
        MachineConfig::new(8, 1),
        SimConfig::default(),
        pipe,
    )
    .unwrap();
    eprintln!("[ablation] {tag}: {} cycles (ipc {:.2})", s.cycles, s.ipc());
    s.cycles
}

fn bench_ablation(c: &mut Criterion) {
    let machine = MachineConfig::new(8, 1);
    let sim = SimConfig::default();
    let mut group = c.benchmark_group("ablation");

    // --- OR-tree on/off on grep (the paper's §3.2 example) ----------------
    let grep = by_name("grep", Scale::Test).unwrap();
    for or_tree in [true, false] {
        let pipe = Pipeline {
            partial: PartialConfig {
                or_tree,
                ..PartialConfig::default()
            },
            ..Pipeline::default()
        };
        report(
            &format!("grep cmov or_tree={or_tree}"),
            &grep,
            Model::CondMove,
            &pipe,
        );
        group.bench_with_input(
            BenchmarkId::new("grep-or-tree", or_tree),
            &pipe,
            |b, pipe| {
                b.iter(|| {
                    evaluate(
                        &grep.source,
                        &grep.args,
                        Model::CondMove,
                        machine,
                        sim,
                        pipe,
                    )
                })
            },
        );
    }

    // --- promotion on/off on wc -------------------------------------------
    let wc = by_name("wc", Scale::Test).unwrap();
    for promote in [true, false] {
        let pipe = Pipeline {
            promote,
            ..Pipeline::default()
        };
        for model in [Model::CondMove, Model::FullPred] {
            report(&format!("wc {model} promote={promote}"), &wc, model, &pipe);
        }
        group.bench_with_input(
            BenchmarkId::new("wc-promotion", promote),
            &pipe,
            |b, pipe| {
                b.iter(|| evaluate(&wc.source, &wc.args, Model::FullPred, machine, sim, pipe))
            },
        );
    }

    // --- select vs cmov, excepting vs non-excepting ------------------------
    for (tag, partial) in [
        ("cmov-nonexc", PartialConfig::default()),
        (
            "select-nonexc",
            PartialConfig {
                style: PartialStyle::Select,
                ..PartialConfig::default()
            },
        ),
        (
            "cmov-excepting",
            PartialConfig {
                nonexcepting: false,
                ..PartialConfig::default()
            },
        ),
    ] {
        let pipe = Pipeline {
            partial,
            ..Pipeline::default()
        };
        report(&format!("wc cmov-model {tag}"), &wc, Model::CondMove, &pipe);
        group.bench_with_input(
            BenchmarkId::new("wc-partial-style", tag),
            &pipe,
            |b, pipe| {
                b.iter(|| evaluate(&wc.source, &wc.args, Model::CondMove, machine, sim, pipe))
            },
        );
    }

    // --- unroll factor -------------------------------------------------------
    for factor in [1u32, 2, 4] {
        let pipe = Pipeline {
            unroll: UnrollConfig {
                factor,
                ..UnrollConfig::default()
            },
            ..Pipeline::default()
        };
        report(
            &format!("wc full unroll={factor}"),
            &wc,
            Model::FullPred,
            &pipe,
        );
        group.bench_with_input(BenchmarkId::new("wc-unroll", factor), &pipe, |b, pipe| {
            b.iter(|| evaluate(&wc.source, &wc.args, Model::FullPred, machine, sim, pipe))
        });
    }

    // --- branch predictor: bimodal (paper) vs gshare (extension) -----------
    let qsort = by_name("qsort", Scale::Test).unwrap();
    for (tag, predictor) in [
        ("bimodal", Predictor::Bimodal),
        ("gshare8", Predictor::Gshare { history_bits: 8 }),
    ] {
        let sim_p = SimConfig {
            btb: BtbConfig {
                predictor,
                ..BtbConfig::default()
            },
            ..SimConfig::default()
        };
        let pipe = Pipeline::default();
        let s = evaluate(
            &qsort.source,
            &qsort.args,
            Model::Superblock,
            machine,
            sim_p,
            &pipe,
        )
        .unwrap();
        eprintln!(
            "[ablation] qsort superblock {tag}: {} cycles, {} mispredicts",
            s.cycles, s.mispredicts
        );
        group.bench_with_input(
            BenchmarkId::new("qsort-predictor", tag),
            &sim_p,
            |b, sim_p| {
                b.iter(|| {
                    evaluate(
                        &qsort.source,
                        &qsort.args,
                        Model::Superblock,
                        machine,
                        *sim_p,
                        &pipe,
                    )
                })
            },
        );
    }

    // --- predicate-define-to-use latency (suppression stage) ---------------
    use hyperpred::sched::Latencies;
    for pred_lat in [0u32, 1] {
        let machine_l = MachineConfig {
            latency: Latencies {
                pred_def: pred_lat.max(1), // result latency stays >= 1 for defines
                ..Latencies::default()
            },
            ..machine
        };
        let pipe = Pipeline::default();
        let s = evaluate(&wc.source, &wc.args, Model::FullPred, machine_l, sim, &pipe).unwrap();
        eprintln!(
            "[ablation] wc full pred_def latency={}: {} cycles",
            pred_lat.max(1),
            s.cycles
        );
    }

    // --- hyperblock inclusion threshold -----------------------------------
    for ratio in [0.01f64, 0.04, 0.25] {
        let pipe = Pipeline {
            hyperblock: HyperblockConfig {
                min_exec_ratio: ratio,
                ..HyperblockConfig::default()
            },
            ..Pipeline::default()
        };
        report(
            &format!("wc full min_ratio={ratio}"),
            &wc,
            Model::FullPred,
            &pipe,
        );
        group.bench_with_input(
            BenchmarkId::new("wc-threshold", format!("{ratio}")),
            &pipe,
            |b, pipe| {
                b.iter(|| evaluate(&wc.source, &wc.args, Model::FullPred, machine, sim, pipe))
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
