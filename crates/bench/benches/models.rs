//! Criterion benchmarks of the end-to-end pipeline: compile + simulate
//! each model on representative workloads. The printed simulated-cycle
//! numbers per configuration are the Figure 8 data points; wall-clock
//! times measure this library itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperpred::sched::MachineConfig;
use hyperpred::sim::SimConfig;
use hyperpred::{evaluate, Model, Pipeline};
use hyperpred_workloads::{by_name, Scale};

fn bench_models(c: &mut Criterion) {
    let pipe = Pipeline::default();
    let sim = SimConfig::default();
    let machine = MachineConfig::new(8, 1);
    let mut group = c.benchmark_group("pipeline");
    for name in ["wc", "grep", "eqntott", "compress"] {
        let w = by_name(name, Scale::Test).expect("workload");
        for model in Model::ALL {
            // Report the simulated result once so the bench log carries the
            // paper-relevant number alongside wall time.
            let s = evaluate(&w.source, &w.args, model, machine, sim, &pipe).unwrap();
            eprintln!(
                "[models] {name:>9} {model}: {} cycles, ipc {:.2}",
                s.cycles,
                s.ipc()
            );
            group.bench_with_input(
                BenchmarkId::new(name, model),
                &(&w, model),
                |b, (w, model)| {
                    b.iter(|| evaluate(&w.source, &w.args, *model, machine, sim, &pipe).unwrap())
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_models
}
criterion_main!(benches);
