//! Criterion benchmarks of individual compiler passes on the `wc`
//! workload: frontend, classic optimization, superblock formation,
//! if-conversion, promotion, partial conversion, scheduling, emulation.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperpred::emu::{Emulator, NullSink, Profiler};
use hyperpred::hyperblock::{
    form_hyperblocks, form_superblocks, promote, HyperblockConfig, SuperblockConfig,
};
use hyperpred::ir::FuncId;
use hyperpred::lang::lower::entry_args;
use hyperpred::partial::{to_partial_module, PartialConfig};
use hyperpred::sched::{schedule_module, MachineConfig};
use hyperpred_workloads::{by_name, Scale};

fn bench_passes(c: &mut Criterion) {
    let w = by_name("wc", Scale::Test).unwrap();
    let mut group = c.benchmark_group("passes");

    group.bench_function("frontend", |b| {
        b.iter(|| hyperpred::lang::compile(&w.source).unwrap())
    });

    let mut base = hyperpred::lang::compile(&w.source).unwrap();
    hyperpred::opt::optimize_module(&mut base);
    group.bench_function("classic-opt", |b| {
        b.iter_batched(
            || hyperpred::lang::compile(&w.source).unwrap(),
            |mut m| hyperpred::opt::optimize_module(&mut m),
            criterion::BatchSize::SmallInput,
        )
    });

    let mut prof = Profiler::new();
    Emulator::new(&base)
        .run("main", &entry_args(&w.args), &mut prof)
        .unwrap();

    group.bench_function("superblock-formation", |b| {
        b.iter_batched(
            || base.clone(),
            |mut m| {
                for i in 0..m.funcs.len() {
                    let mut f = m.funcs[i].clone();
                    form_superblocks(
                        &mut f,
                        FuncId(i as u32),
                        &prof,
                        &SuperblockConfig::default(),
                    );
                    m.funcs[i] = f;
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("if-conversion+promotion", |b| {
        b.iter_batched(
            || base.clone(),
            |mut m| {
                for i in 0..m.funcs.len() {
                    let mut f = m.funcs[i].clone();
                    form_hyperblocks(
                        &mut f,
                        FuncId(i as u32),
                        &prof,
                        &HyperblockConfig::default(),
                    )
                    .unwrap();
                    promote(&mut f);
                    m.funcs[i] = f;
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // A formed module for downstream passes.
    let mut formed = base.clone();
    for i in 0..formed.funcs.len() {
        let mut f = formed.funcs[i].clone();
        form_hyperblocks(
            &mut f,
            FuncId(i as u32),
            &prof,
            &HyperblockConfig::default(),
        )
        .unwrap();
        promote(&mut f);
        formed.funcs[i] = f;
    }

    group.bench_function("partial-conversion", |b| {
        b.iter_batched(
            || formed.clone(),
            |mut m| to_partial_module(&mut m, &PartialConfig::default()),
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("scheduling", |b| {
        b.iter_batched(
            || formed.clone(),
            |mut m| schedule_module(&mut m, &MachineConfig::new(8, 1)).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });

    let mut sched = formed.clone();
    schedule_module(&mut sched, &MachineConfig::new(8, 1)).unwrap();
    group.bench_function("emulation", |b| {
        b.iter(|| {
            Emulator::new(&sched)
                .run("main", &entry_args(&w.args), &mut NullSink)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_passes
}
criterion_main!(benches);
