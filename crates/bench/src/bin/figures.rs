//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hyperpred-bench --bin figures            # everything
//! cargo run --release -p hyperpred-bench --bin figures fig8       # one figure
//! cargo run --release -p hyperpred-bench --bin figures table2
//! cargo run --release -p hyperpred-bench --bin figures --scale test
//! ```

use hyperpred::{
    branch_table, instruction_table, run_experiment, speedup_table, Experiment, Pipeline,
};
use hyperpred_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--scale") || args.iter().any(|a| a == "test") {
        Scale::Test
    } else {
        Scale::Full
    };
    let which: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| s.starts_with("fig") || s.starts_with("table"))
        .collect();
    let all = which.is_empty();
    let pipe = Pipeline::default();

    let fig8 = Experiment::fig8();
    // Figure 8's results also provide Tables 2 and 3.
    let need_fig8 = all
        || which.contains(&"fig8")
        || which.contains(&"table2")
        || which.contains(&"table3");
    let fig8_results = if need_fig8 {
        Some(run_experiment(&fig8, scale, &pipe).expect("fig8"))
    } else {
        None
    };
    if let Some(r) = &fig8_results {
        if all || which.contains(&"fig8") {
            println!("{}", speedup_table(&fig8, r));
        }
    }
    for (name, exp) in [
        ("fig9", Experiment::fig9()),
        ("fig10", Experiment::fig10()),
        ("fig11", Experiment::fig11()),
    ] {
        if all || which.contains(&name) {
            let r = run_experiment(&exp, scale, &pipe).expect(name);
            println!("{}", speedup_table(&exp, &r));
        }
    }
    if let Some(r) = &fig8_results {
        if all || which.contains(&"table2") {
            println!("{}", instruction_table(r));
        }
        if all || which.contains(&"table3") {
            println!("{}", branch_table(r));
        }
    }
}
