//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hyperpred-bench --bin figures                # everything, parallel
//! cargo run --release -p hyperpred-bench --bin figures fig8          # one figure
//! cargo run --release -p hyperpred-bench --bin figures table2
//! cargo run --release -p hyperpred-bench --bin figures -- --scale test
//! cargo run --release -p hyperpred-bench --bin figures -- --threads 4
//! cargo run --release -p hyperpred-bench --bin figures -- --serial   # old one-cell-at-a-time loop
//! cargo run --release -p hyperpred-bench --bin figures -- --keep-going
//! ```
//!
//! By default the whole requested matrix runs through the parallel
//! experiment engine (`run_matrix`), which compiles each distinct module
//! once and simulates the shared 1-issue baseline once; `--serial` keeps
//! the historical figure-at-a-time loop for A/B timing of the driver
//! itself.
//!
//! `--bench N` switches to the hot-path benchmark harness instead of
//! printing tables: every (workload, model) simulation is timed for `N`
//! reps after a warmup, the full matrix is timed the same way, and the
//! report is written as JSON (default `BENCH_hotpath.json`).
//! `--bench-baseline FILE` additionally applies the coarse regression
//! guard: exit nonzero if aggregate emulated insts/sec fell more than
//! 2x below the committed baseline.
//!
//! `--keep-going` switches the engine to `FailurePolicy::KeepGoing`:
//! failed cells are contained and summarized on stderr, every healthy cell
//! still appears in the tables, and the exit code is nonzero iff any cell
//! failed. `--inject-faults` (implies `--keep-going`) appends the two
//! fault fixtures — a compile-stage panic and a cycle-budget buster — to
//! the workload list; CI uses it to prove containment end to end.
//!
//! The durability flags (each implies `--keep-going`):
//!
//! * `--resume FILE` — journal every completed cell to `FILE` (JSONL) and
//!   reuse journaled cells on a later run, so a killed run resumes where
//!   it left off with bit-identical stats;
//! * `--retries N` — re-run transiently failing cells up to `N` attempts;
//! * `--deadline SECS` — per-cell wall-clock watchdog alongside the cycle
//!   budget;
//! * `--triage DIR` — write a self-contained repro bundle per permanent
//!   failure (replay with `hyperpredc repro`);
//! * `--max-cells N` — stop claiming cells past queue index `N` (chaos
//!   hook: a deterministic "killed mid-run" for the resume tests).

use hyperpred::faults::{cycle_hog_fixture, panic_fixture};
use hyperpred::{
    branch_table, instruction_table, run_experiment, run_matrix_configured, run_matrix_with_stats,
    speedup_table, summarize_run, BenchResult, Experiment, FailurePolicy, MatrixConfig, Pipeline,
    RetryPolicy, RunJournal, TriageConfig,
};
use hyperpred_bench::hotpath::{check_regression, run_bench, BenchConfig};
use hyperpred_workloads::Scale;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Cycle budget used with `--inject-faults`: far above any test-scale
/// workload (tens of thousands of cycles) and far below the hog fixture
/// (tens of millions), so exactly the injected cell trips it.
const INJECT_MAX_CYCLES: u64 = 2_000_000;

struct Options {
    scale: Scale,
    threads: usize,
    serial: bool,
    verbose: bool,
    keep_going: bool,
    inject_faults: bool,
    resume: Option<String>,
    retries: u32,
    deadline: Option<f64>,
    triage: Option<String>,
    max_cells: Option<usize>,
    bench: Option<usize>,
    bench_out: String,
    bench_baseline: Option<String>,
    which: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures [fig8|fig9|fig10|fig11|table2|table3 ...] \
         [--scale test|full] [--threads N] [--serial] [--verbose] \
         [--keep-going] [--inject-faults] \
         [--resume journal.jsonl] [--retries N] [--deadline SECS] \
         [--triage DIR] [--max-cells N] \
         [--bench N [--bench-out FILE] [--bench-baseline FILE]]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        scale: Scale::Full,
        threads: 0,
        serial: false,
        verbose: false,
        keep_going: false,
        inject_faults: false,
        resume: None,
        retries: 1,
        deadline: None,
        triage: None,
        max_cells: None,
        bench: None,
        bench_out: "BENCH_hotpath.json".to_string(),
        bench_baseline: None,
        which: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = match it.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return Err(usage()),
                };
            }
            // Compatibility with the old invocation: a bare `test` selects
            // the small inputs.
            "test" => opts.scale = Scale::Test,
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--serial" => opts.serial = true,
            "--verbose" => opts.verbose = true,
            "--keep-going" => opts.keep_going = true,
            "--inject-faults" => {
                opts.inject_faults = true;
                opts.keep_going = true;
            }
            // The durability flags only make sense when partial progress
            // is kept, so each implies --keep-going.
            "--resume" => {
                opts.resume = Some(it.next().ok_or_else(usage)?);
                opts.keep_going = true;
            }
            "--retries" => {
                opts.retries = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
                opts.keep_going = true;
            }
            "--deadline" => {
                let secs: f64 = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(usage());
                }
                opts.deadline = Some(secs);
                opts.keep_going = true;
            }
            "--triage" => {
                opts.triage = Some(it.next().ok_or_else(usage)?);
                opts.keep_going = true;
            }
            "--max-cells" => {
                opts.max_cells = Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
                opts.keep_going = true;
            }
            "--bench" => {
                opts.bench = Some(it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--bench-out" => {
                opts.bench_out = it.next().ok_or_else(usage)?;
            }
            "--bench-baseline" => {
                opts.bench_baseline = Some(it.next().ok_or_else(usage)?);
            }
            s if s.starts_with("fig") || s.starts_with("table") => opts.which.push(s.to_string()),
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

/// `--bench N` mode: run the hot-path harness, write the JSON report,
/// and (optionally) apply the regression guard against a baseline file.
fn run_bench_mode(opts: &Options, reps: usize) -> ExitCode {
    let cfg = BenchConfig {
        reps,
        scale: opts.scale,
        threads: opts.threads,
    };
    // Read the baseline before running or writing anything: the guard is
    // normally pointed at the same path as `--bench-out` (refresh the file,
    // compare against the committed state), and reading it after the write
    // would compare the new report against itself.
    let baseline = match &opts.bench_baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("figures --bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let report = match run_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("figures --bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", report.summary());
    let json = report.to_json();
    if let Err(e) = std::fs::write(&opts.bench_out, &json) {
        eprintln!("figures --bench: writing {}: {e}", opts.bench_out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", opts.bench_out);
    if let Some(baseline) = baseline {
        match check_regression(&report, &baseline) {
            Ok(msg) => eprintln!("{msg}"),
            Err(msg) => {
                eprintln!("figures --bench: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(c) => return c,
    };
    if let Some(reps) = opts.bench {
        return run_bench_mode(&opts, reps);
    }
    let all = opts.which.is_empty();
    let wants = |name: &str| all || opts.which.iter().any(|w| w == name);
    let pipe = Pipeline::default();

    // Figure 8's results also provide Tables 2 and 3.
    let need = [
        (
            "fig8",
            Experiment::fig8(),
            wants("fig8") || wants("table2") || wants("table3"),
        ),
        ("fig9", Experiment::fig9(), wants("fig9")),
        ("fig10", Experiment::fig10(), wants("fig10")),
        ("fig11", Experiment::fig11(), wants("fig11")),
    ];
    let selected: Vec<(&str, Experiment)> = need
        .iter()
        .filter(|(_, _, on)| *on)
        .map(|(n, e, _)| (*n, *e))
        .collect();
    if selected.is_empty() {
        return usage();
    }
    let exps: Vec<Experiment> = selected.iter().map(|(_, e)| *e).collect();

    let started = Instant::now();
    let mut any_failed = false;
    let figures: Vec<Vec<BenchResult>> = if opts.keep_going {
        let mut pipe = pipe;
        let mut exps = exps.clone();
        let mut workloads = hyperpred::workloads::all(opts.scale);
        if opts.inject_faults {
            pipe.fault_injection = true;
            for e in &mut exps {
                e.max_cycles = INJECT_MAX_CYCLES;
            }
            workloads.push(panic_fixture());
            workloads.push(cycle_hog_fixture(4_000_000));
        }
        let journal = match &opts.resume {
            Some(p) => match RunJournal::open(p) {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("figures: cannot open journal {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let triage = opts.triage.as_ref().map(TriageConfig::new);
        let run = run_matrix_configured(
            &exps,
            &workloads,
            &pipe,
            &MatrixConfig {
                threads: opts.threads,
                policy: FailurePolicy::KeepGoing,
                retry: RetryPolicy {
                    max_attempts: opts.retries.max(1),
                    backoff: Duration::from_millis(50),
                },
                deadline: opts.deadline.map(Duration::from_secs_f64),
                journal: journal.as_ref(),
                triage: triage.as_ref(),
                cell_limit: opts.max_cells,
            },
        );
        let summary = summarize_run(&run);
        eprintln!("{}", summary.text);
        if opts.verbose {
            for cell in &run.stats.cells {
                eprintln!("  {cell}");
            }
        }
        any_failed = summary.failed;
        // Tables are rendered from the healthy slots only.
        run.outcomes
            .iter()
            .map(|row| row.iter().filter_map(|o| o.ok().cloned()).collect())
            .collect()
    } else if opts.serial {
        let r: Result<Vec<_>, _> = exps
            .iter()
            .map(|exp| run_experiment(exp, opts.scale, &pipe))
            .collect();
        match r {
            Ok(f) => {
                eprintln!("serial loop: {:.2?}", started.elapsed());
                f
            }
            Err(e) => {
                eprintln!("figures: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run_matrix_with_stats(&exps, opts.scale, &pipe, opts.threads) {
            Ok(out) => {
                eprintln!("{}", out.stats.summary());
                if opts.verbose {
                    for cell in &out.stats.cells {
                        eprintln!("  {cell}");
                    }
                }
                out.figures
            }
            Err(e) => {
                eprintln!("figures: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut fig8_results = None;
    for ((name, exp), results) in selected.iter().zip(figures.iter()) {
        if *name == "fig8" {
            fig8_results = Some(results);
        }
        if wants(name) {
            println!("{}", speedup_table(exp, results));
        }
    }
    if let Some(r) = fig8_results {
        if wants("table2") {
            println!("{}", instruction_table(r));
        }
        if wants("table3") {
            println!("{}", branch_table(r));
        }
    }
    if any_failed {
        eprintln!("figures: run incomplete (failed or unclaimed cells); tables above are partial");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
