//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hyperpred-bench --bin figures                # everything, parallel
//! cargo run --release -p hyperpred-bench --bin figures fig8          # one figure
//! cargo run --release -p hyperpred-bench --bin figures table2
//! cargo run --release -p hyperpred-bench --bin figures -- --scale test
//! cargo run --release -p hyperpred-bench --bin figures -- --threads 4
//! cargo run --release -p hyperpred-bench --bin figures -- --serial   # old one-cell-at-a-time loop
//! ```
//!
//! By default the whole requested matrix runs through the parallel
//! experiment engine (`run_matrix`), which compiles each distinct module
//! once and simulates the shared 1-issue baseline once; `--serial` keeps
//! the historical figure-at-a-time loop for A/B timing of the driver
//! itself.

use hyperpred::{
    branch_table, instruction_table, run_experiment, run_matrix_with_stats, speedup_table,
    Experiment, Pipeline,
};
use hyperpred_workloads::Scale;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    scale: Scale,
    threads: usize,
    serial: bool,
    verbose: bool,
    which: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures [fig8|fig9|fig10|fig11|table2|table3 ...] \
         [--scale test|full] [--threads N] [--serial] [--verbose]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        scale: Scale::Full,
        threads: 0,
        serial: false,
        verbose: false,
        which: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = match it.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return Err(usage()),
                };
            }
            // Compatibility with the old invocation: a bare `test` selects
            // the small inputs.
            "test" => opts.scale = Scale::Test,
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--serial" => opts.serial = true,
            "--verbose" => opts.verbose = true,
            s if s.starts_with("fig") || s.starts_with("table") => opts.which.push(s.to_string()),
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(c) => return c,
    };
    let all = opts.which.is_empty();
    let wants = |name: &str| all || opts.which.iter().any(|w| w == name);
    let pipe = Pipeline::default();

    // Figure 8's results also provide Tables 2 and 3.
    let need = [
        (
            "fig8",
            Experiment::fig8(),
            wants("fig8") || wants("table2") || wants("table3"),
        ),
        ("fig9", Experiment::fig9(), wants("fig9")),
        ("fig10", Experiment::fig10(), wants("fig10")),
        ("fig11", Experiment::fig11(), wants("fig11")),
    ];
    let selected: Vec<(&str, Experiment)> = need
        .iter()
        .filter(|(_, _, on)| *on)
        .map(|(n, e, _)| (*n, *e))
        .collect();
    if selected.is_empty() {
        return usage();
    }
    let exps: Vec<Experiment> = selected.iter().map(|(_, e)| *e).collect();

    let started = Instant::now();
    let figures = if opts.serial {
        let r: Result<Vec<_>, _> = exps
            .iter()
            .map(|exp| run_experiment(exp, opts.scale, &pipe))
            .collect();
        match r {
            Ok(f) => {
                eprintln!("serial loop: {:.2?}", started.elapsed());
                f
            }
            Err(e) => {
                eprintln!("figures: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run_matrix_with_stats(&exps, opts.scale, &pipe, opts.threads) {
            Ok(out) => {
                eprintln!("{}", out.stats.summary());
                if opts.verbose {
                    for cell in &out.stats.cells {
                        eprintln!("  {cell}");
                    }
                }
                out.figures
            }
            Err(e) => {
                eprintln!("figures: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut fig8_results = None;
    for ((name, exp), results) in selected.iter().zip(figures.iter()) {
        if *name == "fig8" {
            fig8_results = Some(results);
        }
        if wants(name) {
            println!("{}", speedup_table(exp, results));
        }
    }
    if let Some(r) = fig8_results {
        if wants("table2") {
            println!("{}", instruction_table(r));
        }
        if wants("table3") {
            println!("{}", branch_table(r));
        }
    }
    ExitCode::SUCCESS
}
