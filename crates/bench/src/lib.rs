//! Benchmark-harness support (see the `figures` binary and Criterion
//! benches under `benches/`).

/// Re-exported so the benches and the `figures` binary share one facade.
pub use hyperpred::*;

pub mod hotpath;
