//! Wall-clock benchmark harness for the emulation-driven hot path.
//!
//! Two measurements, both behind `figures --bench N`:
//!
//! 1. **Per-cell simulation rate.** Every (workload, model) pair is
//!    compiled once on the Figure 8 machine, then its timing simulation
//!    runs `N` timed repetitions after one warmup. The report records
//!    median and minimum wall time plus the derived throughput rates:
//!    emulated instructions per second (fetched-instruction events
//!    streamed through the [`simulate`] sink) and simulated cycles per
//!    second. Compilation is deliberately outside the timed region — the
//!    hot path under test is emulate+simulate.
//! 2. **Full-matrix wall time.** The complete figures run (all four
//!    experiments over every workload at the requested scale) through
//!    the parallel engine, again warmup + `N` reps, median/min.
//!
//! [`BenchReport::to_json`] serializes the result (hand-rolled JSON, no
//! serde in the tree); the committed `BENCH_hotpath.json` at the repo
//! root is the regression baseline. [`check_regression`] implements the
//! CI guard: the run fails if aggregate emulated insts/sec drops more
//! than [`REGRESSION_FACTOR`]× below the baseline. The factor is coarse
//! on purpose — it absorbs host-speed variance between the machine that
//! committed the baseline and the CI runner while still catching
//! order-of-magnitude hot-path regressions (an accidental allocation or
//! hash lookup back in the per-event path).

use hyperpred::lang::lower::entry_args;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::{simulate, SimConfig, SimStats};
use hyperpred::workloads::Scale;
use hyperpred::{run_matrix_with_stats, Experiment, Model, Pipeline, PipelineError};
use std::time::Instant;

/// The guard trips when current insts/sec × factor < baseline insts/sec.
pub const REGRESSION_FACTOR: f64 = 2.0;

/// Schema version stamped into the JSON so future shape changes can be
/// detected instead of silently mis-parsed.
pub const BENCH_JSON_VERSION: u64 = 1;

/// Harness knobs (from the `figures` command line).
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed repetitions per measurement (after one untimed warmup).
    pub reps: usize,
    /// Workload scale for both the per-cell sweep and the matrix timing.
    pub scale: Scale,
    /// Worker threads for the matrix timing (0 = all cores).
    pub threads: usize,
}

/// Timing for one (workload, model) simulation cell.
#[derive(Debug, Clone)]
pub struct CellBench {
    /// Workload name.
    pub workload: &'static str,
    /// Evaluated model.
    pub model: Model,
    /// Dynamic (fetched) instruction count of one simulation.
    pub insts: u64,
    /// Simulated cycles of one simulation.
    pub cycles: u64,
    /// Median wall time of the timed reps, seconds.
    pub median_secs: f64,
    /// Fastest rep, seconds.
    pub min_secs: f64,
}

impl CellBench {
    /// Emulated instructions per wall-clock second (median rep).
    pub fn insts_per_sec(&self) -> f64 {
        per_sec(self.insts, self.median_secs)
    }

    /// Simulated cycles per wall-clock second (median rep).
    pub fn cycles_per_sec(&self) -> f64 {
        per_sec(self.cycles, self.median_secs)
    }
}

/// One harness run: per-cell timings plus the full-matrix wall time.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale the run used.
    pub scale: Scale,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Worker threads for the matrix timing (0 = all cores).
    pub threads: usize,
    /// Median wall time of the full figures matrix, seconds.
    pub matrix_median_secs: f64,
    /// Fastest matrix rep, seconds.
    pub matrix_min_secs: f64,
    /// Per-(workload, model) timings on the Figure 8 machine.
    pub cells: Vec<CellBench>,
}

impl BenchReport {
    /// Total fetched instructions across all cells (one rep each).
    pub fn total_insts(&self) -> u64 {
        self.cells.iter().map(|c| c.insts).sum()
    }

    /// Total simulated cycles across all cells (one rep each).
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Sum of the per-cell median wall times, seconds.
    pub fn total_median_secs(&self) -> f64 {
        self.cells.iter().map(|c| c.median_secs).sum()
    }

    /// Aggregate emulated instructions per second over the whole sweep.
    pub fn insts_per_sec(&self) -> f64 {
        per_sec(self.total_insts(), self.total_median_secs())
    }

    /// Aggregate simulated cycles per second over the whole sweep.
    pub fn cycles_per_sec(&self) -> f64 {
        per_sec(self.total_cycles(), self.total_median_secs())
    }

    /// One-paragraph human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "bench: {} cells ({} scale, {} reps): {:.0} emulated insts/s, \
             {:.0} simulated cycles/s aggregate; full matrix median {:.3}s \
             (min {:.3}s)",
            self.cells.len(),
            scale_slug(self.scale),
            self.reps,
            self.insts_per_sec(),
            self.cycles_per_sec(),
            self.matrix_median_secs,
            self.matrix_min_secs,
        )
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.cells.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {BENCH_JSON_VERSION},\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", scale_slug(self.scale)));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"matrix\": {{ \"median_secs\": {:.6}, \"min_secs\": {:.6} }},\n",
            self.matrix_median_secs, self.matrix_min_secs
        ));
        out.push_str("  \"aggregate\": {\n");
        out.push_str(&format!(
            "    \"total_insts\": {},\n    \"total_cycles\": {},\n",
            self.total_insts(),
            self.total_cycles()
        ));
        out.push_str(&format!(
            "    \"total_median_secs\": {:.6},\n",
            self.total_median_secs()
        ));
        out.push_str(&format!(
            "    \"emulated_insts_per_sec\": {:.1},\n    \"simulated_cycles_per_sec\": {:.1}\n",
            self.insts_per_sec(),
            self.cycles_per_sec()
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"model\": \"{}\", \
                 \"insts\": {}, \"cycles\": {}, \
                 \"median_secs\": {:.6}, \"min_secs\": {:.6}, \
                 \"insts_per_sec\": {:.1}, \"cycles_per_sec\": {:.1} }}{sep}\n",
                c.workload,
                model_slug(c.model),
                c.insts,
                c.cycles,
                c.median_secs,
                c.min_secs,
                c.insts_per_sec(),
                c.cycles_per_sec(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn per_sec(count: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

fn scale_slug(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn model_slug(m: Model) -> &'static str {
    match m {
        Model::Superblock => "superblock",
        Model::CondMove => "condmove",
        Model::FullPred => "fullpred",
    }
}

/// Median of the timed samples: midpoint average of the sorted list.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn min(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs the harness: per-cell simulation sweep plus matrix wall time.
///
/// # Errors
/// Propagates pipeline or simulation failures (the harness only times
/// healthy runs; a failing cell is a bug to fix, not a number to report).
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, PipelineError> {
    let reps = cfg.reps.max(1);
    let pipe = Pipeline::default();
    // Per-cell sweep on the Figure 8 machine (8-issue, 1-branch,
    // perfect memory): the configuration every table in the paper uses.
    let machine = MachineConfig::new(8, 1);
    let sim_cfg = SimConfig::default();

    let mut cells = Vec::new();
    for w in hyperpred::workloads::all(cfg.scale) {
        // The model-independent front half (parse, classic opt, profile)
        // runs once per workload, mirroring the matrix engine's memo.
        let front = pipe.front(&w.source, &w.args)?;
        let args = entry_args(&w.args);
        for model in Model::ALL {
            let module = pipe.finish(&front, model, &machine)?;
            // Warmup rep: faults the code/data into cache and gives us
            // the (deterministic) instruction and cycle counts.
            let stats: SimStats = simulate(&module, "main", &args, machine, sim_cfg)?;
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                let s = simulate(&module, "main", &args, machine, sim_cfg)?;
                samples.push(t.elapsed().as_secs_f64());
                debug_assert_eq!(s.cycles, stats.cycles, "simulation must be deterministic");
            }
            cells.push(CellBench {
                workload: w.name,
                model,
                insts: stats.insts,
                cycles: stats.cycles,
                median_secs: median(&mut samples),
                min_secs: min(&samples),
            });
        }
    }

    // Full figures matrix through the parallel engine: all four
    // experiments, shared compile/baseline/front caches, warmup + reps.
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    let mut matrix_samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t = Instant::now();
        run_matrix_with_stats(&exps, cfg.scale, &pipe, cfg.threads)?;
        let dt = t.elapsed().as_secs_f64();
        if rep > 0 {
            matrix_samples.push(dt);
        }
    }

    Ok(BenchReport {
        scale: cfg.scale,
        reps,
        threads: cfg.threads,
        matrix_median_secs: median(&mut matrix_samples),
        matrix_min_secs: min(&matrix_samples),
        cells,
    })
}

/// Extracts a top-level-unique numeric field from hand-rolled JSON.
/// Good enough for our own schema; not a general JSON parser.
fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field (first occurrence) from hand-rolled JSON.
fn json_string_field(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The CI regression guard: compares a fresh report against the
/// committed baseline JSON.
///
/// Returns a human-readable verdict on success.
///
/// # Errors
/// Fails (with the message the CI log should show) when the baseline is
/// unreadable, was recorded at a different scale, or when aggregate
/// emulated insts/sec dropped more than [`REGRESSION_FACTOR`]× below it.
pub fn check_regression(report: &BenchReport, baseline_json: &str) -> Result<String, String> {
    let version = json_number_field(baseline_json, "version")
        .ok_or_else(|| "baseline JSON has no \"version\" field".to_string())?;
    if version as u64 != BENCH_JSON_VERSION {
        return Err(format!(
            "baseline schema version {version} != supported {BENCH_JSON_VERSION}; \
             regenerate the baseline"
        ));
    }
    let base_scale = json_string_field(baseline_json, "scale")
        .ok_or_else(|| "baseline JSON has no \"scale\" field".to_string())?;
    if base_scale != scale_slug(report.scale) {
        return Err(format!(
            "baseline was recorded at scale \"{base_scale}\" but this run used \
             \"{}\"; rates are not comparable across scales",
            scale_slug(report.scale)
        ));
    }
    let base_ips = json_number_field(baseline_json, "emulated_insts_per_sec")
        .ok_or_else(|| "baseline JSON has no \"emulated_insts_per_sec\" field".to_string())?;
    let cur_ips = report.insts_per_sec();
    if cur_ips * REGRESSION_FACTOR < base_ips {
        return Err(format!(
            "hot-path regression: {cur_ips:.0} emulated insts/s is more than \
             {REGRESSION_FACTOR}x below the committed baseline ({base_ips:.0})"
        ));
    }
    Ok(format!(
        "hot path within budget: {cur_ips:.0} emulated insts/s vs baseline \
         {base_ips:.0} (guard trips below {:.0})",
        base_ips / REGRESSION_FACTOR
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_rate(insts: u64, secs: f64) -> BenchReport {
        BenchReport {
            scale: Scale::Test,
            reps: 1,
            threads: 1,
            matrix_median_secs: 0.5,
            matrix_min_secs: 0.4,
            cells: vec![CellBench {
                workload: "wl",
                model: Model::FullPred,
                insts,
                cycles: insts * 2,
                median_secs: secs,
                min_secs: secs,
            }],
        }
    }

    #[test]
    fn median_is_midpoint_of_sorted_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn json_roundtrips_through_the_guard_parsers() {
        let r = report_with_rate(1_000_000, 0.25);
        let json = r.to_json();
        assert_eq!(json_number_field(&json, "version"), Some(1.0));
        assert_eq!(json_string_field(&json, "scale").as_deref(), Some("test"));
        let ips = json_number_field(&json, "emulated_insts_per_sec").expect("aggregate rate");
        assert!((ips - r.insts_per_sec()).abs() < 1.0, "{ips}");
        // Per-cell fields are present and the cell list is well-formed.
        assert!(json.contains("\"workload\": \"wl\""));
        assert!(json.contains("\"model\": \"fullpred\""));
    }

    #[test]
    fn guard_passes_within_factor_and_trips_beyond_it() {
        let baseline = report_with_rate(1_000_000, 0.25).to_json(); // 4M insts/s
        let fine = report_with_rate(1_000_000, 0.45); // ~2.2M, within 2x
        assert!(check_regression(&fine, &baseline).is_ok());
        let slow = report_with_rate(1_000_000, 0.55); // ~1.8M, beyond 2x
        let err = check_regression(&slow, &baseline).unwrap_err();
        assert!(err.contains("hot-path regression"), "{err}");
    }

    #[test]
    fn guard_rejects_cross_scale_and_wrong_version_baselines() {
        let mut full = report_with_rate(1_000_000, 0.25);
        full.scale = Scale::Full;
        let baseline = full.to_json();
        let test_run = report_with_rate(1_000_000, 0.25);
        let err = check_regression(&test_run, &baseline).unwrap_err();
        assert!(err.contains("not comparable"), "{err}");

        let bumped = baseline.replace("\"version\": 1", "\"version\": 99");
        let mut full_run = report_with_rate(1_000_000, 0.25);
        full_run.scale = Scale::Full;
        let err = check_regression(&full_run, &bumped).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
