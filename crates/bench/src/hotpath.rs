//! Wall-clock benchmark harness for the emulation-driven hot path.
//!
//! Three measurements, all behind `figures --bench N`:
//!
//! 1. **Per-cell emulation rate.** Every (workload, model) pair is
//!    compiled once on the Figure 8 machine and pre-decoded, then the
//!    decoded emulator runs the program bare (a [`NullSink`], no timing
//!    model) for `N` timed repetitions after one warmup. Fetched
//!    instructions / median wall time is the *emulated instructions per
//!    second* rate — the throughput of the interpreter itself, which is
//!    what the pre-decode work optimizes and what the CI guard watches.
//! 2. **Per-cell simulation rate.** The same cell through
//!    [`simulate_decoded`] — emulator plus the cycle-timing sink. The
//!    derived *simulated cycles per second* rate tracks the cost of the
//!    full timing model.
//! 3. **Full-matrix wall time.** The complete figures run (all four
//!    experiments over every workload at the requested scale) through
//!    the parallel engine, again warmup + `N` reps, median/min.
//!
//! Compilation and pre-decode are deliberately outside every timed
//! region — the hot paths under test are emulate and emulate+simulate.
//!
//! [`BenchReport::to_json`] serializes the result (hand-rolled JSON, no
//! serde in the tree); the committed `BENCH_hotpath.json` at the repo
//! root is the regression baseline. [`check_regression`] implements the
//! CI guard: the run fails if aggregate emulated insts/sec drops below
//! [`REGRESSION_FLOOR`] of the baseline. The floor is tight enough to
//! catch a 1.5x hot-path slowdown (an accidental allocation or hash
//! lookup back in the per-event path) while still absorbing normal
//! host-speed variance between the machine that committed the baseline
//! and the CI runner.

use hyperpred::emu::{DecodedModule, Emulator, NullSink};
use hyperpred::lang::lower::entry_args;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::{simulate_decoded, SimConfig, SimStats};
use hyperpred::workloads::Scale;
use hyperpred::{run_matrix_with_stats, Experiment, Model, Pipeline, PipelineError};
use std::sync::Arc;
use std::time::Instant;

/// The guard trips when current insts/sec < baseline insts/sec × floor.
/// 0.75 tolerates run-to-run noise but fails a 1.5x slowdown.
pub const REGRESSION_FLOOR: f64 = 0.75;

/// Schema version stamped into the JSON so future shape changes can be
/// detected instead of silently mis-parsed. Version 2 split the per-cell
/// timings into separate emulation-only and full-simulation loops.
pub const BENCH_JSON_VERSION: u64 = 2;

/// Harness knobs (from the `figures` command line).
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed repetitions per measurement (after one untimed warmup).
    pub reps: usize,
    /// Workload scale for both the per-cell sweep and the matrix timing.
    pub scale: Scale,
    /// Worker threads for the matrix timing (0 = all cores).
    pub threads: usize,
}

/// Timing for one (workload, model) cell: an emulation-only loop and a
/// full emulate+simulate loop over the same compiled module.
#[derive(Debug, Clone)]
pub struct CellBench {
    /// Workload name.
    pub workload: &'static str,
    /// Evaluated model.
    pub model: Model,
    /// Dynamic (fetched) instruction count of one run.
    pub insts: u64,
    /// Simulated cycles of one simulation.
    pub cycles: u64,
    /// Median wall time of the emulation-only reps, seconds.
    pub emu_median_secs: f64,
    /// Fastest emulation-only rep, seconds.
    pub emu_min_secs: f64,
    /// Median wall time of the full-simulation reps, seconds.
    pub sim_median_secs: f64,
    /// Fastest full-simulation rep, seconds.
    pub sim_min_secs: f64,
}

impl CellBench {
    /// Emulated instructions per wall-clock second (median emulation-only
    /// rep).
    pub fn insts_per_sec(&self) -> f64 {
        per_sec(self.insts, self.emu_median_secs)
    }

    /// Simulated cycles per wall-clock second (median full-sim rep).
    pub fn cycles_per_sec(&self) -> f64 {
        per_sec(self.cycles, self.sim_median_secs)
    }
}

/// One harness run: per-cell timings plus the full-matrix wall time.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale the run used.
    pub scale: Scale,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Worker threads for the matrix timing (0 = all cores).
    pub threads: usize,
    /// Median wall time of the full figures matrix, seconds.
    pub matrix_median_secs: f64,
    /// Fastest matrix rep, seconds.
    pub matrix_min_secs: f64,
    /// Per-(workload, model) timings on the Figure 8 machine.
    pub cells: Vec<CellBench>,
}

impl BenchReport {
    /// Total fetched instructions across all cells (one rep each).
    pub fn total_insts(&self) -> u64 {
        self.cells.iter().map(|c| c.insts).sum()
    }

    /// Total simulated cycles across all cells (one rep each).
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Sum of the per-cell median emulation-only wall times, seconds.
    pub fn total_emu_median_secs(&self) -> f64 {
        self.cells.iter().map(|c| c.emu_median_secs).sum()
    }

    /// Sum of the per-cell median full-simulation wall times, seconds.
    pub fn total_sim_median_secs(&self) -> f64 {
        self.cells.iter().map(|c| c.sim_median_secs).sum()
    }

    /// Aggregate emulated instructions per second over the whole sweep
    /// (emulation-only loop).
    pub fn insts_per_sec(&self) -> f64 {
        per_sec(self.total_insts(), self.total_emu_median_secs())
    }

    /// Aggregate simulated cycles per second over the whole sweep
    /// (full-simulation loop).
    pub fn cycles_per_sec(&self) -> f64 {
        per_sec(self.total_cycles(), self.total_sim_median_secs())
    }

    /// One-paragraph human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "bench: {} cells ({} scale, {} reps): {:.0} emulated insts/s, \
             {:.0} simulated cycles/s aggregate; full matrix median {:.3}s \
             (min {:.3}s)",
            self.cells.len(),
            scale_slug(self.scale),
            self.reps,
            self.insts_per_sec(),
            self.cycles_per_sec(),
            self.matrix_median_secs,
            self.matrix_min_secs,
        )
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.cells.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {BENCH_JSON_VERSION},\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", scale_slug(self.scale)));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"matrix\": {{ \"median_secs\": {:.6}, \"min_secs\": {:.6} }},\n",
            self.matrix_median_secs, self.matrix_min_secs
        ));
        out.push_str("  \"aggregate\": {\n");
        out.push_str(&format!(
            "    \"total_insts\": {},\n    \"total_cycles\": {},\n",
            self.total_insts(),
            self.total_cycles()
        ));
        out.push_str(&format!(
            "    \"total_emu_median_secs\": {:.6},\n    \"total_sim_median_secs\": {:.6},\n",
            self.total_emu_median_secs(),
            self.total_sim_median_secs()
        ));
        out.push_str(&format!(
            "    \"emulated_insts_per_sec\": {:.1},\n    \"simulated_cycles_per_sec\": {:.1}\n",
            self.insts_per_sec(),
            self.cycles_per_sec()
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"model\": \"{}\", \
                 \"insts\": {}, \"cycles\": {}, \
                 \"emu_median_secs\": {:.6}, \"emu_min_secs\": {:.6}, \
                 \"sim_median_secs\": {:.6}, \"sim_min_secs\": {:.6}, \
                 \"insts_per_sec\": {:.1}, \"cycles_per_sec\": {:.1} }}{sep}\n",
                c.workload,
                model_slug(c.model),
                c.insts,
                c.cycles,
                c.emu_median_secs,
                c.emu_min_secs,
                c.sim_median_secs,
                c.sim_min_secs,
                c.insts_per_sec(),
                c.cycles_per_sec(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Smallest duration the rate math will divide by, seconds. Tiny
/// `--scale test` cells can finish inside the timer's resolution and
/// report a 0.0s median; dividing by it would put `inf`/`nan` into the
/// hand-rolled JSON, which [`check_regression`]'s parser cannot read
/// back. Clamping keeps every reported rate finite.
pub const MIN_MEASURABLE_SECS: f64 = 1e-9;

fn per_sec(count: u64, secs: f64) -> f64 {
    // `f64::max` also maps a NaN duration onto the clamp floor.
    count as f64 / secs.max(MIN_MEASURABLE_SECS)
}

fn scale_slug(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn model_slug(m: Model) -> &'static str {
    match m {
        Model::Superblock => "superblock",
        Model::CondMove => "condmove",
        Model::FullPred => "fullpred",
    }
}

/// Median of the timed samples: midpoint average of the sorted list.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn min(samples: &[f64]) -> f64 {
    // An empty sample set reports 0.0, never the fold identity
    // (`f64::INFINITY` prints as `inf`, which is not valid JSON).
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs the harness: per-cell emulation and simulation sweeps plus the
/// matrix wall time.
///
/// # Errors
/// Propagates pipeline or simulation failures (the harness only times
/// healthy runs; a failing cell is a bug to fix, not a number to report).
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, PipelineError> {
    let reps = cfg.reps.max(1);
    let pipe = Pipeline::default();
    // Per-cell sweep on the Figure 8 machine (8-issue, 1-branch,
    // perfect memory): the configuration every table in the paper uses.
    let machine = MachineConfig::new(8, 1);
    let sim_cfg = SimConfig::default();

    let mut cells = Vec::new();
    for w in hyperpred::workloads::all(cfg.scale) {
        // The model-independent front half (parse, classic opt, profile)
        // runs once per workload, mirroring the matrix engine's memo.
        let front = pipe.front(&w.source, &w.args)?;
        let args = entry_args(&w.args);
        for model in Model::ALL {
            let module = pipe.finish(&front, model, &machine)?;
            // Pre-decode outside the timed region, like the matrix engine:
            // the hot paths under test are emulate and emulate+simulate,
            // not decode.
            let decoded = Arc::new(DecodedModule::decode(&module));

            // Emulation-only loop: the decoded interpreter bare. Warmup
            // rep faults code/data into cache and yields the fetched
            // count; the emulator is deterministic so every rep fetches
            // the same stream.
            let mut sink = NullSink;
            let fetched = Emulator::with_decoded(&module, Arc::clone(&decoded))
                .run("main", &args, &mut sink)
                .map_err(PipelineError::from)?
                .fetched;
            let mut emu_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                let out = Emulator::with_decoded(&module, Arc::clone(&decoded))
                    .run("main", &args, &mut sink)
                    .map_err(PipelineError::from)?;
                emu_samples.push(t.elapsed().as_secs_f64());
                debug_assert_eq!(out.fetched, fetched, "emulation must be deterministic");
            }

            // Full-simulation loop: same module through the timing model.
            let stats: SimStats =
                simulate_decoded(&module, &decoded, "main", &args, machine, sim_cfg)?;
            debug_assert_eq!(stats.insts, fetched, "sim sees every fetched inst");
            let mut sim_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                let s = simulate_decoded(&module, &decoded, "main", &args, machine, sim_cfg)?;
                sim_samples.push(t.elapsed().as_secs_f64());
                debug_assert_eq!(s.cycles, stats.cycles, "simulation must be deterministic");
            }

            cells.push(CellBench {
                workload: w.name,
                model,
                insts: stats.insts,
                cycles: stats.cycles,
                emu_median_secs: median(&mut emu_samples),
                emu_min_secs: min(&emu_samples),
                sim_median_secs: median(&mut sim_samples),
                sim_min_secs: min(&sim_samples),
            });
        }
    }

    // Full figures matrix through the parallel engine: all four
    // experiments, shared compile/baseline/front caches, warmup + reps.
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    let mut matrix_samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t = Instant::now();
        run_matrix_with_stats(&exps, cfg.scale, &pipe, cfg.threads)?;
        let dt = t.elapsed().as_secs_f64();
        if rep > 0 {
            matrix_samples.push(dt);
        }
    }

    Ok(BenchReport {
        scale: cfg.scale,
        reps,
        threads: cfg.threads,
        matrix_median_secs: median(&mut matrix_samples),
        matrix_min_secs: min(&matrix_samples),
        cells,
    })
}

/// Extracts a top-level-unique numeric field from hand-rolled JSON.
/// Good enough for our own schema; not a general JSON parser.
fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field (first occurrence) from hand-rolled JSON.
fn json_string_field(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The CI regression guard: compares a fresh report against the
/// committed baseline JSON.
///
/// Returns a human-readable verdict on success.
///
/// # Errors
/// Fails (with the message the CI log should show) when the baseline is
/// unreadable, was recorded at a different scale, or when aggregate
/// emulated insts/sec dropped below [`REGRESSION_FLOOR`] of it.
pub fn check_regression(report: &BenchReport, baseline_json: &str) -> Result<String, String> {
    let version = json_number_field(baseline_json, "version")
        .ok_or_else(|| "baseline JSON has no \"version\" field".to_string())?;
    if version as u64 != BENCH_JSON_VERSION {
        return Err(format!(
            "baseline schema version {version} != supported {BENCH_JSON_VERSION}; \
             regenerate the baseline"
        ));
    }
    let base_scale = json_string_field(baseline_json, "scale")
        .ok_or_else(|| "baseline JSON has no \"scale\" field".to_string())?;
    if base_scale != scale_slug(report.scale) {
        return Err(format!(
            "baseline was recorded at scale \"{base_scale}\" but this run used \
             \"{}\"; rates are not comparable across scales",
            scale_slug(report.scale)
        ));
    }
    let base_ips = json_number_field(baseline_json, "emulated_insts_per_sec")
        .ok_or_else(|| "baseline JSON has no \"emulated_insts_per_sec\" field".to_string())?;
    let cur_ips = report.insts_per_sec();
    let floor = base_ips * REGRESSION_FLOOR;
    if cur_ips < floor {
        return Err(format!(
            "hot-path regression: {cur_ips:.0} emulated insts/s is below \
             {REGRESSION_FLOOR} of the committed baseline ({base_ips:.0}; \
             floor {floor:.0})"
        ));
    }
    Ok(format!(
        "hot path within budget: {cur_ips:.0} emulated insts/s vs baseline \
         {base_ips:.0} (guard trips below {floor:.0})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_rate(insts: u64, secs: f64) -> BenchReport {
        BenchReport {
            scale: Scale::Test,
            reps: 1,
            threads: 1,
            matrix_median_secs: 0.5,
            matrix_min_secs: 0.4,
            cells: vec![CellBench {
                workload: "wl",
                model: Model::FullPred,
                insts,
                cycles: insts * 2,
                emu_median_secs: secs,
                emu_min_secs: secs,
                sim_median_secs: secs * 4.0,
                sim_min_secs: secs * 4.0,
            }],
        }
    }

    #[test]
    fn median_is_midpoint_of_sorted_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn json_roundtrips_through_the_guard_parsers() {
        let r = report_with_rate(1_000_000, 0.25);
        let json = r.to_json();
        assert_eq!(json_number_field(&json, "version"), Some(2.0));
        assert_eq!(json_string_field(&json, "scale").as_deref(), Some("test"));
        let ips = json_number_field(&json, "emulated_insts_per_sec").expect("aggregate rate");
        assert!((ips - r.insts_per_sec()).abs() < 1.0, "{ips}");
        let cps = json_number_field(&json, "simulated_cycles_per_sec").expect("cycle rate");
        assert!((cps - r.cycles_per_sec()).abs() < 1.0, "{cps}");
        // Per-cell fields are present and the cell list is well-formed.
        assert!(json.contains("\"workload\": \"wl\""));
        assert!(json.contains("\"model\": \"fullpred\""));
        assert!(json.contains("\"emu_median_secs\""));
        assert!(json.contains("\"sim_median_secs\""));
    }

    #[test]
    fn zero_duration_medians_yield_finite_parseable_rates() {
        // A tiny --scale run can complete a cell inside the timer's
        // resolution; the report must still be finite and round-trip
        // through the baseline parser (no "inf"/"nan" in the JSON).
        let r = report_with_rate(1_000_000, 0.0);
        assert!(r.insts_per_sec().is_finite(), "{}", r.insts_per_sec());
        assert!(r.cycles_per_sec().is_finite(), "{}", r.cycles_per_sec());
        assert!(r.cells[0].insts_per_sec().is_finite());
        assert!(r.cells[0].cycles_per_sec().is_finite());
        let json = r.to_json();
        assert!(!json.contains("inf"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        let ips = json_number_field(&json, "emulated_insts_per_sec").expect("parseable rate");
        assert!(ips.is_finite() && ips > 0.0, "{ips}");
        // The clamp floor bounds the reported rate.
        assert!(ips <= 1_000_000.0 / MIN_MEASURABLE_SECS);
        // A guard comparison against such a baseline stays well-defined.
        assert!(check_regression(&r, &json).is_ok());
    }

    #[test]
    fn min_of_no_samples_is_zero_not_infinity() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(min(&[0.25, 0.5]), 0.25);
    }

    #[test]
    fn guard_passes_within_floor_and_trips_below_it() {
        let baseline = report_with_rate(1_000_000, 0.25).to_json(); // 4M insts/s
        let fine = report_with_rate(1_000_000, 0.31); // ~3.2M, above 0.75 floor
        assert!(check_regression(&fine, &baseline).is_ok());
        let slow = report_with_rate(1_000_000, 0.35); // ~2.9M, below 3M floor
        let err = check_regression(&slow, &baseline).unwrap_err();
        assert!(err.contains("hot-path regression"), "{err}");
    }

    #[test]
    fn guard_fails_a_deliberate_1_5x_slowdown() {
        // The acceptance scenario: the hot path gets 1.5x slower (same
        // instruction stream, 1.5x the wall time → rate falls to 2/3 of
        // baseline, below the 0.75 floor).
        let baseline = report_with_rate(1_000_000, 0.25).to_json();
        let slowed = report_with_rate(1_000_000, 0.25 * 1.5);
        let err = check_regression(&slowed, &baseline).unwrap_err();
        assert!(err.contains("hot-path regression"), "{err}");
    }

    #[test]
    fn guard_rejects_cross_scale_and_wrong_version_baselines() {
        let mut full = report_with_rate(1_000_000, 0.25);
        full.scale = Scale::Full;
        let baseline = full.to_json();
        let test_run = report_with_rate(1_000_000, 0.25);
        let err = check_regression(&test_run, &baseline).unwrap_err();
        assert!(err.contains("not comparable"), "{err}");

        let bumped = baseline.replace("\"version\": 2", "\"version\": 99");
        let mut full_run = report_with_rate(1_000_000, 0.25);
        full_run.scale = Scale::Full;
        let err = check_regression(&full_run, &bumped).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
