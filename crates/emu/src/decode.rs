//! Pre-decoding of IR into flat, fixed-width op streams.
//!
//! Walking [`Inst`] structs per fetched instruction costs an enum-payload
//! match, an `Option<Reg>` unwrap, and a `Vec<Operand>` indirection on
//! every dynamic instruction. [`DecodedModule::decode`] pays those costs
//! once per *static* instruction instead: each function becomes one flat
//! `Vec<DOp>` of fixed-width ops with
//!
//! * a dense opcode discriminant (comparison operators baked into the
//!   opcode, so `br_lt` is one jump-table entry, not a match on `CmpOp`),
//! * every operand resolved to a register-file *slot* — immediates get
//!   pseudo-slots past `reg_count` whose values are copied from a per-
//!   function constant pool at activation, so the hot loop reads operands
//!   with one unconditional indexed load,
//! * branch targets resolved to stream indices (the `pc` of the target
//!   block's [`DCode::EnterBlock`] marker, so taken branches reproduce the
//!   reference interpreter's `enter_block` callback exactly),
//! * call targets resolved to function indices and argument lists to a
//!   shared slot pool,
//! * the guard baked as a `nullify` predicate slot (with a sentinel for
//!   unguarded ops and for predicate defines, which a false guard does
//!   *not* nullify — Pin is a Table 1 input, carried separately in `c`).
//!
//! Structural problems the reference interpreter reports lazily (missing
//! destination, unlinked call, out-of-range registers) are discovered at
//! decode time and baked as [`DCode::Malformed`] ops that still respect
//! the guard, so a nullified malformed instruction stays silent exactly as
//! it does in the reference. Error *context* is not materialized here at
//! all: a decoded op carries only its `(block, index)` provenance, and the
//! emulator rebuilds the human-readable [`EmuContext`] from the original
//! `Inst` on the cold error path.
//!
//! [`EmuContext`]: crate::EmuContext

use hyperpred_ir::{CmpOp, Function, MemWidth, Module, Op, Operand, PredType};
use std::collections::HashMap;

/// Sentinel slot: "no register here" (absent guard, absent `ret` value,
/// absent `call`/`cmov` destination).
pub const NONE: u32 = u32::MAX;
/// Sentinel for a *present but out-of-range* lazily-checked destination
/// (`call` / `cmov`, which the reference interpreter only faults when the
/// write actually happens).
pub const DST_OOR: u32 = u32::MAX - 1;
/// Branch-target sentinel: the branch has no target block at all.
pub const TARGET_MISSING: u32 = u32::MAX;
/// Branch-target sentinel: the target block exists but is not in the
/// function layout. Both sentinels fault only when the branch is taken.
pub const TARGET_NOT_LAID: u32 = u32::MAX - 1;

/// `flags` bit: silent (speculative) form — loads of bad addresses and
/// divides by zero produce 0 instead of faulting.
pub const F_SPEC: u8 = 1;
/// `flags` bit: the original op is a branch (`br`/`jump`), so a nullified
/// execution reports `taken: Some(false)` to the trace sink.
pub const F_BRANCH: u8 = 1 << 1;

/// Reasons for baked [`DCode::Malformed`] ops, indexed by `DOp::imm`.
///
/// The first three reproduce the reference interpreter's lazy messages
/// verbatim; the rest are typed upgrades of conditions on which the
/// reference would panic (indexing a register file out of bounds).
pub const MALFORMED_REASONS: &[&str] = &[
    "missing destination register",
    "destination register out of range",
    "unlinked call",
    "source register out of range",
    "guard predicate out of range",
    "predicate destination out of range",
    "missing source operand",
];
/// Indices into [`MALFORMED_REASONS`].
pub(crate) const R_MISSING_DST: u32 = 0;
pub(crate) const R_DST_RANGE: u32 = 1;
pub(crate) const R_UNLINKED_CALL: u32 = 2;
pub(crate) const R_SRC_RANGE: u32 = 3;
pub(crate) const R_GUARD_RANGE: u32 = 4;
pub(crate) const R_PDST_RANGE: u32 = 5;
pub(crate) const R_MISSING_SRC: u32 = 6;

/// Dense decoded opcode. Comparison-carrying IR opcodes expand to six
/// variants each so dispatch is a single jump on the discriminant.
///
/// The three *pseudo-ops* ([`DCode::EnterBlock`], [`DCode::End`],
/// [`DCode::BadParams`]) sort first so the hot loop filters all of them
/// with one `<=` compare before the fuel/abort bookkeeping — they are not
/// fetched instructions and consume no fuel, matching the reference
/// interpreter's per-block structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum DCode {
    /// Block boundary: report `enter_block(func, block)` and fall through.
    EnterBlock = 0,
    /// Past the last laid-out block: control fell off the end.
    End = 1,
    /// Function prologue found a parameter register out of range.
    BadParams = 2,
    /// Structurally invalid instruction; faults when executed (guard
    /// permitting) with `MALFORMED_REASONS[imm]`.
    Malformed,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    AndNot,
    OrNot,
    Shl,
    Shr,
    Sra,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    Mov,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FCmpEq,
    FCmpNe,
    FCmpLt,
    FCmpLe,
    FCmpGt,
    FCmpGe,
    IToF,
    FToI,
    LdByte,
    LdWord,
    StByte,
    StWord,
    BrEq,
    BrNe,
    BrLt,
    BrLe,
    BrGt,
    BrGe,
    Jump,
    Call,
    Ret,
    Halt,
    PdEq,
    PdNe,
    PdLt,
    PdLe,
    PdGt,
    PdGe,
    FPdEq,
    FPdNe,
    FPdLt,
    FPdLe,
    FPdGt,
    FPdGe,
    PredClear,
    PredSet,
    Cmov,
    CmovCom,
    Select,
    Nop,
}

impl DCode {
    /// The decoded opcode an architectural [`Op`] maps to, independent of
    /// operand validity. This is what trace events carry; the reference
    /// interpreter uses it so both interpreters report identical events.
    pub fn of(op: Op) -> DCode {
        match op {
            Op::Add => DCode::Add,
            Op::Sub => DCode::Sub,
            Op::Mul => DCode::Mul,
            Op::Div => DCode::Div,
            Op::Rem => DCode::Rem,
            Op::And => DCode::And,
            Op::Or => DCode::Or,
            Op::Xor => DCode::Xor,
            Op::AndNot => DCode::AndNot,
            Op::OrNot => DCode::OrNot,
            Op::Shl => DCode::Shl,
            Op::Shr => DCode::Shr,
            Op::Sra => DCode::Sra,
            Op::Cmp(c) => CMP_FAM[cmp_idx(c)],
            Op::Mov => DCode::Mov,
            Op::FAdd => DCode::FAdd,
            Op::FSub => DCode::FSub,
            Op::FMul => DCode::FMul,
            Op::FDiv => DCode::FDiv,
            Op::FCmp(c) => FCMP_FAM[cmp_idx(c)],
            Op::IToF => DCode::IToF,
            Op::FToI => DCode::FToI,
            Op::Ld(MemWidth::Byte) => DCode::LdByte,
            Op::Ld(MemWidth::Word) => DCode::LdWord,
            Op::St(MemWidth::Byte) => DCode::StByte,
            Op::St(MemWidth::Word) => DCode::StWord,
            Op::Br(c) => BR_FAM[cmp_idx(c)],
            Op::Jump => DCode::Jump,
            Op::Call => DCode::Call,
            Op::Ret => DCode::Ret,
            Op::Halt => DCode::Halt,
            Op::PredDef(c) => PD_FAM[cmp_idx(c)],
            Op::FPredDef(c) => FPD_FAM[cmp_idx(c)],
            Op::PredClear => DCode::PredClear,
            Op::PredSet => DCode::PredSet,
            Op::Cmov => DCode::Cmov,
            Op::CmovCom => DCode::CmovCom,
            Op::Select => DCode::Select,
            Op::Nop => DCode::Nop,
        }
    }
}

const fn cmp_idx(c: CmpOp) -> usize {
    match c {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

const CMP_FAM: [DCode; 6] = [
    DCode::CmpEq,
    DCode::CmpNe,
    DCode::CmpLt,
    DCode::CmpLe,
    DCode::CmpGt,
    DCode::CmpGe,
];
const FCMP_FAM: [DCode; 6] = [
    DCode::FCmpEq,
    DCode::FCmpNe,
    DCode::FCmpLt,
    DCode::FCmpLe,
    DCode::FCmpGt,
    DCode::FCmpGe,
];
const BR_FAM: [DCode; 6] = [
    DCode::BrEq,
    DCode::BrNe,
    DCode::BrLt,
    DCode::BrLe,
    DCode::BrGt,
    DCode::BrGe,
];
const PD_FAM: [DCode; 6] = [
    DCode::PdEq,
    DCode::PdNe,
    DCode::PdLt,
    DCode::PdLe,
    DCode::PdGt,
    DCode::PdGe,
];
const FPD_FAM: [DCode; 6] = [
    DCode::FPdEq,
    DCode::FPdNe,
    DCode::FPdLt,
    DCode::FPdLe,
    DCode::FPdGt,
    DCode::FPdGe,
];

/// One fixed-width decoded op. Field meaning varies by opcode family:
///
/// | family | `dst` | `a` | `b` | `c` | `imm` |
/// |---|---|---|---|---|---|
/// | ALU / cmp / conversions | result slot | src | src | — | — |
/// | `ld` | result slot | base | offset | — | — |
/// | `st` | — | base | offset | value | — |
/// | `br` / `jump` | — | src | src | — | target `pc` |
/// | `call` | ret slot / sentinel | `call_args` start | arg count | — | callee index |
/// | `ret` | — | value slot / `NONE` | — | — | — |
/// | pred define | `pdsts` start | src | src | Pin slot / `NONE` | pdst count |
/// | `cmov` | dst slot / sentinel | value | cond | — | — |
/// | `select` | result slot | tval | fval | cond | — |
/// | `Malformed` | — | — | — | — | reason index |
/// | `EnterBlock` | — | — | — | — | — |
///
/// `block`/`index` are the op's provenance in the original IR, used to
/// fetch the `&Inst` for trace events and to rebuild error context.
#[derive(Debug, Clone, Copy)]
pub struct DOp {
    /// Dense opcode.
    pub code: DCode,
    /// [`F_SPEC`] | [`F_BRANCH`].
    pub flags: u8,
    /// Guard predicate slot to test before executing ([`NONE`] = never
    /// nullified; always [`NONE`] for predicate defines).
    pub nullify: u32,
    /// See the table above.
    pub dst: u32,
    /// See the table above.
    pub a: u32,
    /// See the table above.
    pub b: u32,
    /// See the table above.
    pub c: u32,
    /// See the table above.
    pub imm: u32,
    /// Originating block id.
    pub block: u32,
    /// Originating index within that block.
    pub index: u32,
    /// [`InstId`](hyperpred_ir::InstId) of the originating instruction,
    /// carried into trace events so profile consumers never touch the
    /// `Inst` structs on the hot path.
    pub id: u32,
}

/// A decoded typed predicate destination (slot pre-resolved).
#[derive(Debug, Clone, Copy)]
pub struct DPredDst {
    /// Predicate-file slot.
    pub slot: u32,
    /// Define type (Table 1 semantics).
    pub ty: PredType,
}

/// One function's decoded stream plus its operand pools.
#[derive(Debug)]
pub struct DecodedFunc {
    /// The flat op stream; always terminated by [`DCode::End`].
    pub ops: Vec<DOp>,
    /// Constant pool; copied into `regs[reg_count..]` at activation so
    /// immediates read like registers.
    pub pool: Vec<i64>,
    /// General-register slot count (the reference's `reg_count.max(1)`).
    pub reg_count: u32,
    /// Total register-file slots: `reg_count` + pool length.
    pub slot_count: u32,
    /// Predicate slot count (the reference's `pred_count.max(1)`).
    pub pred_count: u32,
    /// Parameter slots, in declaration order.
    pub params: Vec<u32>,
    /// Predicate-destination pool (pred defines index into this).
    pub pdsts: Vec<DPredDst>,
    /// Call-argument slot pool (calls index into this).
    pub call_args: Vec<u32>,
    /// Instruction count per block id — the shape [`DecodedModule::matches`]
    /// validates so `(block, index)` lookups can skip bounds checks.
    pub(crate) block_lens: Vec<u32>,
    /// Block layout this stream was built from.
    pub(crate) layout: Vec<u32>,
}

/// A whole module decoded for execution, function streams indexed by
/// [`FuncId`](hyperpred_ir::FuncId). Owns no references into the module,
/// so it can be cached (`Arc`) alongside a compiled module and shared by
/// every emulator running it.
#[derive(Debug)]
pub struct DecodedModule {
    /// Per-function streams.
    pub funcs: Vec<DecodedFunc>,
}

impl DecodedModule {
    /// Decodes every function of `module`.
    pub fn decode(module: &Module) -> DecodedModule {
        DecodedModule {
            funcs: module.funcs.iter().map(decode_func).collect(),
        }
    }

    /// True when `module` still has the shape this decode was built from:
    /// same function count, and per function the same register/predicate
    /// counts, per-block instruction counts, and layout. The emulator
    /// validates this once per run; it is the safety argument for the
    /// unchecked `(block, index)` instruction fetches in the hot loop.
    pub fn matches(&self, module: &Module) -> bool {
        self.funcs.len() == module.funcs.len()
            && self.funcs.iter().zip(&module.funcs).all(|(d, f)| {
                d.reg_count == f.reg_count.max(1)
                    && d.pred_count == f.pred_count.max(1)
                    && d.block_lens.len() == f.blocks.len()
                    && d.layout.len() == f.layout.len()
                    && d.layout.iter().zip(&f.layout).all(|(&a, b)| a == b.0)
                    && d.block_lens
                        .iter()
                        .zip(&f.blocks)
                        .all(|(&n, b)| n as usize == b.insts.len())
            })
    }
}

/// Interns `v` in the constant pool, returning its pseudo-register slot.
fn const_slot(base: u32, pool: &mut Vec<i64>, map: &mut HashMap<i64, u32>, v: i64) -> u32 {
    base + *map.entry(v).or_insert_with(|| {
        pool.push(v);
        (pool.len() - 1) as u32
    })
}

struct FuncDecoder {
    /// General-register slot count (`reg_count.max(1)`).
    base: u32,
    /// Predicate slot count (`pred_count.max(1)`).
    pmax: u32,
    pool: Vec<i64>,
    pool_map: HashMap<i64, u32>,
    pdsts: Vec<DPredDst>,
    call_args: Vec<u32>,
    /// Stream pc of each block's `EnterBlock`, by block id
    /// ([`TARGET_NOT_LAID`] for blocks outside the layout).
    block_pc: Vec<u32>,
}

impl FuncDecoder {
    /// Slot of `s`, or a malformed-reason code.
    fn slot(&mut self, s: Operand) -> Result<u32, u32> {
        match s {
            Operand::Reg(r) if r.0 < self.base => Ok(r.0),
            Operand::Reg(_) => Err(R_SRC_RANGE),
            Operand::Imm(v) => Ok(const_slot(self.base, &mut self.pool, &mut self.pool_map, v)),
        }
    }

    /// Slot of `srcs[i]`, or a malformed-reason code.
    fn src(&mut self, srcs: &[Operand], i: usize) -> Result<u32, u32> {
        self.slot(*srcs.get(i).ok_or(R_MISSING_SRC)?)
    }
}

fn decode_func(f: &Function) -> DecodedFunc {
    let base = f.reg_count.max(1);
    let pmax = f.pred_count.max(1);

    // Stream layout: [EnterBlock b, insts of b]* then End; a block's pc is
    // where taken branches land so the target's enter_block fires.
    let mut block_pc = vec![TARGET_NOT_LAID; f.blocks.len()];
    let mut pc = 0u32;
    for &bid in &f.layout {
        block_pc[bid.index()] = pc;
        pc += 1 + f.block(bid).insts.len() as u32;
    }

    let mut d = FuncDecoder {
        base,
        pmax,
        pool: Vec::new(),
        pool_map: HashMap::new(),
        pdsts: Vec::new(),
        call_args: Vec::new(),
        block_pc,
    };

    let mut ops: Vec<DOp> = Vec::with_capacity(pc as usize + 2);
    // Parameters out of range cannot be represented as slot writes; bake a
    // faulting prologue (the reference interpreter panics here instead).
    if f.params.iter().any(|p| p.0 >= base) {
        ops.push(DOp {
            code: DCode::BadParams,
            flags: 0,
            nullify: NONE,
            dst: 0,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
            block: 0,
            index: 0,
            id: 0,
        });
    }
    for &bid in &f.layout {
        ops.push(DOp {
            code: DCode::EnterBlock,
            flags: 0,
            nullify: NONE,
            dst: 0,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
            block: bid.0,
            index: 0,
            id: 0,
        });
        for (idx, inst) in f.block(bid).insts.iter().enumerate() {
            ops.push(decode_inst(&mut d, bid.0, idx as u32, inst));
        }
    }
    ops.push(DOp {
        code: DCode::End,
        flags: 0,
        nullify: NONE,
        dst: 0,
        a: 0,
        b: 0,
        c: 0,
        imm: 0,
        block: 0,
        index: 0,
        id: 0,
    });
    // The prologue op shifts every pc by one; fix the baked targets up.
    if matches!(ops[0].code, DCode::BadParams) {
        for op in &mut ops {
            if matches!(
                op.code,
                DCode::BrEq
                    | DCode::BrNe
                    | DCode::BrLt
                    | DCode::BrLe
                    | DCode::BrGt
                    | DCode::BrGe
                    | DCode::Jump
            ) && op.imm < TARGET_NOT_LAID
            {
                op.imm += 1;
            }
        }
    }

    DecodedFunc {
        ops,
        slot_count: base + d.pool.len() as u32,
        pool: d.pool,
        reg_count: base,
        pred_count: pmax,
        // Out-of-range params are remapped to slot 0: the stream starts
        // with `BadParams` so the bogus write is never observable.
        params: f
            .params
            .iter()
            .map(|p| if p.0 < base { p.0 } else { 0 })
            .collect(),
        pdsts: d.pdsts,
        call_args: d.call_args,
        block_lens: f.blocks.iter().map(|b| b.insts.len() as u32).collect(),
        layout: f.layout.iter().map(|b| b.0).collect(),
    }
}

fn decode_inst(d: &mut FuncDecoder, block: u32, index: u32, inst: &hyperpred_ir::Inst) -> DOp {
    let mut op = DOp {
        code: DCode::Nop,
        flags: if inst.speculative { F_SPEC } else { 0 }
            | if inst.op.is_branch() { F_BRANCH } else { 0 },
        nullify: NONE,
        dst: NONE,
        a: NONE,
        b: NONE,
        c: NONE,
        imm: 0,
        block,
        index,
        id: inst.id.0,
    };

    // Guard: predicate defines are never nullified (Pin is a truth-table
    // input, carried in `c` below); everything else tests `nullify`.
    let guard = match inst.guard {
        None => NONE,
        Some(p) if p.0 < d.pmax => p.0,
        Some(_) => {
            // The reference panics evaluating an out-of-range guard before
            // it would nullify anything, so this faults unconditionally.
            op.code = DCode::Malformed;
            op.imm = R_GUARD_RANGE;
            return op;
        }
    };
    if !inst.op.is_pred_def() {
        op.nullify = guard;
    }
    // A baked fault must still respect the guard: the reference checks the
    // guard before it ever looks at operands, so a nullified malformed
    // instruction stays silent.
    macro_rules! mal {
        ($reason:expr) => {{
            op.code = DCode::Malformed;
            op.imm = $reason;
            return op;
        }};
    }
    macro_rules! try_slot {
        ($e:expr) => {
            match $e {
                Ok(s) => s,
                Err(r) => mal!(r),
            }
        };
    }
    // Eagerly-checked destination: the reference calls `dst_slot` on the
    // execution path unconditionally for these opcodes.
    macro_rules! eager_dst {
        () => {
            match inst.dst {
                None => mal!(R_MISSING_DST),
                Some(r) if r.0 >= d.base => mal!(R_DST_RANGE),
                Some(r) => r.0,
            }
        };
    }

    match inst.op {
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::AndNot
        | Op::OrNot
        | Op::Shl
        | Op::Shr
        | Op::Sra
        | Op::FAdd
        | Op::FSub
        | Op::FMul
        | Op::FDiv => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.dst = eager_dst!();
            op.code = match inst.op {
                Op::Add => DCode::Add,
                Op::Sub => DCode::Sub,
                Op::Mul => DCode::Mul,
                Op::Div => DCode::Div,
                Op::Rem => DCode::Rem,
                Op::And => DCode::And,
                Op::Or => DCode::Or,
                Op::Xor => DCode::Xor,
                Op::AndNot => DCode::AndNot,
                Op::OrNot => DCode::OrNot,
                Op::Shl => DCode::Shl,
                Op::Shr => DCode::Shr,
                Op::Sra => DCode::Sra,
                Op::FAdd => DCode::FAdd,
                Op::FSub => DCode::FSub,
                Op::FMul => DCode::FMul,
                Op::FDiv => DCode::FDiv,
                _ => unreachable!(),
            };
        }
        Op::Cmp(c) | Op::FCmp(c) => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.dst = eager_dst!();
            let fam = if matches!(inst.op, Op::Cmp(_)) {
                CMP_FAM
            } else {
                FCMP_FAM
            };
            op.code = fam[cmp_idx(c)];
        }
        Op::Mov => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.dst = eager_dst!();
            op.code = DCode::Mov;
        }
        Op::IToF | Op::FToI => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.dst = eager_dst!();
            op.code = if inst.op == Op::IToF {
                DCode::IToF
            } else {
                DCode::FToI
            };
        }
        Op::Ld(w) => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.dst = eager_dst!();
            op.code = if w == MemWidth::Byte {
                DCode::LdByte
            } else {
                DCode::LdWord
            };
        }
        Op::St(w) => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.c = try_slot!(d.src(&inst.srcs, 2));
            op.code = if w == MemWidth::Byte {
                DCode::StByte
            } else {
                DCode::StWord
            };
        }
        Op::Br(_) | Op::Jump => {
            if let Op::Br(c) = inst.op {
                op.a = try_slot!(d.src(&inst.srcs, 0));
                op.b = try_slot!(d.src(&inst.srcs, 1));
                op.code = BR_FAM[cmp_idx(c)];
            } else {
                op.code = DCode::Jump;
            }
            // Missing / un-laid-out targets fault only when taken.
            op.imm = match inst.target {
                None => TARGET_MISSING,
                Some(t) => *d.block_pc.get(t.index()).unwrap_or(&TARGET_NOT_LAID),
            };
        }
        Op::Call => {
            let Some(callee) = inst.callee else {
                mal!(R_UNLINKED_CALL);
            };
            op.a = d.call_args.len() as u32;
            op.b = inst.srcs.len() as u32;
            for i in 0..inst.srcs.len() {
                let s = try_slot!(d.src(&inst.srcs, i));
                d.call_args.push(s);
            }
            // The reference faults a bad `call` destination only after the
            // callee returns; sentinels defer the check the same way.
            op.dst = match inst.dst {
                None => NONE,
                Some(r) if r.0 >= d.base => DST_OOR,
                Some(r) => r.0,
            };
            op.imm = callee.0;
            op.code = DCode::Call;
        }
        Op::Ret => {
            op.a = match inst.srcs.first() {
                None => NONE,
                Some(&s) => try_slot!(d.slot(s)),
            };
            op.code = DCode::Ret;
        }
        Op::Halt => op.code = DCode::Halt,
        Op::PredDef(c) | Op::FPredDef(c) => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.c = guard; // Pin
            if inst.pdsts.iter().any(|pd| pd.reg.0 >= d.pmax) {
                mal!(R_PDST_RANGE);
            }
            op.dst = d.pdsts.len() as u32;
            op.imm = inst.pdsts.len() as u32;
            d.pdsts.extend(inst.pdsts.iter().map(|pd| DPredDst {
                slot: pd.reg.0,
                ty: pd.ty,
            }));
            let fam = if matches!(inst.op, Op::PredDef(_)) {
                PD_FAM
            } else {
                FPD_FAM
            };
            op.code = fam[cmp_idx(c)];
        }
        Op::PredClear => op.code = DCode::PredClear,
        Op::PredSet => op.code = DCode::PredSet,
        Op::Cmov | Op::CmovCom => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            // Lazily-checked destination: faults only when the move fires.
            op.dst = match inst.dst {
                None => NONE,
                Some(r) if r.0 >= d.base => DST_OOR,
                Some(r) => r.0,
            };
            op.code = if inst.op == Op::Cmov {
                DCode::Cmov
            } else {
                DCode::CmovCom
            };
        }
        Op::Select => {
            op.a = try_slot!(d.src(&inst.srcs, 0));
            op.b = try_slot!(d.src(&inst.srcs, 1));
            op.c = try_slot!(d.src(&inst.srcs, 2));
            op.dst = eager_dst!();
            op.code = DCode::Select;
        }
        Op::Nop => op.code = DCode::Nop,
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{FuncBuilder, Module};

    fn decode_one(b: FuncBuilder) -> (Module, DecodedModule) {
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        let d = DecodedModule::decode(&m);
        (m, d)
    }

    #[test]
    fn stream_shape_and_const_pool() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(5));
        let z = b.add(y.into(), Operand::Imm(5)); // same imm, same slot
        let w = b.add(z.into(), Operand::Imm(7));
        b.ret(Some(w.into()));
        let (m, d) = decode_one(b);
        let df = &d.funcs[0];
        // EnterBlock + 4 insts + End.
        assert_eq!(df.ops.len(), 6);
        assert_eq!(df.ops[0].code, DCode::EnterBlock);
        assert_eq!(df.ops[5].code, DCode::End);
        // Two distinct immediates interned once each.
        assert_eq!(df.pool, vec![5, 7]);
        assert_eq!(df.slot_count, df.reg_count + 2);
        let five = df.reg_count;
        assert_eq!(df.ops[1].b, five);
        assert_eq!(df.ops[2].b, five);
        assert!(d.matches(&m));
    }

    #[test]
    fn branch_targets_are_enter_block_pcs() {
        let mut b = FuncBuilder::new("main");
        let body = b.block();
        b.jump(body);
        b.switch_to(body);
        b.jump(body);
        let (_, d) = decode_one(b);
        let df = &d.funcs[0];
        // [Enter b0, jump, Enter body, jump, End]
        assert_eq!(df.ops[2].code, DCode::EnterBlock);
        assert_eq!(df.ops[1].imm, 2);
        assert_eq!(df.ops[3].imm, 2);
    }

    #[test]
    fn guard_bakes_nullify_but_not_for_pred_defines() {
        use hyperpred_ir::{CmpOp, PredType};
        let mut b = FuncBuilder::new("main");
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        let x = b.mov(Operand::Imm(1));
        b.guard_last(p);
        b.pred_def(
            CmpOp::Eq,
            &[(q, PredType::U)],
            x.into(),
            Operand::Imm(0),
            Some(p),
        );
        b.ret(None);
        let (_, d) = decode_one(b);
        let mov = &d.funcs[0].ops[1];
        assert_eq!(mov.nullify, 0, "guarded mov tests p0");
        let pdef = &d.funcs[0].ops[2];
        assert_eq!(pdef.code, DCode::PdEq);
        assert_eq!(pdef.nullify, NONE, "pred defines are never nullified");
        assert_eq!(pdef.c, 0, "Pin slot is the guard");
        assert_eq!(pdef.imm, 1);
        assert_eq!(d.funcs[0].pdsts.len(), 1);
    }

    #[test]
    fn missing_dst_bakes_guard_respecting_malformed() {
        let mut b = FuncBuilder::new("main");
        let x = b.add(Operand::Imm(1), Operand::Imm(2));
        b.ret(Some(x.into()));
        let mut m = Module::new();
        let mut f = b.finish();
        f.blocks[0].insts[0].dst = None;
        m.push(f);
        m.link().unwrap();
        let d = DecodedModule::decode(&m);
        let add = &d.funcs[0].ops[1];
        assert_eq!(add.code, DCode::Malformed);
        assert_eq!(
            MALFORMED_REASONS[add.imm as usize],
            "missing destination register"
        );
    }

    #[test]
    fn matches_rejects_reshaped_modules() {
        let mut b = FuncBuilder::new("main");
        b.ret(None);
        let (mut m, d) = decode_one(b);
        assert!(d.matches(&m));
        m.funcs[0].blocks[0]
            .insts
            .push(hyperpred_ir::Inst::new(hyperpred_ir::InstId(99), Op::Nop));
        assert!(!d.matches(&m));
    }
}
