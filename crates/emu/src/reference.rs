//! The original struct-walking interpreter, kept as the executable
//! specification of emulation semantics.
//!
//! [`ReferenceEmulator`] walks [`Inst`] structs directly, matching on enum
//! payloads per fetched instruction — exactly the loop the pre-decoded
//! [`Emulator`](crate::Emulator) replaced. It is deliberately *not*
//! `#[cfg(test)]`: the differential fuzz suite in `tests/` drives random
//! programs through both interpreters and asserts identical results, trace
//! events, and error classifications, so this module must stay byte-for-
//! byte faithful to the semantics the decoded stream bakes in. Do not
//! optimize it.

use crate::decode::DCode;
use crate::emulator::{
    dst_slot, malformed, EmuContext, EmuError, Flow, RunOutcome, DEFAULT_FUEL, MAX_DEPTH,
};
use crate::memory::Memory;
use crate::trace::{Event, TraceSink};
use hyperpred_ir::{FuncId, Function, Inst, Module, Op, Operand};

/// Interprets a [`Module`] by walking instruction structs, one `match` on
/// the full [`Op`] enum per fetched instruction.
///
/// Semantically identical to [`Emulator`](crate::Emulator) on every
/// verifier-accepted module (and on most malformed ones — see
/// `decode.rs` for the documented divergences on invalid input), but
/// several times slower. Use it only as a differential-testing oracle.
#[derive(Debug)]
pub struct ReferenceEmulator<'m> {
    module: &'m Module,
    /// Simulated memory; inspect after a run for output checks.
    pub mem: Memory,
    fuel: u64,
    fetched: u64,
}

impl<'m> ReferenceEmulator<'m> {
    /// Creates a reference emulator with fresh memory for `module`.
    pub fn new(module: &'m Module) -> ReferenceEmulator<'m> {
        ReferenceEmulator {
            module,
            mem: Memory::new(module),
            fuel: DEFAULT_FUEL,
            fetched: 0,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> ReferenceEmulator<'m> {
        self.fuel = fuel;
        self
    }

    /// Runs `func(args...)`, streaming events to `sink`.
    ///
    /// # Errors
    /// Fails on memory traps, division by zero (non-speculative), fuel
    /// exhaustion, call overflow, or an unknown function name.
    pub fn run<S: TraceSink>(
        &mut self,
        func: &str,
        args: &[i64],
        sink: &mut S,
    ) -> Result<RunOutcome, EmuError> {
        let fid = self
            .module
            .func_by_name(func)
            .ok_or_else(|| EmuError::NoFunc(func.to_string()))?;
        if let Some(p) = self.mem.poison() {
            return Err(EmuError::BadGlobal(p.clone()));
        }
        self.fetched = 0;
        let flow = self.exec(fid, args, sink, 0)?;
        let ret = match flow {
            Flow::Ret(v) => v,
            Flow::Halt => 0,
        };
        Ok(RunOutcome {
            ret,
            fetched: self.fetched,
        })
    }

    fn exec<S: TraceSink>(
        &mut self,
        fid: FuncId,
        args: &[i64],
        sink: &mut S,
        depth: usize,
    ) -> Result<Flow, EmuError> {
        let module = self.module;
        let f: &Function = module.func(fid);
        debug_assert_eq!(args.len(), f.params.len(), "arity checked by verifier");
        let mut regs = vec![0i64; f.reg_count.max(1) as usize];
        let mut preds = vec![false; f.pred_count.max(1) as usize];
        for (&p, &v) in f.params.iter().zip(args) {
            regs[p.index()] = v;
        }
        let val = |regs: &[i64], s: Operand| -> i64 {
            match s {
                Operand::Reg(r) => regs[r.index()],
                Operand::Imm(v) => v,
            }
        };
        let fval = |regs: &[i64], s: Operand| -> f64 { f64::from_bits(val(regs, s) as u64) };

        let mut bpos = 0usize;
        'blocks: loop {
            let bid = f.layout[bpos];
            sink.enter_block(fid, bid);
            let insts = &f.block(bid).insts;
            let mut idx = 0usize;
            while idx < insts.len() {
                let inst: &Inst = &insts[idx];
                if self.fetched >= self.fuel {
                    return Err(EmuError::OutOfFuel {
                        ctx: EmuContext::new(&f.name, inst, self.fetched),
                        fuel: self.fuel,
                    });
                }
                if sink.aborted() {
                    return Err(EmuError::SinkAbort {
                        ctx: EmuContext::new(&f.name, inst, self.fetched),
                    });
                }
                self.fetched += 1;
                let fetched = self.fetched;

                let guard_val = inst.guard.is_none_or(|p| preds[p.index()]);
                // Predicate defines are NOT nullified by a false guard: Pin
                // is an *input* to the Table 1 truth table (a false Pin
                // still writes 0 to U-type destinations).
                let is_pdef = inst.op.is_pred_def();
                if !guard_val && !is_pdef {
                    sink.inst(&Event {
                        func: fid,
                        block: bid,
                        index: idx,
                        id: inst.id,
                        code: DCode::of(inst.op),
                        nullified: true,
                        taken: if inst.op.is_branch() {
                            Some(false)
                        } else {
                            None
                        },
                        mem_addr: None,
                    });
                    idx += 1;
                    continue;
                }

                let mut taken = None;
                let mut mem_addr = None;
                let trap = |addr: u64| EmuError::Trap {
                    ctx: EmuContext::new(&f.name, inst, fetched),
                    addr,
                };
                match inst.op {
                    Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::AndNot
                    | Op::OrNot
                    | Op::Shl
                    | Op::Shr
                    | Op::Sra => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        let r = match inst.op {
                            Op::Add => a.wrapping_add(b),
                            Op::Sub => a.wrapping_sub(b),
                            Op::Mul => a.wrapping_mul(b),
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            Op::AndNot => a & !b,
                            Op::OrNot => a | !b,
                            Op::Shl => a.wrapping_shl(b as u32 & 63),
                            Op::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                            Op::Sra => a.wrapping_shr(b as u32 & 63),
                            _ => unreachable!(),
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r;
                    }
                    Op::Div | Op::Rem => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        let r = if b == 0 {
                            if inst.speculative {
                                0
                            } else {
                                return Err(EmuError::DivByZero {
                                    ctx: EmuContext::new(&f.name, inst, fetched),
                                });
                            }
                        } else if inst.op == Op::Div {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r;
                    }
                    Op::Cmp(c) => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = c.eval(a, b) as i64;
                    }
                    Op::Mov => {
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = val(&regs, inst.srcs[0]);
                    }
                    Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
                        let a = fval(&regs, inst.srcs[0]);
                        let b = fval(&regs, inst.srcs[1]);
                        if inst.op == Op::FDiv && b == 0.0 && !inst.speculative {
                            return Err(EmuError::DivByZero {
                                ctx: EmuContext::new(&f.name, inst, fetched),
                            });
                        }
                        let r = match inst.op {
                            Op::FAdd => a + b,
                            Op::FSub => a - b,
                            Op::FMul => a * b,
                            Op::FDiv => {
                                if b == 0.0 {
                                    0.0
                                } else {
                                    a / b
                                }
                            }
                            _ => unreachable!(),
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r.to_bits() as i64;
                    }
                    Op::FCmp(c) => {
                        let a = fval(&regs, inst.srcs[0]);
                        let b = fval(&regs, inst.srcs[1]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = c.eval_f(a, b) as i64;
                    }
                    Op::IToF => {
                        let a = val(&regs, inst.srcs[0]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = (a as f64).to_bits() as i64;
                    }
                    Op::FToI => {
                        let a = fval(&regs, inst.srcs[0]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = a as i64;
                    }
                    Op::Ld(w) => {
                        let addr = (val(&regs, inst.srcs[0]).wrapping_add(val(&regs, inst.srcs[1])))
                            as u64;
                        mem_addr = Some(addr);
                        let v = self
                            .mem
                            .load(addr, w, inst.speculative)
                            .map_err(|t| trap(t.addr))?;
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = v;
                    }
                    Op::St(w) => {
                        let addr = (val(&regs, inst.srcs[0]).wrapping_add(val(&regs, inst.srcs[1])))
                            as u64;
                        mem_addr = Some(addr);
                        let v = val(&regs, inst.srcs[2]);
                        self.mem
                            .store(addr, w, v, inst.speculative)
                            .map_err(|t| trap(t.addr))?;
                    }
                    Op::Br(c) => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        taken = Some(c.eval(a, b));
                    }
                    Op::Jump => {
                        taken = Some(true);
                    }
                    Op::Call => {
                        let callee = inst
                            .callee
                            .ok_or_else(|| malformed(&f.name, inst, fetched, "unlinked call"))?;
                        if depth + 1 >= MAX_DEPTH {
                            return Err(EmuError::CallDepth {
                                ctx: EmuContext::new(&f.name, inst, fetched),
                            });
                        }
                        let argv: Vec<i64> = inst.srcs.iter().map(|&s| val(&regs, s)).collect();
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            id: inst.id,
                            code: DCode::of(inst.op),
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        match self.exec(callee, &argv, sink, depth + 1)? {
                            Flow::Ret(v) => *dst_slot(&mut regs, &f.name, inst, fetched)? = v,
                            Flow::Halt => return Ok(Flow::Halt),
                        }
                        // Re-establish block context for the trace consumer:
                        // the callee's events interleaved; the sim treats a
                        // call as a block boundary.
                        sink.enter_block(fid, bid);
                        idx += 1;
                        continue;
                    }
                    Op::Ret => {
                        let v = inst.srcs.first().map_or(0, |&s| val(&regs, s));
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            id: inst.id,
                            code: DCode::of(inst.op),
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        return Ok(Flow::Ret(v));
                    }
                    Op::Halt => {
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            id: inst.id,
                            code: DCode::of(inst.op),
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        return Ok(Flow::Halt);
                    }
                    Op::PredDef(c) | Op::FPredDef(c) => {
                        let cmp = match inst.op {
                            Op::PredDef(_) => {
                                let a = val(&regs, inst.srcs[0]);
                                let b = val(&regs, inst.srcs[1]);
                                c.eval(a, b)
                            }
                            _ => {
                                let a = fval(&regs, inst.srcs[0]);
                                let b = fval(&regs, inst.srcs[1]);
                                c.eval_f(a, b)
                            }
                        };
                        for pd in &inst.pdsts {
                            let old = preds[pd.reg.index()];
                            preds[pd.reg.index()] = pd.ty.eval(guard_val, cmp, old);
                        }
                    }
                    Op::PredClear => preds.fill(false),
                    Op::PredSet => preds.fill(true),
                    Op::Cmov | Op::CmovCom => {
                        let v = val(&regs, inst.srcs[0]);
                        let cond = val(&regs, inst.srcs[1]) != 0;
                        let fire = if inst.op == Op::Cmov { cond } else { !cond };
                        if fire {
                            *dst_slot(&mut regs, &f.name, inst, fetched)? = v;
                        }
                    }
                    Op::Select => {
                        let t = val(&regs, inst.srcs[0]);
                        let e = val(&regs, inst.srcs[1]);
                        let cond = val(&regs, inst.srcs[2]) != 0;
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = if cond { t } else { e };
                    }
                    Op::Nop => {}
                }

                sink.inst(&Event {
                    func: fid,
                    block: bid,
                    index: idx,
                    id: inst.id,
                    code: DCode::of(inst.op),
                    nullified: false,
                    taken,
                    mem_addr,
                });

                if is_pdef || matches!(inst.op, Op::PredClear | Op::PredSet) {
                    sink.pred_write(fid, bid, idx, &preds);
                }

                if taken == Some(true) {
                    let t = inst.target.ok_or_else(|| {
                        malformed(&f.name, inst, fetched, "branch without target")
                    })?;
                    bpos = f.layout_pos(t).ok_or_else(|| {
                        malformed(&f.name, inst, fetched, "branch target not in layout")
                    })?;
                    continue 'blocks;
                }
                idx += 1;
            }
            // Fall through to the next block in layout.
            bpos += 1;
            if bpos >= f.layout.len() {
                // The verifier rejects functions whose last block can fall
                // through; error instead of indexing out of bounds.
                return Err(EmuError::Malformed {
                    ctx: EmuContext::new(&f.name, "<end of function>", self.fetched),
                    reason: "control fell off the end of the function",
                });
            }
        }
    }
}
