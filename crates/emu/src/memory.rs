//! Simulated byte-addressable memory.

use hyperpred_ir::module::{MEM_SIZE, NULL_GUARD, SAFE_ADDR};
use hyperpred_ir::{MemWidth, Module};
use std::fmt;

/// A memory access violation (non-speculative access outside the valid
/// range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// The offending address.
    pub addr: u64,
}

/// A named-global access that cannot be satisfied: the global does not
/// exist, or its initializer or the requested range does not fit the
/// simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalError {
    /// The global's name.
    pub name: String,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for GlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "global `{}`: {}", self.name, self.detail)
    }
}

impl std::error::Error for GlobalError {}

/// Flat simulated memory, preloaded with a module's data segment.
///
/// The address space is `0..MEM_SIZE`. Addresses below
/// [`NULL_GUARD`] trap on non-speculative
/// access (a null-pointer guard page), with the single exception of
/// [`SAFE_ADDR`] — the scratch word that
/// nullified stores are redirected to by the partial-predication store
/// conversion.
///
/// *Silent* (speculative) accesses never trap: a silent load of an invalid
/// address produces 0 and a silent store to one is ignored, matching the
/// paper's non-excepting instruction semantics.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// The first global whose initializer did not fit the address space,
    /// if any. Construction stays infallible — emulators check this at the
    /// start of a run and surface it as a typed error instead of the
    /// historical slice panic.
    poison: Option<GlobalError>,
}

impl Memory {
    /// Creates memory for `module`, copying every global's initializer.
    ///
    /// Modules built through [`Module::add_global`] always fit; a
    /// hand-built global whose initializer falls outside the address
    /// space is skipped and recorded as [`Memory::poison`].
    pub fn new(module: &Module) -> Memory {
        let mut bytes = vec![0u8; MEM_SIZE as usize];
        let mut poison = None;
        for g in &module.globals {
            let end = g.addr.checked_add(g.init.len() as u64);
            match end {
                Some(end) if end <= MEM_SIZE => {
                    let start = g.addr as usize;
                    bytes[start..start + g.init.len()].copy_from_slice(&g.init);
                }
                _ => {
                    if poison.is_none() {
                        poison = Some(GlobalError {
                            name: g.name.clone(),
                            detail: format!(
                                "initializer of {} bytes at {:#x} falls outside memory \
                                 of {MEM_SIZE:#x} bytes",
                                g.init.len(),
                                g.addr
                            ),
                        });
                    }
                }
            }
        }
        Memory { bytes, poison }
    }

    /// The first malformed global encountered at construction, if any.
    pub fn poison(&self) -> Option<&GlobalError> {
        self.poison.as_ref()
    }

    #[inline]
    fn valid(addr: u64, size: u64) -> bool {
        (addr >= NULL_GUARD || addr == SAFE_ADDR) && addr.saturating_add(size) <= MEM_SIZE
    }

    /// Loads a value of width `w` from `addr`.
    ///
    /// # Errors
    /// Returns a [`Trap`] for invalid addresses unless `silent`.
    pub fn load(&self, addr: u64, w: MemWidth, silent: bool) -> Result<i64, Trap> {
        if !Memory::valid(addr, w.bytes()) {
            return if silent { Ok(0) } else { Err(Trap { addr }) };
        }
        let a = addr as usize;
        Ok(match w {
            MemWidth::Byte => self.bytes[a] as i64,
            MemWidth::Word => {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&self.bytes[a..a + 8]);
                i64::from_le_bytes(buf)
            }
        })
    }

    /// Stores `value` (truncated to width `w`) at `addr`.
    ///
    /// # Errors
    /// Returns a [`Trap`] for invalid addresses unless `silent`.
    pub fn store(&mut self, addr: u64, w: MemWidth, value: i64, silent: bool) -> Result<(), Trap> {
        if !Memory::valid(addr, w.bytes()) {
            return if silent { Ok(()) } else { Err(Trap { addr }) };
        }
        let a = addr as usize;
        match w {
            MemWidth::Byte => self.bytes[a] = value as u8,
            MemWidth::Word => self.bytes[a..a + 8].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Looks up `name` and bounds-checks an access of `len` bytes.
    fn global_range(
        &self,
        module: &Module,
        name: &str,
        len: u64,
        what: &str,
    ) -> Result<usize, GlobalError> {
        let g = module.global(name).ok_or_else(|| GlobalError {
            name: name.to_string(),
            detail: "no such global".to_string(),
        })?;
        if len > g.size || g.addr.checked_add(len).is_none_or(|end| end > MEM_SIZE) {
            return Err(GlobalError {
                name: name.to_string(),
                detail: format!("{what} of {len} bytes exceeds its {} bytes", g.size),
            });
        }
        Ok(g.addr as usize)
    }

    /// Copies `data` into the global named `name`.
    ///
    /// # Errors
    /// Returns a [`GlobalError`] if the global does not exist or `data`
    /// exceeds its size.
    pub fn write_global(
        &mut self,
        module: &Module,
        name: &str,
        data: &[u8],
    ) -> Result<(), GlobalError> {
        let start = self.global_range(module, name, data.len() as u64, "write")?;
        self.bytes[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at the global named `name`.
    ///
    /// # Errors
    /// Returns a [`GlobalError`] if the global does not exist or the read
    /// exceeds its size.
    pub fn read_global<'a>(
        &'a self,
        module: &Module,
        name: &str,
        len: u64,
    ) -> Result<&'a [u8], GlobalError> {
        let start = self.global_range(module, name, len, "read")?;
        Ok(&self.bytes[start..start + len as usize])
    }

    /// Raw view of a byte range (for checksumming in tests).
    pub fn slice(&self, addr: u64, len: u64) -> &[u8] {
        &self.bytes[addr as usize..(addr + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (Module, Memory) {
        let mut m = Module::new();
        m.add_global("g", 16, vec![1, 2, 3, 4]);
        let mem = Memory::new(&m);
        (m, mem)
    }

    #[test]
    fn globals_are_preloaded() {
        let (m, mem) = mem();
        let addr = m.global("g").unwrap().addr;
        assert_eq!(mem.load(addr, MemWidth::Byte, false), Ok(1));
        assert_eq!(mem.load(addr + 3, MemWidth::Byte, false), Ok(4));
        assert_eq!(mem.load(addr + 4, MemWidth::Byte, false), Ok(0));
    }

    #[test]
    fn word_round_trip() {
        let (m, mut mem) = mem();
        let addr = m.global("g").unwrap().addr;
        mem.store(addr + 8, MemWidth::Word, -12345, false).unwrap();
        assert_eq!(mem.load(addr + 8, MemWidth::Word, false), Ok(-12345));
    }

    #[test]
    fn byte_load_zero_extends() {
        let (m, mut mem) = mem();
        let addr = m.global("g").unwrap().addr;
        mem.store(addr, MemWidth::Byte, -1, false).unwrap();
        assert_eq!(mem.load(addr, MemWidth::Byte, false), Ok(255));
    }

    #[test]
    fn null_page_traps_non_speculative() {
        let (_m, mem) = mem();
        assert_eq!(mem.load(0, MemWidth::Word, false), Err(Trap { addr: 0 }));
        assert_eq!(mem.load(0, MemWidth::Word, true), Ok(0));
    }

    #[test]
    fn safe_addr_is_always_writable() {
        let (_m, mut mem) = mem();
        assert!(mem.store(SAFE_ADDR, MemWidth::Word, 7, false).is_ok());
        assert_eq!(mem.load(SAFE_ADDR, MemWidth::Word, false), Ok(7));
    }

    #[test]
    fn out_of_range_traps() {
        let (_m, mut mem) = mem();
        assert!(mem.load(MEM_SIZE, MemWidth::Byte, false).is_err());
        assert!(mem.store(MEM_SIZE - 4, MemWidth::Word, 1, false).is_err());
        assert!(mem.store(MEM_SIZE - 4, MemWidth::Word, 1, true).is_ok());
    }

    #[test]
    fn write_and_read_global() {
        let (m, mut mem) = mem();
        mem.write_global(&m, "g", &[9, 9]).unwrap();
        assert_eq!(mem.read_global(&m, "g", 3).unwrap(), &[9, 9, 3]);
    }

    #[test]
    fn global_access_errors_are_typed() {
        let (m, mut mem) = mem();
        let missing = mem.write_global(&m, "nope", &[1]).unwrap_err();
        assert_eq!(missing.name, "nope");
        let too_big = mem.read_global(&m, "g", 17).unwrap_err();
        assert!(too_big.detail.contains("exceeds"), "{too_big}");
        assert!(mem.write_global(&m, "g", &[0; 17]).is_err());
    }

    #[test]
    fn out_of_range_initializer_poisons_instead_of_panicking() {
        let mut m = Module::new();
        m.add_global("ok", 8, vec![1]);
        // Hand-built global that bypasses `add_global`'s bounds check.
        m.globals.push(hyperpred_ir::module::Global {
            name: "huge".to_string(),
            addr: MEM_SIZE - 4,
            size: 16,
            init: vec![0xAA; 16],
        });
        let mem = Memory::new(&m);
        let p = mem.poison().expect("bad global must poison the memory");
        assert_eq!(p.name, "huge");
        // The well-formed global is still loaded.
        let addr = m.global("ok").unwrap().addr;
        assert_eq!(mem.load(addr, MemWidth::Byte, false), Ok(1));
    }
}
