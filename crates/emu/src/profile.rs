//! Execution profiling for region formation.

use crate::trace::{Event, TraceSink};
use hyperpred_ir::{BlockId, FuncId, Function, InstId, Op};
use std::collections::HashMap;

/// Taken / not-taken counts of one static branch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BranchStat {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times the branch fell through (nullified branches count here).
    pub not_taken: u64,
}

impl BranchStat {
    /// Total executions.
    pub fn total(self) -> u64 {
        self.taken + self.not_taken
    }

    /// Taken probability (0 when never executed).
    pub fn taken_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.taken as f64 / self.total() as f64
        }
    }
}

/// A profile: block entry counts and branch direction counts.
///
/// Profiles are keyed by [`InstId`] for branches, so they remain valid only
/// for the exact IR they were measured on — formation passes consume the
/// profile immediately after measuring it, matching the paper's
/// profile-guided compilation flow.
///
/// Counts live in dense per-function tables (`table[func][index]`), grown
/// on first touch, so the per-event sink methods index instead of hashing
/// — the profiling emulation run is part of every compile's hot path.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    /// Entry count per (function, block): `blocks[func][block]`.
    blocks: Vec<Vec<u64>>,
    /// Direction counts per (function, branch instruction id).
    branches: Vec<Vec<BranchStat>>,
}

/// Dense-table slot access, growing the table to cover `(f, i)`.
#[inline]
fn grown<T: Clone + Default>(table: &mut Vec<Vec<T>>, f: usize, i: usize) -> &mut T {
    if table.len() <= f {
        table.resize_with(f + 1, Vec::new);
    }
    let row = &mut table[f];
    if row.len() <= i {
        row.resize(i + 1, T::default());
    }
    &mut row[i]
}

impl Profiler {
    /// Creates an empty profile.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Entry count of `block` in `func`.
    pub fn block_count(&self, func: FuncId, block: BlockId) -> u64 {
        self.blocks
            .get(func.0 as usize)
            .and_then(|row| row.get(block.0 as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Direction stats of the branch `inst` in `func`.
    pub fn branch(&self, func: FuncId, inst: InstId) -> BranchStat {
        self.branches
            .get(func.0 as usize)
            .and_then(|row| row.get(inst.0 as usize))
            .copied()
            .unwrap_or_default()
    }

    /// Computes edge execution counts for a function whose blocks are basic
    /// (single terminator at the end). The result maps `(from, to)` to the
    /// number of traversals.
    ///
    /// # Panics
    /// Debug-asserts the function is in basic-block form.
    pub fn edge_counts(&self, fid: FuncId, f: &Function) -> HashMap<(BlockId, BlockId), u64> {
        debug_assert!(f.is_basic(), "edge_counts requires basic blocks");
        let mut edges = HashMap::new();
        for &b in &f.layout {
            let count = self.block_count(fid, b);
            let block = f.block(b);
            let n = block.insts.len();
            // Double terminator [Br, Jump]: the jump carries the not-taken
            // flow of the conditional branch.
            if n >= 2 && matches!(block.insts[n - 2].op, Op::Br(_)) {
                let br = &block.insts[n - 2];
                let stat = self.branch(fid, br.id);
                if let Some(tgt) = br.target {
                    *edges.entry((b, tgt)).or_insert(0) += stat.taken;
                }
                let ender = &block.insts[n - 1];
                if ender.op == Op::Jump {
                    if let Some(tgt) = ender.target {
                        *edges.entry((b, tgt)).or_insert(0) += stat.not_taken;
                    }
                }
                continue;
            }
            match block.last() {
                Some(t) if t.op.is_branch() => {
                    let stat = self.branch(fid, t.id);
                    if let Some(tgt) = t.target {
                        *edges.entry((b, tgt)).or_insert(0) += stat.taken;
                    }
                    if t.op != Op::Jump {
                        if let Some(next) = f.layout_next(b) {
                            *edges.entry((b, next)).or_insert(0) += stat.not_taken;
                        }
                    }
                }
                Some(t) if t.op.ends_block() => {} // ret/halt
                _ => {
                    // Fall-through block.
                    if let Some(next) = f.layout_next(b) {
                        *edges.entry((b, next)).or_insert(0) += count;
                    }
                }
            }
        }
        edges
    }
}

impl TraceSink for Profiler {
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        *grown(&mut self.blocks, func.0 as usize, block.0 as usize) += 1;
    }

    fn inst(&mut self, ev: &Event) {
        if let Some(taken) = ev.taken {
            let stat = grown(&mut self.branches, ev.func.0 as usize, ev.id.0 as usize);
            if taken {
                stat.taken += 1;
            } else {
                stat.not_taken += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use hyperpred_ir::{CmpOp, FuncBuilder, Module, Operand};

    /// main(n): loop i in 0..n { if i % 3 == 0 { } else { } }
    fn looped_module() -> Module {
        let mut b = FuncBuilder::new("main");
        let n = b.param();
        let body = b.block();
        let then = b.block();
        let join = b.block();
        let done = b.block();
        let i = b.mov(Operand::Imm(0));
        b.jump(body);
        b.switch_to(body);
        let r = b.op2(hyperpred_ir::Op::Rem, i.into(), Operand::Imm(3));
        b.br(CmpOp::Eq, r.into(), Operand::Imm(0), then);
        // fall: else path
        b.jump(join);
        b.switch_to(then);
        b.jump(join);
        b.switch_to(join);
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn block_counts_and_branch_ratios() {
        let m = looped_module();
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(&m);
        emu.run("main", &[9], &mut prof).unwrap();
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid);
        // body executes 9 times
        assert_eq!(prof.block_count(fid, f.layout[1]), 9);
        // then-block executes for i = 0,3,6 → 3 times
        assert_eq!(prof.block_count(fid, f.layout[2]), 3);
        // backedge branch: taken 8 of 9
        let back = f
            .block(f.layout[3])
            .insts
            .iter()
            .find(|i| i.op.is_branch())
            .unwrap();
        let stat = prof.branch(fid, back.id);
        assert!((stat.taken_ratio() - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn edge_counts_are_consistent_with_blocks() {
        let m = looped_module();
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(&m);
        emu.run("main", &[9], &mut prof).unwrap();
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid);
        let edges = prof.edge_counts(fid, f);
        // Inflow to each non-entry block equals its entry count.
        for &b in f.layout.iter().skip(1) {
            let inflow: u64 = edges
                .iter()
                .filter(|((_, to), _)| *to == b)
                .map(|(_, &c)| c)
                .sum();
            assert_eq!(inflow, prof.block_count(fid, b), "block {b}");
        }
    }
}
