//! Trace events and sinks.

use crate::decode::DCode;
use hyperpred_ir::{BlockId, FuncId, InstId};

/// One dynamic instruction instance, delivered to a [`TraceSink`].
///
/// Every *fetched* instruction produces an event, including nullified
/// predicated instructions: the paper's dynamic instruction counts (Table 2)
/// count fetched instructions since they consume fetch and issue resources.
///
/// Events carry the decoded opcode and the instruction's stable id — plain
/// values, not an `&Inst` — so delivering one costs no loads from the IR
/// structs. Sinks that need static fields beyond the opcode (latency
/// classes, operand lists) index their own pre-baked tables by
/// `(block, index)` or by `id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Function being executed.
    pub func: FuncId,
    /// Block within the function.
    pub block: BlockId,
    /// Index of the instruction within the block.
    pub index: usize,
    /// Stable id of the static instruction.
    pub id: InstId,
    /// Decoded opcode ([`DCode::Malformed`] for structurally invalid
    /// instructions, which only ever reach a sink nullified).
    pub code: DCode,
    /// True when the guard predicate evaluated false (instruction fetched
    /// but suppressed).
    pub nullified: bool,
    /// Branch outcome: `Some(true)` taken, `Some(false)` fall-through.
    /// `None` for non-branches. A nullified branch reports `Some(false)`.
    pub taken: Option<bool>,
    /// Effective address of an executed load or store.
    pub mem_addr: Option<u64>,
}

/// Observer of the dynamic instruction stream.
///
/// The emulator invokes [`TraceSink::enter_block`] each time control enters
/// a block (including re-entry via a loop back edge) and [`TraceSink::inst`]
/// for every fetched instruction, in fetch order.
pub trait TraceSink {
    /// Control entered `block` of `func`.
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        let _ = (func, block);
    }

    /// An instruction was fetched (and executed unless `ev.nullified`).
    fn inst(&mut self, ev: &Event) {
        let _ = ev;
    }

    /// The predicate file just changed: a predicate define, `pred_clear`,
    /// or `pred_set` executed (pred defines always execute — a false
    /// guard is the Table 1 Pin input, not nullification). Delivered
    /// right after the instruction's [`TraceSink::inst`] event; `preds[i]`
    /// is the post-write value of predicate register `i`. Default no-op,
    /// so sinks that don't audit predicates pay only a dead branch.
    fn pred_write(&mut self, func: FuncId, block: BlockId, index: usize, preds: &[bool]) {
        let _ = (func, block, index, preds);
    }

    /// Whether this sink wants [`TraceSink::pred_write`] events at all.
    /// The emulators hoist this answer out of the fetch loop, so a
    /// non-auditing sink (the common case — stats, recording, null)
    /// pays nothing per instruction; the generic `run` specializes the
    /// constant `false` away entirely.
    fn audits_preds(&self) -> bool {
        false
    }

    /// Asks the emulator to stop the run. Checked once per fetched
    /// instruction; when it returns `true` the emulator returns
    /// [`EmuError::SinkAbort`](crate::EmuError::SinkAbort). Watchdog sinks
    /// (e.g. the timing simulator's cycle budget) override this so a
    /// pathological program cannot hang a worker forever.
    fn aborted(&self) -> bool {
        false
    }
}

/// A sink that ignores everything (pure functional execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Aggregate dynamic-execution statistics (paper Tables 2 and 3 inputs).
#[derive(Debug, Default, Clone)]
pub struct DynStats {
    /// Fetched instructions (includes nullified predicated instructions).
    pub insts: u64,
    /// Instructions suppressed by a false guard.
    pub nullified: u64,
    /// Dynamic branches (conditional + unconditional).
    pub branches: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Taken branches.
    pub taken: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Predicate define instructions fetched.
    pub pred_defs: u64,
    /// Conditional move / select instructions fetched.
    pub cmovs: u64,
    /// Block entries: `block_entries[func][block]`, dense per-function
    /// rows grown on first touch (no per-event hashing).
    block_entries: Vec<Vec<u64>>,
}

impl DynStats {
    /// Creates an empty counter set.
    pub fn new() -> DynStats {
        DynStats::default()
    }

    /// Times control entered `block` of `func`.
    pub fn block_entries(&self, func: FuncId, block: BlockId) -> u64 {
        self.block_entries
            .get(func.0 as usize)
            .and_then(|row| row.get(block.0 as usize))
            .copied()
            .unwrap_or(0)
    }
}

impl TraceSink for DynStats {
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        let (f, b) = (func.0 as usize, block.0 as usize);
        if self.block_entries.len() <= f {
            self.block_entries.resize_with(f + 1, Vec::new);
        }
        let row = &mut self.block_entries[f];
        if row.len() <= b {
            row.resize(b + 1, 0);
        }
        row[b] += 1;
    }

    fn inst(&mut self, ev: &Event) {
        self.insts += 1;
        if ev.nullified {
            self.nullified += 1;
        }
        match ev.code {
            DCode::BrEq | DCode::BrNe | DCode::BrLt | DCode::BrLe | DCode::BrGt | DCode::BrGe => {
                self.branches += 1;
                self.cond_branches += 1;
            }
            DCode::Jump => self.branches += 1,
            DCode::LdByte | DCode::LdWord if !ev.nullified => self.loads += 1,
            DCode::StByte | DCode::StWord if !ev.nullified => self.stores += 1,
            DCode::PdEq
            | DCode::PdNe
            | DCode::PdLt
            | DCode::PdLe
            | DCode::PdGt
            | DCode::PdGe
            | DCode::FPdEq
            | DCode::FPdNe
            | DCode::FPdLt
            | DCode::FPdLe
            | DCode::FPdGt
            | DCode::FPdGe => self.pred_defs += 1,
            DCode::Cmov | DCode::CmovCom | DCode::Select => self.cmovs += 1,
            _ => {}
        }
        if ev.taken == Some(true) {
            self.taken += 1;
        }
    }
}

/// Fans one trace out to two sinks.
#[derive(Debug)]
pub struct Tee<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<'a, A: TraceSink, B: TraceSink> Tee<'a, A, B> {
    /// Combines two sinks.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        self.a.enter_block(func, block);
        self.b.enter_block(func, block);
    }

    fn inst(&mut self, ev: &Event) {
        self.a.inst(ev);
        self.b.inst(ev);
    }

    fn pred_write(&mut self, func: FuncId, block: BlockId, index: usize, preds: &[bool]) {
        self.a.pred_write(func, block, index, preds);
        self.b.pred_write(func, block, index, preds);
    }

    fn audits_preds(&self) -> bool {
        self.a.audits_preds() || self.b.audits_preds()
    }

    fn aborted(&self) -> bool {
        self.a.aborted() || self.b.aborted()
    }
}
