//! Functional emulator for the predicated IR.
//!
//! This crate implements the *emulation* half of the paper's
//! emulation-driven simulation methodology (§4.1): compiled code for any of
//! the three models (superblock / conditional move / full predication) is
//! executed directly at the IR level, both to guarantee the transformed code
//! is still correct and to generate the dynamic trace — branch directions,
//! memory addresses and predicate values — consumed by the timing simulator
//! in `hyperpred-sim`.
//!
//! The paper emulated predicates with PA-RISC bit-manipulation sequences
//! (their Fig. 7); here the emulator interprets predicate semantics natively
//! and exactly (the Table 1 truth table), which produces an equivalent
//! trace.
//!
//! Execution is *pre-decoded*: [`DecodedModule::decode`] translates each
//! function once into a flat stream of fixed-width ops (dense opcodes,
//! operand slots, baked guards and branch targets), and [`Emulator::run`]
//! dispatches directly over that stream. The original struct-walking
//! interpreter survives as [`ReferenceEmulator`], the oracle for the
//! differential fuzz suite.
//!
//! Main entry points:
//!
//! * [`Emulator::run`] — execute a module's function with a [`TraceSink`].
//! * [`DecodedModule`] — the cacheable pre-decoded form; share one per
//!   compiled module via [`Emulator::with_decoded`].
//! * [`Profiler`] — a sink recording block and branch-direction profiles
//!   used by superblock/hyperblock formation.
//! * [`DynStats`] — a sink computing the paper's dynamic instruction and
//!   branch counts (Tables 2 and 3 inputs).

pub mod decode;
pub mod emulator;
pub mod memory;
pub mod profile;
pub mod reference;
pub mod trace;

pub use decode::{DecodedFunc, DecodedModule};
pub use emulator::{EmuContext, EmuError, Emulator, RunOutcome, DEFAULT_FUEL, MAX_DEPTH};
pub use memory::{GlobalError, Memory};
pub use profile::{BranchStat, Profiler};
pub use reference::ReferenceEmulator;
pub use trace::{DynStats, Event, NullSink, Tee, TraceSink};
