//! The IR interpreter.

use crate::memory::Memory;
use crate::trace::{Event, TraceSink};
use hyperpred_ir::{FuncId, Function, Inst, Module, Op, Operand};
use std::error::Error;
use std::fmt;

/// Default instruction budget; guards against non-terminating test inputs.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;
/// Maximum call depth.
pub const MAX_DEPTH: usize = 8192;

/// Where an [`EmuError`] happened: enough context to reproduce the trap
/// from a failure-report line alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuContext {
    /// The executing function's name.
    pub func: String,
    /// Rendered current instruction.
    pub inst: String,
    /// Instructions fetched before the failure (this run).
    pub fetched: u64,
}

impl EmuContext {
    fn new(func: &str, inst: impl ToString, fetched: u64) -> EmuContext {
        EmuContext {
            func: func.to_string(),
            inst: inst.to_string(),
            fetched,
        }
    }
}

impl fmt::Display for EmuContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in {} after {} fetched insts, at `{}`",
            self.func, self.fetched, self.inst
        )
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Non-speculative memory access to an invalid address.
    Trap {
        /// Where it happened.
        ctx: EmuContext,
        /// The bad address.
        addr: u64,
    },
    /// Non-speculative integer or float division by zero.
    DivByZero {
        /// Where it happened.
        ctx: EmuContext,
    },
    /// The instruction budget was exhausted.
    OutOfFuel {
        /// Where it happened.
        ctx: EmuContext,
        /// The budget that ran out.
        fuel: u64,
    },
    /// Call stack exceeded [`MAX_DEPTH`].
    CallDepth {
        /// Where it happened (the `call` instruction).
        ctx: EmuContext,
    },
    /// Structurally invalid instruction reached the interpreter (the
    /// verifier should reject these; this is the typed backstop so a bad
    /// module errors instead of panicking a worker).
    Malformed {
        /// Where it happened.
        ctx: EmuContext,
        /// What was wrong.
        reason: &'static str,
    },
    /// The trace sink asked the run to stop (see
    /// [`TraceSink::aborted`](crate::TraceSink::aborted)); used by cycle
    /// watchdogs in the timing simulator.
    SinkAbort {
        /// Where it happened.
        ctx: EmuContext,
    },
    /// The requested entry function does not exist.
    NoFunc(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Trap { ctx, addr } => {
                write!(f, "memory trap at {addr:#x} {ctx}")
            }
            EmuError::DivByZero { ctx } => {
                write!(f, "division by zero {ctx}")
            }
            EmuError::OutOfFuel { ctx, fuel } => {
                write!(f, "instruction budget of {fuel} exhausted {ctx}")
            }
            EmuError::CallDepth { ctx } => {
                write!(f, "call stack overflow (depth {MAX_DEPTH}) {ctx}")
            }
            EmuError::Malformed { ctx, reason } => {
                write!(f, "malformed instruction ({reason}) {ctx}")
            }
            EmuError::SinkAbort { ctx } => {
                write!(f, "trace sink aborted the run {ctx}")
            }
            EmuError::NoFunc(n) => write!(f, "no function named {n}"),
        }
    }
}

impl Error for EmuError {}

/// Builds a [`EmuError::Malformed`] for the current instruction.
fn malformed(func: &str, inst: &Inst, fetched: u64, reason: &'static str) -> EmuError {
    EmuError::Malformed {
        ctx: EmuContext::new(func, inst, fetched),
        reason,
    }
}

/// Checked destination-register slot: a missing or out-of-range `dst` is a
/// typed error, not an `unwrap` panic.
fn dst_slot<'r>(
    regs: &'r mut [i64],
    func: &str,
    inst: &Inst,
    fetched: u64,
) -> Result<&'r mut i64, EmuError> {
    let d = inst
        .dst
        .ok_or_else(|| malformed(func, inst, fetched, "missing destination register"))?;
    regs.get_mut(d.index())
        .ok_or_else(|| malformed(func, inst, fetched, "destination register out of range"))
}

/// Result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Value returned by the entry function (0 if it returned none).
    pub ret: i64,
    /// Total fetched instructions.
    pub fetched: u64,
}

enum Flow {
    Ret(i64),
    Halt,
}

/// Interprets a [`Module`], streaming the dynamic trace to a
/// [`TraceSink`].
///
/// # Example
///
/// ```
/// use hyperpred_ir::{FuncBuilder, Module, Operand};
/// use hyperpred_emu::{Emulator, NullSink};
///
/// let mut module = Module::new();
/// let mut b = FuncBuilder::new("main");
/// let x = b.param();
/// let y = b.add(x.into(), Operand::Imm(5));
/// b.ret(Some(y.into()));
/// module.push(b.finish());
/// module.link().unwrap();
///
/// let mut emu = Emulator::new(&module);
/// let out = emu.run("main", &[37], &mut NullSink).unwrap();
/// assert_eq!(out.ret, 42);
/// ```
#[derive(Debug)]
pub struct Emulator<'m> {
    module: &'m Module,
    /// Simulated memory; inspect after a run for output checks.
    pub mem: Memory,
    fuel: u64,
    fetched: u64,
}

impl<'m> Emulator<'m> {
    /// Creates an emulator with fresh memory for `module`.
    pub fn new(module: &'m Module) -> Emulator<'m> {
        Emulator {
            module,
            mem: Memory::new(module),
            fuel: DEFAULT_FUEL,
            fetched: 0,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Emulator<'m> {
        self.fuel = fuel;
        self
    }

    /// Runs `func(args...)`, streaming events to `sink`.
    ///
    /// # Errors
    /// Fails on memory traps, division by zero (non-speculative), fuel
    /// exhaustion, call overflow, or an unknown function name.
    pub fn run<S: TraceSink>(
        &mut self,
        func: &str,
        args: &[i64],
        sink: &mut S,
    ) -> Result<RunOutcome, EmuError> {
        let fid = self
            .module
            .func_by_name(func)
            .ok_or_else(|| EmuError::NoFunc(func.to_string()))?;
        self.fetched = 0;
        let flow = self.exec(fid, args, sink, 0)?;
        let ret = match flow {
            Flow::Ret(v) => v,
            Flow::Halt => 0,
        };
        Ok(RunOutcome {
            ret,
            fetched: self.fetched,
        })
    }

    fn exec<S: TraceSink>(
        &mut self,
        fid: FuncId,
        args: &[i64],
        sink: &mut S,
        depth: usize,
    ) -> Result<Flow, EmuError> {
        let module = self.module;
        let f: &Function = module.func(fid);
        debug_assert_eq!(args.len(), f.params.len(), "arity checked by verifier");
        let mut regs = vec![0i64; f.reg_count.max(1) as usize];
        let mut preds = vec![false; f.pred_count.max(1) as usize];
        for (&p, &v) in f.params.iter().zip(args) {
            regs[p.index()] = v;
        }
        let val = |regs: &[i64], s: Operand| -> i64 {
            match s {
                Operand::Reg(r) => regs[r.index()],
                Operand::Imm(v) => v,
            }
        };
        let fval = |regs: &[i64], s: Operand| -> f64 { f64::from_bits(val(regs, s) as u64) };

        let mut bpos = 0usize;
        'blocks: loop {
            let bid = f.layout[bpos];
            sink.enter_block(fid, bid);
            let insts = &f.block(bid).insts;
            let mut idx = 0usize;
            while idx < insts.len() {
                let inst: &Inst = &insts[idx];
                if self.fetched >= self.fuel {
                    return Err(EmuError::OutOfFuel {
                        ctx: EmuContext::new(&f.name, inst, self.fetched),
                        fuel: self.fuel,
                    });
                }
                if sink.aborted() {
                    return Err(EmuError::SinkAbort {
                        ctx: EmuContext::new(&f.name, inst, self.fetched),
                    });
                }
                self.fetched += 1;
                let fetched = self.fetched;

                let guard_val = inst.guard.is_none_or(|p| preds[p.index()]);
                // Predicate defines are NOT nullified by a false guard: Pin
                // is an *input* to the Table 1 truth table (a false Pin
                // still writes 0 to U-type destinations).
                let is_pdef = inst.op.is_pred_def();
                if !guard_val && !is_pdef {
                    sink.inst(&Event {
                        func: fid,
                        block: bid,
                        index: idx,
                        inst,
                        nullified: true,
                        taken: if inst.op.is_branch() {
                            Some(false)
                        } else {
                            None
                        },
                        mem_addr: None,
                    });
                    idx += 1;
                    continue;
                }

                let mut taken = None;
                let mut mem_addr = None;
                let trap = |addr: u64| EmuError::Trap {
                    ctx: EmuContext::new(&f.name, inst, fetched),
                    addr,
                };
                match inst.op {
                    Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::AndNot
                    | Op::OrNot
                    | Op::Shl
                    | Op::Shr
                    | Op::Sra => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        let r = match inst.op {
                            Op::Add => a.wrapping_add(b),
                            Op::Sub => a.wrapping_sub(b),
                            Op::Mul => a.wrapping_mul(b),
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            Op::AndNot => a & !b,
                            Op::OrNot => a | !b,
                            Op::Shl => a.wrapping_shl(b as u32 & 63),
                            Op::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                            Op::Sra => a.wrapping_shr(b as u32 & 63),
                            _ => unreachable!(),
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r;
                    }
                    Op::Div | Op::Rem => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        let r = if b == 0 {
                            if inst.speculative {
                                0
                            } else {
                                return Err(EmuError::DivByZero {
                                    ctx: EmuContext::new(&f.name, inst, fetched),
                                });
                            }
                        } else if inst.op == Op::Div {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r;
                    }
                    Op::Cmp(c) => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = c.eval(a, b) as i64;
                    }
                    Op::Mov => {
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = val(&regs, inst.srcs[0]);
                    }
                    Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
                        let a = fval(&regs, inst.srcs[0]);
                        let b = fval(&regs, inst.srcs[1]);
                        if inst.op == Op::FDiv && b == 0.0 && !inst.speculative {
                            return Err(EmuError::DivByZero {
                                ctx: EmuContext::new(&f.name, inst, fetched),
                            });
                        }
                        let r = match inst.op {
                            Op::FAdd => a + b,
                            Op::FSub => a - b,
                            Op::FMul => a * b,
                            Op::FDiv => {
                                if b == 0.0 {
                                    0.0
                                } else {
                                    a / b
                                }
                            }
                            _ => unreachable!(),
                        };
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = r.to_bits() as i64;
                    }
                    Op::FCmp(c) => {
                        let a = fval(&regs, inst.srcs[0]);
                        let b = fval(&regs, inst.srcs[1]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = c.eval_f(a, b) as i64;
                    }
                    Op::IToF => {
                        let a = val(&regs, inst.srcs[0]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = (a as f64).to_bits() as i64;
                    }
                    Op::FToI => {
                        let a = fval(&regs, inst.srcs[0]);
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = a as i64;
                    }
                    Op::Ld(w) => {
                        let addr = (val(&regs, inst.srcs[0]).wrapping_add(val(&regs, inst.srcs[1])))
                            as u64;
                        mem_addr = Some(addr);
                        let v = self
                            .mem
                            .load(addr, w, inst.speculative)
                            .map_err(|t| trap(t.addr))?;
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = v;
                    }
                    Op::St(w) => {
                        let addr = (val(&regs, inst.srcs[0]).wrapping_add(val(&regs, inst.srcs[1])))
                            as u64;
                        mem_addr = Some(addr);
                        let v = val(&regs, inst.srcs[2]);
                        self.mem
                            .store(addr, w, v, inst.speculative)
                            .map_err(|t| trap(t.addr))?;
                    }
                    Op::Br(c) => {
                        let a = val(&regs, inst.srcs[0]);
                        let b = val(&regs, inst.srcs[1]);
                        taken = Some(c.eval(a, b));
                    }
                    Op::Jump => {
                        taken = Some(true);
                    }
                    Op::Call => {
                        let callee = inst
                            .callee
                            .ok_or_else(|| malformed(&f.name, inst, fetched, "unlinked call"))?;
                        if depth + 1 >= MAX_DEPTH {
                            return Err(EmuError::CallDepth {
                                ctx: EmuContext::new(&f.name, inst, fetched),
                            });
                        }
                        let argv: Vec<i64> = inst.srcs.iter().map(|&s| val(&regs, s)).collect();
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            inst,
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        match self.exec(callee, &argv, sink, depth + 1)? {
                            Flow::Ret(v) => *dst_slot(&mut regs, &f.name, inst, fetched)? = v,
                            Flow::Halt => return Ok(Flow::Halt),
                        }
                        // Re-establish block context for the trace consumer:
                        // the callee's events interleaved; the sim treats a
                        // call as a block boundary.
                        sink.enter_block(fid, bid);
                        idx += 1;
                        continue;
                    }
                    Op::Ret => {
                        let v = inst.srcs.first().map_or(0, |&s| val(&regs, s));
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            inst,
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        return Ok(Flow::Ret(v));
                    }
                    Op::Halt => {
                        sink.inst(&Event {
                            func: fid,
                            block: bid,
                            index: idx,
                            inst,
                            nullified: false,
                            taken: None,
                            mem_addr: None,
                        });
                        return Ok(Flow::Halt);
                    }
                    Op::PredDef(c) | Op::FPredDef(c) => {
                        let cmp = match inst.op {
                            Op::PredDef(_) => {
                                let a = val(&regs, inst.srcs[0]);
                                let b = val(&regs, inst.srcs[1]);
                                c.eval(a, b)
                            }
                            _ => {
                                let a = fval(&regs, inst.srcs[0]);
                                let b = fval(&regs, inst.srcs[1]);
                                c.eval_f(a, b)
                            }
                        };
                        for pd in &inst.pdsts {
                            let old = preds[pd.reg.index()];
                            preds[pd.reg.index()] = pd.ty.eval(guard_val, cmp, old);
                        }
                    }
                    Op::PredClear => preds.fill(false),
                    Op::PredSet => preds.fill(true),
                    Op::Cmov | Op::CmovCom => {
                        let v = val(&regs, inst.srcs[0]);
                        let cond = val(&regs, inst.srcs[1]) != 0;
                        let fire = if inst.op == Op::Cmov { cond } else { !cond };
                        if fire {
                            *dst_slot(&mut regs, &f.name, inst, fetched)? = v;
                        }
                    }
                    Op::Select => {
                        let t = val(&regs, inst.srcs[0]);
                        let e = val(&regs, inst.srcs[1]);
                        let cond = val(&regs, inst.srcs[2]) != 0;
                        *dst_slot(&mut regs, &f.name, inst, fetched)? = if cond { t } else { e };
                    }
                    Op::Nop => {}
                }

                sink.inst(&Event {
                    func: fid,
                    block: bid,
                    index: idx,
                    inst,
                    nullified: false,
                    taken,
                    mem_addr,
                });

                if taken == Some(true) {
                    let t = inst.target.ok_or_else(|| {
                        malformed(&f.name, inst, fetched, "branch without target")
                    })?;
                    bpos = f.layout_pos(t).ok_or_else(|| {
                        malformed(&f.name, inst, fetched, "branch target not in layout")
                    })?;
                    continue 'blocks;
                }
                idx += 1;
            }
            // Fall through to the next block in layout.
            bpos += 1;
            if bpos >= f.layout.len() {
                // The verifier rejects functions whose last block can fall
                // through; error instead of indexing out of bounds.
                return Err(EmuError::Malformed {
                    ctx: EmuContext::new(&f.name, "<end of function>", self.fetched),
                    reason: "control fell off the end of the function",
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DynStats, NullSink};
    use hyperpred_ir::{CmpOp, MemWidth};
    use hyperpred_ir::{FuncBuilder, PredType};

    fn module_of(funcs: Vec<hyperpred_ir::Function>) -> Module {
        let mut m = Module::new();
        for f in funcs {
            m.push(f);
        }
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.mul(x.into(), Operand::Imm(3));
        let z = b.sub(y.into(), Operand::Imm(1));
        b.ret(Some(z.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[5], &mut NullSink).unwrap().ret, 14);
    }

    #[test]
    fn loop_and_branch() {
        // sum 0..n
        let mut b = FuncBuilder::new("main");
        let n = b.param();
        let i = b.mov(Operand::Imm(0));
        let acc = b.mov(Operand::Imm(0));
        let body = b.block();
        let done = b.block();
        b.jump(body);
        b.switch_to(body);
        let acc2 = b.add(acc.into(), i.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(done);
        b.switch_to(done);
        b.ret(Some(acc.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[10], &mut NullSink).unwrap().ret, 45);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut callee = FuncBuilder::new("double");
        let x = callee.param();
        let y = callee.add(x.into(), x.into());
        callee.ret(Some(y.into()));

        let mut main = FuncBuilder::new("main");
        let a = main.param();
        let r = main.call("double", vec![a.into()]);
        let r2 = main.call("double", vec![r.into()]);
        main.ret(Some(r2.into()));
        let m = module_of(vec![main.finish(), callee.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[3], &mut NullSink).unwrap().ret, 12);
    }

    #[test]
    fn guard_nullifies() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        // p = (x == 0), q = !(x == 0)
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(100));
        b.guard_last(p);
        b.mov_to(out, Operand::Imm(200));
        b.guard_last(q);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[0], &mut NullSink).unwrap().ret, 100);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[7], &mut NullSink).unwrap().ret, 200);
    }

    #[test]
    fn pred_def_with_false_pin_writes_zero_to_u_type() {
        let mut b = FuncBuilder::new("main");
        let pin = b.fresh_pred();
        let u = b.fresh_pred();
        // pin stays false (never set); u starts... set whole file first.
        b.emit_with(Op::PredSet, |_| {});
        // now all preds are 1, including u. pred_eq u<U>, 0, 0 (pin=... ) —
        // we need pin false: clear then set only u via define.
        b.pred_clear();
        // u = 1 via unguarded define (0 == 0).
        b.pred_def(
            CmpOp::Eq,
            &[(u, PredType::U)],
            Operand::Imm(0),
            Operand::Imm(0),
            None,
        );
        // now define u again with a false Pin: must WRITE 0 (not leave 1).
        b.pred_def(
            CmpOp::Eq,
            &[(u, PredType::U)],
            Operand::Imm(0),
            Operand::Imm(0),
            Some(pin),
        );
        let out = b.mov(Operand::Imm(55));
        b.mov_to(out, Operand::Imm(77));
        b.guard_last(u);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 55);
    }

    #[test]
    fn or_type_accumulates() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            y.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        for (x, y, want) in [(0, 5, 1), (5, 0, 1), (5, 5, 0), (0, 0, 1)] {
            let mut emu = Emulator::new(&m);
            assert_eq!(emu.run("main", &[x, y], &mut NullSink).unwrap().ret, want);
        }
    }

    #[test]
    fn cmov_semantics() {
        let mut b = FuncBuilder::new("main");
        let c = b.param();
        let out = b.mov(Operand::Imm(1));
        b.cmov(out, Operand::Imm(2), c.into());
        let out2 = b.mov(Operand::Imm(3));
        b.cmov_com(out2, Operand::Imm(4), c.into());
        let s = b.select(out.into(), out2.into(), c.into());
        b.ret(Some(s.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        // c=1: out=2, out2=3, select -> out = 2
        assert_eq!(emu.run("main", &[1], &mut NullSink).unwrap().ret, 2);
        let mut emu = Emulator::new(&m);
        // c=0: out=1, out2=4, select -> out2 = 4
        assert_eq!(emu.run("main", &[0], &mut NullSink).unwrap().ret, 4);
    }

    #[test]
    fn silent_load_of_bad_address_is_zero() {
        let mut b = FuncBuilder::new("main");
        let v = b.load(MemWidth::Word, Operand::Imm(0), Operand::Imm(0));
        b.ret(Some(v.into()));
        let mut f = b.finish();
        // Non-speculative: trap.
        let m = module_of(vec![f.clone()]);
        let mut emu = Emulator::new(&m);
        assert!(matches!(
            emu.run("main", &[], &mut NullSink),
            Err(EmuError::Trap { .. })
        ));
        // Speculative (silent): 0.
        f.blocks[0].insts[0].speculative = true;
        let m = module_of(vec![f]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 0);
    }

    #[test]
    fn fuel_limits_execution() {
        let mut b = FuncBuilder::new("main");
        let l = b.block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m).with_fuel(1000);
        match emu.run("main", &[], &mut NullSink) {
            Err(EmuError::OutOfFuel { ctx, fuel }) => {
                assert_eq!(fuel, 1000);
                assert_eq!(ctx.fetched, 1000);
                assert_eq!(ctx.func, "main");
            }
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_reproduction_context() {
        // A trap's Display alone must identify function, instruction, and
        // fetch position.
        let mut b = FuncBuilder::new("main");
        let v = b.load(MemWidth::Word, Operand::Imm(0), Operand::Imm(0));
        b.ret(Some(v.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        let err = emu.run("main", &[], &mut NullSink).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("main"), "{msg}");
        assert!(msg.contains("fetched insts"), "{msg}");
        assert!(msg.contains("ld"), "instruction op missing: {msg}");
    }

    #[test]
    fn missing_dst_is_typed_error_not_panic() {
        // Hand-build an `add` with no destination; the interpreter must
        // return Malformed instead of unwrapping.
        let mut b = FuncBuilder::new("main");
        let x = b.add(Operand::Imm(1), Operand::Imm(2));
        b.ret(Some(x.into()));
        let mut f = b.finish();
        f.blocks[0].insts[0].dst = None;
        let mut m = Module::new();
        m.push(f);
        m.link().unwrap();
        let mut emu = Emulator::new(&m);
        assert!(matches!(
            emu.run("main", &[], &mut NullSink),
            Err(EmuError::Malformed { .. })
        ));
    }

    #[test]
    fn float_round_trip() {
        let m = {
            let mut b = FuncBuilder::new("main");
            let x = b.param();
            let xf = b.fresh();
            b.emit_with(Op::IToF, |i| {
                i.dst = Some(xf);
                i.srcs = vec![x.into()];
            });
            let half = b.op2(Op::FMul, xf.into(), Operand::fimm(0.5));
            let out = b.fresh();
            b.emit_with(Op::FToI, |i| {
                i.dst = Some(out);
                i.srcs = vec![half.into()];
            });
            b.ret(Some(out.into()));
            module_of(vec![b.finish()])
        };
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[9], &mut NullSink).unwrap().ret, 4);
    }

    #[test]
    fn dyn_stats_counts() {
        let mut b = FuncBuilder::new("main");
        let n = b.param();
        let body = b.block();
        let done = b.block();
        let i = b.mov(Operand::Imm(0));
        b.jump(body);
        b.switch_to(body);
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut stats = DynStats::new();
        let mut emu = Emulator::new(&m);
        emu.run("main", &[4], &mut stats).unwrap();
        assert_eq!(stats.cond_branches, 4);
        assert_eq!(stats.taken, 3 + 2); // 3 backedges + jump body + jump done
        assert!(stats.insts >= 12);
    }

    #[test]
    fn store_and_load_globals() {
        let mut m = Module::new();
        let addr = m.add_global("buf", 64, vec![]);
        let mut b = FuncBuilder::new("main");
        b.store(
            MemWidth::Word,
            Operand::Imm(addr as i64),
            Operand::Imm(8),
            Operand::Imm(777),
        );
        let v = b.load(MemWidth::Word, Operand::Imm(addr as i64), Operand::Imm(8));
        b.ret(Some(v.into()));
        m.push(b.finish());
        m.link().unwrap();
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 777);
    }
}
