//! The IR interpreter: pre-decoded, direct-dispatch execution.
//!
//! [`Emulator::run`] does not walk [`Inst`] structs. The module is decoded
//! once (see [`crate::decode`]) into flat per-function op streams, and the
//! hot loop dispatches on a dense discriminant with all operands resolved
//! to register-file slots. Trace events still carry the original `&Inst`,
//! so every [`TraceSink`] (profiler, cycle simulator, dynamic stats) sees
//! a stream bit-identical to the struct-walking reference interpreter
//! ([`crate::reference::ReferenceEmulator`]).
//!
//! Error context is *lazy*: the hot loop never touches strings. On the
//! cold error path the original instruction is looked up via the decoded
//! op's `(block, index)` provenance and rendered then.

use crate::decode::{
    DCode, DOp, DecodedFunc, DecodedModule, DST_OOR, F_BRANCH, F_SPEC, MALFORMED_REASONS, NONE,
    TARGET_MISSING, TARGET_NOT_LAID,
};
use crate::memory::Memory;
use crate::trace::{Event, TraceSink};
use hyperpred_ir::{BlockId, FuncId, Function, Inst, InstId, MemWidth, Module};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Default instruction budget; guards against non-terminating test inputs.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;
/// Maximum call depth.
pub const MAX_DEPTH: usize = 8192;

/// Where an [`EmuError`] happened: enough context to reproduce the trap
/// from a failure-report line alone.
///
/// Constructed only on cold error paths — building one renders the
/// faulting instruction to a `String`, which must never happen per
/// fetched instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuContext {
    /// The executing function's name.
    pub func: String,
    /// Rendered current instruction.
    pub inst: String,
    /// Instructions fetched before the failure (this run).
    pub fetched: u64,
}

impl EmuContext {
    #[cold]
    pub(crate) fn new(func: &str, inst: impl ToString, fetched: u64) -> EmuContext {
        EmuContext {
            func: func.to_string(),
            inst: inst.to_string(),
            fetched,
        }
    }
}

impl fmt::Display for EmuContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in {} after {} fetched insts, at `{}`",
            self.func, self.fetched, self.inst
        )
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Non-speculative memory access to an invalid address.
    Trap {
        /// Where it happened.
        ctx: EmuContext,
        /// The bad address.
        addr: u64,
    },
    /// Non-speculative integer or float division by zero.
    DivByZero {
        /// Where it happened.
        ctx: EmuContext,
    },
    /// The instruction budget was exhausted.
    OutOfFuel {
        /// Where it happened.
        ctx: EmuContext,
        /// The budget that ran out.
        fuel: u64,
    },
    /// Call stack exceeded [`MAX_DEPTH`].
    CallDepth {
        /// Where it happened (the `call` instruction).
        ctx: EmuContext,
    },
    /// Structurally invalid instruction reached the interpreter (the
    /// verifier should reject these; this is the typed backstop so a bad
    /// module errors instead of panicking a worker).
    Malformed {
        /// Where it happened.
        ctx: EmuContext,
        /// What was wrong.
        reason: &'static str,
    },
    /// The trace sink asked the run to stop (see
    /// [`TraceSink::aborted`](crate::TraceSink::aborted)); used by cycle
    /// watchdogs in the timing simulator.
    SinkAbort {
        /// Where it happened.
        ctx: EmuContext,
    },
    /// The requested entry function does not exist.
    NoFunc(String),
    /// A global's initializer does not fit the simulated address space
    /// (see [`Memory::poison`](crate::Memory::poison)); the module is
    /// malformed at the data-segment level, before any instruction runs.
    BadGlobal(crate::memory::GlobalError),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Trap { ctx, addr } => {
                write!(f, "memory trap at {addr:#x} {ctx}")
            }
            EmuError::DivByZero { ctx } => {
                write!(f, "division by zero {ctx}")
            }
            EmuError::OutOfFuel { ctx, fuel } => {
                write!(f, "instruction budget of {fuel} exhausted {ctx}")
            }
            EmuError::CallDepth { ctx } => {
                write!(f, "call stack overflow (depth {MAX_DEPTH}) {ctx}")
            }
            EmuError::Malformed { ctx, reason } => {
                write!(f, "malformed instruction ({reason}) {ctx}")
            }
            EmuError::SinkAbort { ctx } => {
                write!(f, "trace sink aborted the run {ctx}")
            }
            EmuError::NoFunc(n) => write!(f, "no function named {n}"),
            EmuError::BadGlobal(g) => write!(f, "malformed data segment: {g}"),
        }
    }
}

impl Error for EmuError {}

/// Builds a [`EmuError::Malformed`] for the current instruction.
#[cold]
pub(crate) fn malformed(func: &str, inst: &Inst, fetched: u64, reason: &'static str) -> EmuError {
    EmuError::Malformed {
        ctx: EmuContext::new(func, inst, fetched),
        reason,
    }
}

/// Checked destination-register slot: a missing or out-of-range `dst` is a
/// typed error, not an `unwrap` panic. (Reference-interpreter path only;
/// the decoded stream bakes these checks at decode time.)
pub(crate) fn dst_slot<'r>(
    regs: &'r mut [i64],
    func: &str,
    inst: &Inst,
    fetched: u64,
) -> Result<&'r mut i64, EmuError> {
    let d = inst
        .dst
        .ok_or_else(|| malformed(func, inst, fetched, "missing destination register"))?;
    regs.get_mut(d.index())
        .ok_or_else(|| malformed(func, inst, fetched, "destination register out of range"))
}

/// Result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Value returned by the entry function (0 if it returned none).
    pub ret: i64,
    /// Total fetched instructions.
    pub fetched: u64,
}

pub(crate) enum Flow {
    Ret(i64),
    Halt,
}

/// Reconstructs error context from a decoded op's provenance. Fully
/// bounds-checked: error paths must stay panic-free even for ops whose
/// provenance is synthetic.
#[cold]
#[inline(never)]
fn op_ctx(f: &Function, op: &DOp, fetched: u64) -> EmuContext {
    let rendered = f
        .blocks
        .get(op.block as usize)
        .and_then(|b| b.insts.get(op.index as usize))
        .map_or_else(|| "<unknown>".to_string(), |i| i.to_string());
    EmuContext {
        func: f.name.clone(),
        inst: rendered,
        fetched,
    }
}

#[cold]
#[inline(never)]
fn fuel_err(f: &Function, op: &DOp, fetched: u64, fuel: u64) -> EmuError {
    EmuError::OutOfFuel {
        ctx: op_ctx(f, op, fetched),
        fuel,
    }
}

#[cold]
#[inline(never)]
fn abort_err(f: &Function, op: &DOp, fetched: u64) -> EmuError {
    EmuError::SinkAbort {
        ctx: op_ctx(f, op, fetched),
    }
}

#[cold]
#[inline(never)]
fn trap_err(f: &Function, op: &DOp, fetched: u64, addr: u64) -> EmuError {
    EmuError::Trap {
        ctx: op_ctx(f, op, fetched),
        addr,
    }
}

#[cold]
#[inline(never)]
fn div_err(f: &Function, op: &DOp, fetched: u64) -> EmuError {
    EmuError::DivByZero {
        ctx: op_ctx(f, op, fetched),
    }
}

#[cold]
#[inline(never)]
fn depth_err(f: &Function, op: &DOp, fetched: u64) -> EmuError {
    EmuError::CallDepth {
        ctx: op_ctx(f, op, fetched),
    }
}

#[cold]
#[inline(never)]
fn mal_err(f: &Function, op: &DOp, fetched: u64, reason: &'static str) -> EmuError {
    EmuError::Malformed {
        ctx: op_ctx(f, op, fetched),
        reason,
    }
}

#[cold]
#[inline(never)]
fn lazy_dst_err(f: &Function, op: &DOp, fetched: u64) -> EmuError {
    let reason = if op.dst == NONE {
        "missing destination register"
    } else {
        "destination register out of range"
    };
    mal_err(f, op, fetched, reason)
}

#[cold]
#[inline(never)]
fn target_err(f: &Function, op: &DOp, fetched: u64) -> EmuError {
    let reason = if op.imm == TARGET_MISSING {
        "branch without target"
    } else {
        "branch target not in layout"
    };
    mal_err(f, op, fetched, reason)
}

#[cold]
#[inline(never)]
fn end_err(f: &Function, fetched: u64) -> EmuError {
    EmuError::Malformed {
        ctx: EmuContext {
            func: f.name.clone(),
            inst: "<end of function>".to_string(),
            fetched,
        },
        reason: "control fell off the end of the function",
    }
}

/// Interprets a [`Module`], streaming the dynamic trace to a
/// [`TraceSink`].
///
/// The module is pre-decoded into flat op streams on first use; pass a
/// cached decode via [`Emulator::with_decoded`] to share that work across
/// runs (the matrix engine caches one decode per compiled module).
///
/// # Example
///
/// ```
/// use hyperpred_ir::{FuncBuilder, Module, Operand};
/// use hyperpred_emu::{Emulator, NullSink};
///
/// let mut module = Module::new();
/// let mut b = FuncBuilder::new("main");
/// let x = b.param();
/// let y = b.add(x.into(), Operand::Imm(5));
/// b.ret(Some(y.into()));
/// module.push(b.finish());
/// module.link().unwrap();
///
/// let mut emu = Emulator::new(&module);
/// let out = emu.run("main", &[37], &mut NullSink).unwrap();
/// assert_eq!(out.ret, 42);
/// ```
#[derive(Debug)]
pub struct Emulator<'m> {
    module: &'m Module,
    /// Simulated memory; inspect after a run for output checks.
    pub mem: Memory,
    fuel: u64,
    fetched: u64,
    decoded: Option<Arc<DecodedModule>>,
}

impl<'m> Emulator<'m> {
    /// Creates an emulator with fresh memory for `module`.
    pub fn new(module: &'m Module) -> Emulator<'m> {
        Emulator {
            module,
            mem: Memory::new(module),
            fuel: DEFAULT_FUEL,
            fetched: 0,
            decoded: None,
        }
    }

    /// Creates an emulator reusing an existing decode of `module`, so
    /// repeated short runs (profiling, matrix cells) skip re-decoding.
    ///
    /// If `decoded` does not match the module's current shape it is
    /// discarded and the module is re-decoded on first run.
    pub fn with_decoded(module: &'m Module, decoded: Arc<DecodedModule>) -> Emulator<'m> {
        let mut emu = Emulator::new(module);
        emu.decoded = Some(decoded);
        emu
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Emulator<'m> {
        self.fuel = fuel;
        self
    }

    /// Runs `func(args...)`, streaming events to `sink`.
    ///
    /// # Errors
    /// Fails on memory traps, division by zero (non-speculative), fuel
    /// exhaustion, call overflow, or an unknown function name.
    pub fn run<S: TraceSink>(
        &mut self,
        func: &str,
        args: &[i64],
        sink: &mut S,
    ) -> Result<RunOutcome, EmuError> {
        let fid = self
            .module
            .func_by_name(func)
            .ok_or_else(|| EmuError::NoFunc(func.to_string()))?;
        if let Some(p) = self.mem.poison() {
            return Err(EmuError::BadGlobal(p.clone()));
        }
        // The shape check is the once-per-run safety argument for the
        // unchecked (block, index) instruction fetches in the hot loop: a
        // stale or foreign decode is silently replaced, never trusted.
        let decoded = match &self.decoded {
            Some(d) if d.matches(self.module) => Arc::clone(d),
            _ => {
                let d = Arc::new(DecodedModule::decode(self.module));
                self.decoded = Some(Arc::clone(&d));
                d
            }
        };
        self.fetched = 0;
        let flow = self.exec(fid, args, sink, 0, &decoded)?;
        let ret = match flow {
            Flow::Ret(v) => v,
            Flow::Halt => 0,
        };
        Ok(RunOutcome {
            ret,
            fetched: self.fetched,
        })
    }

    fn exec<S: TraceSink>(
        &mut self,
        fid: FuncId,
        args: &[i64],
        sink: &mut S,
        depth: usize,
        decoded: &DecodedModule,
    ) -> Result<Flow, EmuError> {
        let module = self.module;
        let f: &'m Function = module.func(fid);
        let df: &DecodedFunc = &decoded.funcs[fid.index()];
        debug_assert_eq!(args.len(), f.params.len(), "arity checked by verifier");

        // Activation: registers, then the constant pool in the slots past
        // `reg_count` so immediates read like registers, then parameters.
        let mut regs = vec![0i64; df.slot_count as usize];
        regs[df.reg_count as usize..].copy_from_slice(&df.pool);
        let mut preds = vec![false; df.pred_count as usize];
        for (&slot, &v) in df.params.iter().zip(args) {
            regs[slot as usize] = v;
        }

        let ops: &[DOp] = &df.ops;
        // SAFETY (for every `get_unchecked` below): decode guarantees all
        // register slots < slot_count, all predicate slots < pred_count,
        // all pool ranges in bounds, every stream terminated by `End`, and
        // every baked branch target < ops.len(). `run` re-validated that
        // the module still has the decoded shape, so the `(block, index)`
        // provenance carried for cold error paths stays in bounds.
        macro_rules! rd {
            ($s:expr) => {
                unsafe { *regs.get_unchecked($s as usize) }
            };
        }
        macro_rules! wr {
            ($s:expr, $v:expr) => {{
                let v = $v;
                unsafe { *regs.get_unchecked_mut($s as usize) = v }
            }};
        }
        macro_rules! frd {
            ($s:expr) => {
                f64::from_bits(rd!($s) as u64)
            };
        }

        // Hoisted out of the fetch loop: for non-auditing sinks the
        // constant false folds the whole predicate-event branch away.
        let audits_preds = sink.audits_preds();

        let mut pc = 0usize;
        loop {
            let op = unsafe { ops.get_unchecked(pc) };

            // Pseudo-ops are not fetched instructions: no fuel, no events.
            if (op.code as u8) <= DCode::BadParams as u8 {
                match op.code {
                    DCode::EnterBlock => {
                        sink.enter_block(fid, BlockId(op.block));
                        pc += 1;
                        continue;
                    }
                    DCode::End => return Err(end_err(f, self.fetched)),
                    _ => {
                        return Err(EmuError::Malformed {
                            ctx: EmuContext {
                                func: f.name.clone(),
                                inst: "<params>".to_string(),
                                fetched: self.fetched,
                            },
                            reason: "parameter register out of range",
                        })
                    }
                }
            }

            if self.fetched >= self.fuel {
                return Err(fuel_err(f, op, self.fetched, self.fuel));
            }
            if sink.aborted() {
                return Err(abort_err(f, op, self.fetched));
            }
            self.fetched += 1;

            if op.nullify != NONE && !unsafe { *preds.get_unchecked(op.nullify as usize) } {
                sink.inst(&Event {
                    func: fid,
                    block: BlockId(op.block),
                    index: op.index as usize,
                    id: InstId(op.id),
                    code: op.code,
                    nullified: true,
                    taken: if op.flags & F_BRANCH != 0 {
                        Some(false)
                    } else {
                        None
                    },
                    mem_addr: None,
                });
                pc += 1;
                continue;
            }

            macro_rules! pdef {
                ($cmp:expr) => {{
                    let cmp = $cmp;
                    let pin = op.c == NONE || unsafe { *preds.get_unchecked(op.c as usize) };
                    let lo = op.dst as usize;
                    for pd in unsafe { df.pdsts.get_unchecked(lo..lo + op.imm as usize) } {
                        let slot = pd.slot as usize;
                        let old = unsafe { *preds.get_unchecked(slot) };
                        unsafe { *preds.get_unchecked_mut(slot) = pd.ty.eval(pin, cmp, old) };
                    }
                }};
            }

            let mut taken = None;
            let mut mem_addr = None;
            match op.code {
                DCode::Add => wr!(op.dst, rd!(op.a).wrapping_add(rd!(op.b))),
                DCode::Sub => wr!(op.dst, rd!(op.a).wrapping_sub(rd!(op.b))),
                DCode::Mul => wr!(op.dst, rd!(op.a).wrapping_mul(rd!(op.b))),
                DCode::And => wr!(op.dst, rd!(op.a) & rd!(op.b)),
                DCode::Or => wr!(op.dst, rd!(op.a) | rd!(op.b)),
                DCode::Xor => wr!(op.dst, rd!(op.a) ^ rd!(op.b)),
                DCode::AndNot => wr!(op.dst, rd!(op.a) & !rd!(op.b)),
                DCode::OrNot => wr!(op.dst, rd!(op.a) | !rd!(op.b)),
                DCode::Shl => wr!(op.dst, rd!(op.a).wrapping_shl(rd!(op.b) as u32 & 63)),
                DCode::Shr => wr!(
                    op.dst,
                    ((rd!(op.a) as u64).wrapping_shr(rd!(op.b) as u32 & 63)) as i64
                ),
                DCode::Sra => wr!(op.dst, rd!(op.a).wrapping_shr(rd!(op.b) as u32 & 63)),
                DCode::Div | DCode::Rem => {
                    let b = rd!(op.b);
                    let r = if b == 0 {
                        if op.flags & F_SPEC != 0 {
                            0
                        } else {
                            return Err(div_err(f, op, self.fetched));
                        }
                    } else if op.code == DCode::Div {
                        rd!(op.a).wrapping_div(b)
                    } else {
                        rd!(op.a).wrapping_rem(b)
                    };
                    wr!(op.dst, r);
                }
                DCode::CmpEq => wr!(op.dst, (rd!(op.a) == rd!(op.b)) as i64),
                DCode::CmpNe => wr!(op.dst, (rd!(op.a) != rd!(op.b)) as i64),
                DCode::CmpLt => wr!(op.dst, (rd!(op.a) < rd!(op.b)) as i64),
                DCode::CmpLe => wr!(op.dst, (rd!(op.a) <= rd!(op.b)) as i64),
                DCode::CmpGt => wr!(op.dst, (rd!(op.a) > rd!(op.b)) as i64),
                DCode::CmpGe => wr!(op.dst, (rd!(op.a) >= rd!(op.b)) as i64),
                DCode::Mov => wr!(op.dst, rd!(op.a)),
                DCode::FAdd => wr!(op.dst, (frd!(op.a) + frd!(op.b)).to_bits() as i64),
                DCode::FSub => wr!(op.dst, (frd!(op.a) - frd!(op.b)).to_bits() as i64),
                DCode::FMul => wr!(op.dst, (frd!(op.a) * frd!(op.b)).to_bits() as i64),
                DCode::FDiv => {
                    let b = frd!(op.b);
                    let r = if b == 0.0 {
                        if op.flags & F_SPEC != 0 {
                            0.0
                        } else {
                            return Err(div_err(f, op, self.fetched));
                        }
                    } else {
                        frd!(op.a) / b
                    };
                    wr!(op.dst, r.to_bits() as i64);
                }
                DCode::FCmpEq => wr!(op.dst, (frd!(op.a) == frd!(op.b)) as i64),
                DCode::FCmpNe => wr!(op.dst, (frd!(op.a) != frd!(op.b)) as i64),
                DCode::FCmpLt => wr!(op.dst, (frd!(op.a) < frd!(op.b)) as i64),
                DCode::FCmpLe => wr!(op.dst, (frd!(op.a) <= frd!(op.b)) as i64),
                DCode::FCmpGt => wr!(op.dst, (frd!(op.a) > frd!(op.b)) as i64),
                DCode::FCmpGe => wr!(op.dst, (frd!(op.a) >= frd!(op.b)) as i64),
                DCode::IToF => wr!(op.dst, (rd!(op.a) as f64).to_bits() as i64),
                DCode::FToI => wr!(op.dst, frd!(op.a) as i64),
                DCode::LdByte | DCode::LdWord => {
                    let addr = rd!(op.a).wrapping_add(rd!(op.b)) as u64;
                    mem_addr = Some(addr);
                    let w = if op.code == DCode::LdByte {
                        MemWidth::Byte
                    } else {
                        MemWidth::Word
                    };
                    match self.mem.load(addr, w, op.flags & F_SPEC != 0) {
                        Ok(v) => wr!(op.dst, v),
                        Err(t) => return Err(trap_err(f, op, self.fetched, t.addr)),
                    }
                }
                DCode::StByte | DCode::StWord => {
                    let addr = rd!(op.a).wrapping_add(rd!(op.b)) as u64;
                    mem_addr = Some(addr);
                    let w = if op.code == DCode::StByte {
                        MemWidth::Byte
                    } else {
                        MemWidth::Word
                    };
                    if let Err(t) = self.mem.store(addr, w, rd!(op.c), op.flags & F_SPEC != 0) {
                        return Err(trap_err(f, op, self.fetched, t.addr));
                    }
                }
                DCode::BrEq => taken = Some(rd!(op.a) == rd!(op.b)),
                DCode::BrNe => taken = Some(rd!(op.a) != rd!(op.b)),
                DCode::BrLt => taken = Some(rd!(op.a) < rd!(op.b)),
                DCode::BrLe => taken = Some(rd!(op.a) <= rd!(op.b)),
                DCode::BrGt => taken = Some(rd!(op.a) > rd!(op.b)),
                DCode::BrGe => taken = Some(rd!(op.a) >= rd!(op.b)),
                DCode::Jump => taken = Some(true),
                DCode::Call => {
                    if depth + 1 >= MAX_DEPTH {
                        return Err(depth_err(f, op, self.fetched));
                    }
                    let lo = op.a as usize;
                    let argv: Vec<i64> = df.call_args[lo..lo + op.b as usize]
                        .iter()
                        .map(|&s| rd!(s))
                        .collect();
                    sink.inst(&Event {
                        func: fid,
                        block: BlockId(op.block),
                        index: op.index as usize,
                        id: InstId(op.id),
                        code: op.code,
                        nullified: false,
                        taken: None,
                        mem_addr: None,
                    });
                    match self.exec(FuncId(op.imm), &argv, sink, depth + 1, decoded)? {
                        Flow::Ret(v) => {
                            if op.dst >= DST_OOR {
                                return Err(lazy_dst_err(f, op, self.fetched));
                            }
                            wr!(op.dst, v);
                        }
                        Flow::Halt => return Ok(Flow::Halt),
                    }
                    // Re-establish block context for the trace consumer:
                    // the callee's events interleaved; the sim treats a
                    // call as a block boundary.
                    sink.enter_block(fid, BlockId(op.block));
                    pc += 1;
                    continue;
                }
                DCode::Ret => {
                    let v = if op.a == NONE { 0 } else { rd!(op.a) };
                    sink.inst(&Event {
                        func: fid,
                        block: BlockId(op.block),
                        index: op.index as usize,
                        id: InstId(op.id),
                        code: op.code,
                        nullified: false,
                        taken: None,
                        mem_addr: None,
                    });
                    return Ok(Flow::Ret(v));
                }
                DCode::Halt => {
                    sink.inst(&Event {
                        func: fid,
                        block: BlockId(op.block),
                        index: op.index as usize,
                        id: InstId(op.id),
                        code: op.code,
                        nullified: false,
                        taken: None,
                        mem_addr: None,
                    });
                    return Ok(Flow::Halt);
                }
                DCode::PdEq => pdef!(rd!(op.a) == rd!(op.b)),
                DCode::PdNe => pdef!(rd!(op.a) != rd!(op.b)),
                DCode::PdLt => pdef!(rd!(op.a) < rd!(op.b)),
                DCode::PdLe => pdef!(rd!(op.a) <= rd!(op.b)),
                DCode::PdGt => pdef!(rd!(op.a) > rd!(op.b)),
                DCode::PdGe => pdef!(rd!(op.a) >= rd!(op.b)),
                DCode::FPdEq => pdef!(frd!(op.a) == frd!(op.b)),
                DCode::FPdNe => pdef!(frd!(op.a) != frd!(op.b)),
                DCode::FPdLt => pdef!(frd!(op.a) < frd!(op.b)),
                DCode::FPdLe => pdef!(frd!(op.a) <= frd!(op.b)),
                DCode::FPdGt => pdef!(frd!(op.a) > frd!(op.b)),
                DCode::FPdGe => pdef!(frd!(op.a) >= frd!(op.b)),
                DCode::PredClear => preds.fill(false),
                DCode::PredSet => preds.fill(true),
                DCode::Cmov | DCode::CmovCom => {
                    let cond = rd!(op.b) != 0;
                    if (op.code == DCode::Cmov) == cond {
                        if op.dst >= DST_OOR {
                            return Err(lazy_dst_err(f, op, self.fetched));
                        }
                        wr!(op.dst, rd!(op.a));
                    }
                }
                DCode::Select => wr!(op.dst, if rd!(op.c) != 0 { rd!(op.a) } else { rd!(op.b) }),
                DCode::Nop => {}
                DCode::Malformed => {
                    return Err(mal_err(
                        f,
                        op,
                        self.fetched,
                        MALFORMED_REASONS[op.imm as usize],
                    ))
                }
                DCode::EnterBlock | DCode::End | DCode::BadParams => unreachable!(),
            }

            sink.inst(&Event {
                func: fid,
                block: BlockId(op.block),
                index: op.index as usize,
                id: InstId(op.id),
                code: op.code,
                nullified: false,
                taken,
                mem_addr,
            });

            if audits_preds
                && matches!(
                    op.code,
                    DCode::PdEq
                        | DCode::PdNe
                        | DCode::PdLt
                        | DCode::PdLe
                        | DCode::PdGt
                        | DCode::PdGe
                        | DCode::FPdEq
                        | DCode::FPdNe
                        | DCode::FPdLt
                        | DCode::FPdLe
                        | DCode::FPdGt
                        | DCode::FPdGe
                        | DCode::PredClear
                        | DCode::PredSet
                )
            {
                sink.pred_write(fid, BlockId(op.block), op.index as usize, &preds);
            }

            if taken == Some(true) {
                if op.imm >= TARGET_NOT_LAID {
                    return Err(target_err(f, op, self.fetched));
                }
                pc = op.imm as usize;
                continue;
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DynStats, NullSink};
    use hyperpred_ir::Operand;
    use hyperpred_ir::{CmpOp, MemWidth, Op};
    use hyperpred_ir::{FuncBuilder, PredType};

    fn module_of(funcs: Vec<hyperpred_ir::Function>) -> Module {
        let mut m = Module::new();
        for f in funcs {
            m.push(f);
        }
        m.link().unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.mul(x.into(), Operand::Imm(3));
        let z = b.sub(y.into(), Operand::Imm(1));
        b.ret(Some(z.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[5], &mut NullSink).unwrap().ret, 14);
    }

    #[test]
    fn loop_and_branch() {
        // sum 0..n
        let mut b = FuncBuilder::new("main");
        let n = b.param();
        let i = b.mov(Operand::Imm(0));
        let acc = b.mov(Operand::Imm(0));
        let body = b.block();
        let done = b.block();
        b.jump(body);
        b.switch_to(body);
        let acc2 = b.add(acc.into(), i.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(done);
        b.switch_to(done);
        b.ret(Some(acc.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[10], &mut NullSink).unwrap().ret, 45);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut callee = FuncBuilder::new("double");
        let x = callee.param();
        let y = callee.add(x.into(), x.into());
        callee.ret(Some(y.into()));

        let mut main = FuncBuilder::new("main");
        let a = main.param();
        let r = main.call("double", vec![a.into()]);
        let r2 = main.call("double", vec![r.into()]);
        main.ret(Some(r2.into()));
        let m = module_of(vec![main.finish(), callee.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[3], &mut NullSink).unwrap().ret, 12);
    }

    #[test]
    fn guard_nullifies() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        // p = (x == 0), q = !(x == 0)
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(100));
        b.guard_last(p);
        b.mov_to(out, Operand::Imm(200));
        b.guard_last(q);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[0], &mut NullSink).unwrap().ret, 100);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[7], &mut NullSink).unwrap().ret, 200);
    }

    #[test]
    fn pred_def_with_false_pin_writes_zero_to_u_type() {
        let mut b = FuncBuilder::new("main");
        let pin = b.fresh_pred();
        let u = b.fresh_pred();
        // pin stays false (never set); u starts... set whole file first.
        b.emit_with(Op::PredSet, |_| {});
        // now all preds are 1, including u. pred_eq u<U>, 0, 0 (pin=... ) —
        // we need pin false: clear then set only u via define.
        b.pred_clear();
        // u = 1 via unguarded define (0 == 0).
        b.pred_def(
            CmpOp::Eq,
            &[(u, PredType::U)],
            Operand::Imm(0),
            Operand::Imm(0),
            None,
        );
        // now define u again with a false Pin: must WRITE 0 (not leave 1).
        b.pred_def(
            CmpOp::Eq,
            &[(u, PredType::U)],
            Operand::Imm(0),
            Operand::Imm(0),
            Some(pin),
        );
        let out = b.mov(Operand::Imm(55));
        b.mov_to(out, Operand::Imm(77));
        b.guard_last(u);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 55);
    }

    #[test]
    fn or_type_accumulates() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            y.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        b.mov_to(out, Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let m = module_of(vec![b.finish()]);
        for (x, y, want) in [(0, 5, 1), (5, 0, 1), (5, 5, 0), (0, 0, 1)] {
            let mut emu = Emulator::new(&m);
            assert_eq!(emu.run("main", &[x, y], &mut NullSink).unwrap().ret, want);
        }
    }

    #[test]
    fn cmov_semantics() {
        let mut b = FuncBuilder::new("main");
        let c = b.param();
        let out = b.mov(Operand::Imm(1));
        b.cmov(out, Operand::Imm(2), c.into());
        let out2 = b.mov(Operand::Imm(3));
        b.cmov_com(out2, Operand::Imm(4), c.into());
        let s = b.select(out.into(), out2.into(), c.into());
        b.ret(Some(s.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        // c=1: out=2, out2=3, select -> out = 2
        assert_eq!(emu.run("main", &[1], &mut NullSink).unwrap().ret, 2);
        let mut emu = Emulator::new(&m);
        // c=0: out=1, out2=4, select -> out2 = 4
        assert_eq!(emu.run("main", &[0], &mut NullSink).unwrap().ret, 4);
    }

    #[test]
    fn silent_load_of_bad_address_is_zero() {
        let mut b = FuncBuilder::new("main");
        let v = b.load(MemWidth::Word, Operand::Imm(0), Operand::Imm(0));
        b.ret(Some(v.into()));
        let mut f = b.finish();
        // Non-speculative: trap.
        let m = module_of(vec![f.clone()]);
        let mut emu = Emulator::new(&m);
        assert!(matches!(
            emu.run("main", &[], &mut NullSink),
            Err(EmuError::Trap { .. })
        ));
        // Speculative (silent): 0.
        f.blocks[0].insts[0].speculative = true;
        let m = module_of(vec![f]);
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 0);
    }

    #[test]
    fn fuel_limits_execution() {
        let mut b = FuncBuilder::new("main");
        let l = b.block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m).with_fuel(1000);
        match emu.run("main", &[], &mut NullSink) {
            Err(EmuError::OutOfFuel { ctx, fuel }) => {
                assert_eq!(fuel, 1000);
                assert_eq!(ctx.fetched, 1000);
                assert_eq!(ctx.func, "main");
            }
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_reproduction_context() {
        // A trap's Display alone must identify function, instruction, and
        // fetch position.
        let mut b = FuncBuilder::new("main");
        let v = b.load(MemWidth::Word, Operand::Imm(0), Operand::Imm(0));
        b.ret(Some(v.into()));
        let m = module_of(vec![b.finish()]);
        let mut emu = Emulator::new(&m);
        let err = emu.run("main", &[], &mut NullSink).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("main"), "{msg}");
        assert!(msg.contains("fetched insts"), "{msg}");
        assert!(msg.contains("ld"), "instruction op missing: {msg}");
    }

    #[test]
    fn missing_dst_is_typed_error_not_panic() {
        // Hand-build an `add` with no destination; the interpreter must
        // return Malformed instead of unwrapping.
        let mut b = FuncBuilder::new("main");
        let x = b.add(Operand::Imm(1), Operand::Imm(2));
        b.ret(Some(x.into()));
        let mut f = b.finish();
        f.blocks[0].insts[0].dst = None;
        let mut m = Module::new();
        m.push(f);
        m.link().unwrap();
        let mut emu = Emulator::new(&m);
        assert!(matches!(
            emu.run("main", &[], &mut NullSink),
            Err(EmuError::Malformed { .. })
        ));
    }

    #[test]
    fn float_round_trip() {
        let m = {
            let mut b = FuncBuilder::new("main");
            let x = b.param();
            let xf = b.fresh();
            b.emit_with(Op::IToF, |i| {
                i.dst = Some(xf);
                i.srcs = vec![x.into()];
            });
            let half = b.op2(Op::FMul, xf.into(), Operand::fimm(0.5));
            let out = b.fresh();
            b.emit_with(Op::FToI, |i| {
                i.dst = Some(out);
                i.srcs = vec![half.into()];
            });
            b.ret(Some(out.into()));
            module_of(vec![b.finish()])
        };
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[9], &mut NullSink).unwrap().ret, 4);
    }

    #[test]
    fn dyn_stats_counts() {
        let mut b = FuncBuilder::new("main");
        let n = b.param();
        let body = b.block();
        let done = b.block();
        let i = b.mov(Operand::Imm(0));
        b.jump(body);
        b.switch_to(body);
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut stats = DynStats::new();
        let mut emu = Emulator::new(&m);
        emu.run("main", &[4], &mut stats).unwrap();
        assert_eq!(stats.cond_branches, 4);
        assert_eq!(stats.taken, 3 + 2); // 3 backedges + jump body + jump done
        assert!(stats.insts >= 12);
    }

    #[test]
    fn store_and_load_globals() {
        let mut m = Module::new();
        let addr = m.add_global("buf", 64, vec![]);
        let mut b = FuncBuilder::new("main");
        b.store(
            MemWidth::Word,
            Operand::Imm(addr as i64),
            Operand::Imm(8),
            Operand::Imm(777),
        );
        let v = b.load(MemWidth::Word, Operand::Imm(addr as i64), Operand::Imm(8));
        b.ret(Some(v.into()));
        m.push(b.finish());
        m.link().unwrap();
        let mut emu = Emulator::new(&m);
        assert_eq!(emu.run("main", &[], &mut NullSink).unwrap().ret, 777);
    }

    #[test]
    fn shared_decode_is_reused_and_stale_decode_is_replaced() {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        let m = module_of(vec![b.finish()]);
        let decoded = Arc::new(DecodedModule::decode(&m));
        let mut emu = Emulator::with_decoded(&m, Arc::clone(&decoded));
        assert_eq!(emu.run("main", &[41], &mut NullSink).unwrap().ret, 42);

        // A decode of a *different* module must be rejected, not trusted.
        let mut b2 = FuncBuilder::new("main");
        let p = b2.param();
        let q = b2.mul(p.into(), Operand::Imm(10));
        let q2 = b2.mul(q.into(), Operand::Imm(10));
        b2.ret(Some(q2.into()));
        let m2 = module_of(vec![b2.finish()]);
        let mut emu2 = Emulator::with_decoded(&m2, decoded);
        assert_eq!(emu2.run("main", &[1], &mut NullSink).unwrap().ret, 100);
    }
}
