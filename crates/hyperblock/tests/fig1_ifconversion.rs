//! The paper's Figure 1, reproduced exactly.
//!
//! Source (Fig. 1a):
//!
//! ```c
//! if (a != 0 && b != 0) j++;
//! else if (c != 0) k++;
//! else k--;
//! i++;
//! ```
//!
//! Expected if-converted form (Fig. 1c):
//!
//! ```text
//! pred_clear
//! pred_eq p1<OR>, p2<!U>, a, 0
//! pred_eq p1<OR>, p3<!U>, b, 0   (p2)
//! add    j, j, 1                 (p3)
//! pred_ne p4<U>, p5<!U>, c, 0    (p1)
//! add    k, k, 1                 (p4)
//! sub    k, k, 1                 (p5)
//! add    i, i, 1                 -- unconditional
//! ```
//!
//! Structural properties asserted here: branches vanish; one OR-type
//! predicate collects the `||` of the two short-circuit exits; each
//! `pred_eq` also defines the complement (`!U`) for the fall-through
//! side; the "then" increment is guarded by the predicate of the inner
//! conjunction; and the trailing `i++` is control-equivalent to the entry
//! and therefore *unguarded* — the detail that distinguishes
//! control-dependence predicate assignment from naive path predicates.

use hyperpred_emu::{Emulator, NullSink, Profiler};
use hyperpred_hyperblock::{form_hyperblocks, HyperblockConfig};
use hyperpred_ir::{CmpOp, FuncBuilder, FuncId, Module, Op, Operand, PredType};

/// Builds the paper's Fig. 1(b) assembly inside a counted loop (regions
/// are formed over loop bodies) and returns the module.
fn figure1_module() -> Module {
    let mut bld = FuncBuilder::new("main");
    let a = bld.param();
    let b = bld.param();
    let c = bld.param();
    let n = bld.param();
    let i = bld.mov(Operand::Imm(0));
    let j = bld.mov(Operand::Imm(0));
    let k = bld.mov(Operand::Imm(0));
    let iter = bld.mov(Operand::Imm(0));

    let body = bld.block(); // loop header
    let l1 = bld.block();
    let l2 = bld.block();
    let l3 = bld.block();
    let then = bld.block();
    let jpp = bld.block();
    let kpp = bld.block();
    let latch = bld.block();
    let exit = bld.block();

    bld.jump(body);

    // body:      beq a,0,L1 ; beq b,0,L1 ; add j,j,1 ; jump L3
    bld.switch_to(body);
    bld.br(CmpOp::Eq, a.into(), Operand::Imm(0), l1);
    bld.jump(then);
    bld.switch_to(then);
    bld.br(CmpOp::Eq, b.into(), Operand::Imm(0), l1);
    bld.jump(jpp);
    bld.switch_to(jpp);
    let j2 = bld.add(j.into(), Operand::Imm(1));
    bld.mov_to(j, j2.into());
    bld.jump(l3);
    // L1:        bne c,0,L2 ; ... (paper's L1 tests c and falls to k--)
    bld.switch_to(l1);
    bld.br(CmpOp::Ne, c.into(), Operand::Imm(0), kpp);
    bld.jump(l2);
    bld.switch_to(kpp);
    let k2 = bld.add(k.into(), Operand::Imm(1));
    bld.mov_to(k, k2.into());
    bld.jump(l3);
    // L2:        sub k,k,1
    bld.switch_to(l2);
    let k3 = bld.sub(k.into(), Operand::Imm(1));
    bld.mov_to(k, k3.into());
    bld.jump(l3);
    // L3:        add i,i,1
    bld.switch_to(l3);
    let i2 = bld.add(i.into(), Operand::Imm(1));
    bld.mov_to(i, i2.into());
    bld.jump(latch);
    // latch: vary a,b,c; loop
    bld.switch_to(latch);
    // a cycles 0,1,2; b cycles 0..4; c toggles — every path gets hot.
    let a2 = bld.add(a.into(), Operand::Imm(1));
    let a3 = bld.op2(Op::Rem, a2.into(), Operand::Imm(3));
    let b2 = bld.add(b.into(), Operand::Imm(1));
    let b3 = bld.op2(Op::Rem, b2.into(), Operand::Imm(5));
    let c2 = bld.op2(Op::Xor, c.into(), Operand::Imm(1));
    bld.mov_to(a, a3.into());
    bld.mov_to(b, b3.into());
    bld.mov_to(c, c2.into());
    let it2 = bld.add(iter.into(), Operand::Imm(1));
    bld.mov_to(iter, it2.into());
    bld.br(CmpOp::Lt, iter.into(), n.into(), body);
    bld.jump(exit);
    bld.switch_to(exit);
    let r1 = bld.mul(j.into(), Operand::Imm(100));
    let r2 = bld.add(r1.into(), k.into());
    let r3 = bld.mul(i.into(), Operand::Imm(10000));
    let r4 = bld.add(r2.into(), r3.into());
    bld.ret(Some(r4.into()));

    let mut m = Module::new();
    m.push(bld.finish());
    m.link().unwrap();
    m.verify().unwrap();
    m
}

#[test]
fn figure1_converts_to_the_papers_shape() {
    let m0 = figure1_module();
    let args = [1i64, 1, 0, 40];
    let want = Emulator::new(&m0)
        .run("main", &args, &mut NullSink)
        .unwrap()
        .ret;
    let mut prof = Profiler::new();
    Emulator::new(&m0).run("main", &args, &mut prof).unwrap();

    let mut m = m0.clone();
    let formed = form_hyperblocks(
        &mut m.funcs[0],
        FuncId(0),
        &prof,
        &HyperblockConfig::default(),
    )
    .unwrap();
    assert!(formed >= 1, "the Fig. 1 region must convert");
    m.verify().unwrap();
    assert_eq!(
        Emulator::new(&m)
            .run("main", &args, &mut NullSink)
            .unwrap()
            .ret,
        want,
        "behaviour preserved"
    );

    // Find the hyperblock (the block containing predicate defines).
    let f = &m.funcs[0];
    let hb = f
        .layout
        .iter()
        .copied()
        .find(|&b| f.block(b).insts.iter().any(|i| i.op.is_pred_def()))
        .expect("a hyperblock was formed");
    let insts = &f.block(hb).insts;

    // 1. It starts with pred_clear (OR-type predicates in use).
    assert_eq!(insts[0].op, Op::PredClear, "{f}");

    // 2. The two `a==0` / `b==0` branches became pred_eq defines, the
    //    second guarded by the complement of the first (short-circuit),
    //    both OR-ing into the same predicate — exactly Fig. 1(c).
    let defs: Vec<_> = insts.iter().filter(|i| i.op.is_pred_def()).collect();
    assert!(defs.len() >= 3, "three defines as in Fig. 1(c):\n{f}");
    let or_targets: Vec<_> = defs
        .iter()
        .flat_map(|d| d.pdsts.iter())
        .filter(|pd| pd.ty == PredType::Or)
        .map(|pd| pd.reg)
        .collect();
    assert!(
        or_targets.len() >= 2 && or_targets.iter().all(|&p| p == or_targets[0]),
        "both short-circuit exits OR into one predicate (p1):\n{f}"
    );
    // One of the OR defines is guarded (the second || term).
    assert!(
        defs.iter()
            .any(|d| d.guard.is_some() && d.pdsts.iter().any(|pd| pd.ty == PredType::Or)),
        "the second pred_eq is predicated on the first's complement:\n{f}"
    );
    // Complement (!U) destinations ride along on the same defines.
    assert!(
        defs.iter()
            .any(|d| d.pdsts.iter().any(|pd| pd.ty == PredType::UBar)),
        "dual-destination define with a complement:\n{f}"
    );

    // 3. j++, k++, k-- are all guarded; i++ is NOT (control equivalent).
    let guarded_adds = insts
        .iter()
        .filter(|i| matches!(i.op, Op::Add | Op::Sub) && i.guard.is_some())
        .count();
    assert!(guarded_adds >= 3, "the three arms are predicated:\n{f}");
    // The i++ chain: an unguarded add of 1 must exist inside the
    // hyperblock (the paper's final `add i,i,1`).
    assert!(
        insts.iter().any(|i| i.op == Op::Add
            && i.guard.is_none()
            && i.srcs.get(1) == Some(&Operand::Imm(1))),
        "i++ executes unconditionally:\n{f}"
    );

    // 4. The inner branches are gone: the only remaining branches leave
    //    the region (the loop back edge / exit).
    for inst in insts {
        if inst.op.is_branch() {
            assert!(
                inst.target == Some(hb) || f.layout_pos(inst.target.unwrap()).is_some(),
                "remaining branches are exits"
            );
        }
    }
}

#[test]
fn figure1_is_correct_on_all_paths() {
    // Drive every (a, b, c) combination through original and converted
    // code.
    let m0 = figure1_module();
    let mut prof = Profiler::new();
    Emulator::new(&m0)
        .run("main", &[1, 1, 0, 40], &mut prof)
        .unwrap();
    let mut m = m0.clone();
    form_hyperblocks(
        &mut m.funcs[0],
        FuncId(0),
        &prof,
        &HyperblockConfig::default(),
    )
    .unwrap();
    for a in [0i64, 1] {
        for b in [0i64, 1] {
            for c in [0i64, 1] {
                let args = [a, b, c, 25];
                let want = Emulator::new(&m0)
                    .run("main", &args, &mut NullSink)
                    .unwrap()
                    .ret;
                let got = Emulator::new(&m)
                    .run("main", &args, &mut NullSink)
                    .unwrap()
                    .ret;
                assert_eq!(got, want, "a={a} b={b} c={c}");
            }
        }
    }
}
