//! Stage-by-stage differential testing of the whole compilation pipeline
//! over every workload: each pass must preserve the program result.

use hyperpred_emu::{Emulator, NullSink, Profiler};
use hyperpred_hyperblock::{
    form_hyperblocks, form_superblocks, promote, HyperblockConfig, SuperblockConfig,
};
use hyperpred_ir::{FuncId, Module};
use hyperpred_lang::lower::entry_args;
use hyperpred_workloads::{all, Scale};

fn run(m: &Module, args: &[i64]) -> i64 {
    Emulator::new(m)
        .run("main", &entry_args(args), &mut NullSink)
        .unwrap_or_else(|e| panic!("runtime error: {e}"))
        .ret
}

fn profile(m: &Module, args: &[i64]) -> Profiler {
    let mut prof = Profiler::new();
    Emulator::new(m)
        .run("main", &entry_args(args), &mut prof)
        .unwrap();
    prof
}

#[test]
fn superblock_stage_preserves_all_workloads() {
    for w in all(Scale::Test) {
        let mut m = hyperpred_lang::compile(&w.source).unwrap();
        hyperpred_opt::optimize_module(&mut m);
        let want = run(&m, &w.args);
        let prof = profile(&m, &w.args);
        for i in 0..m.funcs.len() {
            let mut f = m.funcs[i].clone();
            form_superblocks(
                &mut f,
                FuncId(i as u32),
                &prof,
                &SuperblockConfig::default(),
            );
            m.funcs[i] = f;
        }
        m.verify().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            run(&m, &w.args),
            want,
            "{}: superblock formation diverged",
            w.name
        );
        // Post-formation cleanup must also be safe.
        hyperpred_opt::optimize_module(&mut m);
        assert_eq!(
            run(&m, &w.args),
            want,
            "{}: post-superblock opt diverged",
            w.name
        );
        // Scheduling (the speculation pass) must be safe at several widths.
        for (k, b) in [(1, 1), (4, 1), (8, 1), (8, 2)] {
            let mut sm = m.clone();
            hyperpred_sched::schedule_module(&mut sm, &hyperpred_sched::MachineConfig::new(k, b))
                .unwrap();
            assert_eq!(
                run(&sm, &w.args),
                want,
                "{}: superblock scheduling diverged at {k}-issue {b}-branch",
                w.name
            );
        }
    }
}

#[test]
fn hyperblock_stage_preserves_all_workloads() {
    for w in all(Scale::Test) {
        let mut m = hyperpred_lang::compile(&w.source).unwrap();
        hyperpred_opt::optimize_module(&mut m);
        let want = run(&m, &w.args);
        let prof = profile(&m, &w.args);
        for i in 0..m.funcs.len() {
            let mut f = m.funcs[i].clone();
            form_hyperblocks(
                &mut f,
                FuncId(i as u32),
                &prof,
                &HyperblockConfig::default(),
            )
            .unwrap();
            m.funcs[i] = f;
        }
        m.verify().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(run(&m, &w.args), want, "{}: if-conversion diverged", w.name);
        for i in 0..m.funcs.len() {
            let mut f = m.funcs[i].clone();
            promote(&mut f);
            m.funcs[i] = f;
        }
        assert_eq!(run(&m, &w.args), want, "{}: promotion diverged", w.name);
        hyperpred_opt::optimize_module(&mut m);
        assert_eq!(
            run(&m, &w.args),
            want,
            "{}: post-hyperblock opt diverged",
            w.name
        );
        for (k, b) in [(1, 1), (8, 1)] {
            let mut sm = m.clone();
            hyperpred_sched::schedule_module(&mut sm, &hyperpred_sched::MachineConfig::new(k, b))
                .unwrap();
            assert_eq!(
                run(&sm, &w.args),
                want,
                "{}: hyperblock scheduling diverged at {k}-issue",
                w.name
            );
        }
    }
}

#[test]
fn partial_stage_preserves_all_workloads() {
    use hyperpred_partial::{to_partial_module, PartialConfig};
    for w in all(Scale::Test) {
        let mut m = hyperpred_lang::compile(&w.source).unwrap();
        hyperpred_opt::optimize_module(&mut m);
        let want = run(&m, &w.args);
        let prof = profile(&m, &w.args);
        for i in 0..m.funcs.len() {
            let mut f = m.funcs[i].clone();
            form_hyperblocks(
                &mut f,
                FuncId(i as u32),
                &prof,
                &HyperblockConfig::default(),
            )
            .unwrap();
            promote(&mut f);
            m.funcs[i] = f;
        }
        to_partial_module(&mut m, &PartialConfig::default());
        m.verify().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            run(&m, &w.args),
            want,
            "{}: partial conversion diverged",
            w.name
        );
        hyperpred_opt::optimize_module(&mut m);
        let mut sm = m.clone();
        hyperpred_sched::schedule_module(&mut sm, &hyperpred_sched::MachineConfig::new(8, 1))
            .unwrap();
        assert_eq!(
            run(&sm, &w.args),
            want,
            "{}: partial scheduling diverged",
            w.name
        );
    }
}
