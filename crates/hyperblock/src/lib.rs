//! Region formation: superblocks and hyperblocks.
//!
//! This crate implements the paper's two profile-driven region formation
//! strategies plus predicate promotion:
//!
//! * [`superblock`] — trace selection and tail duplication producing
//!   single-entry multiple-exit linear regions *without* predication
//!   (the paper's baseline, per Hwu et al., "The Superblock").
//! * [`ifconvert`] — hyperblock formation: profile-guided block selection
//!   over an acyclic region followed by RK-style if-conversion onto
//!   predicate defines (Mahlke et al., MICRO-25), producing fully
//!   predicated single-block regions with explicit (possibly predicated)
//!   exit branches.
//! * [`promote()`](promote::promote) — predicate promotion (paper Fig. 2): speculating
//!   predicated instructions whose destinations are compiler temporaries,
//!   shortening predicate dependence chains and, for the partial-predication
//!   model, drastically reducing the number of conditional moves needed.

pub mod ifconvert;
pub mod promote;
pub mod superblock;
pub mod unroll;

pub use ifconvert::{form_hyperblocks, HyperblockConfig};
pub use promote::{promote, promote_bounded};
pub use superblock::{form_superblocks, SuperblockConfig};
pub use unroll::{unroll_self_loops, UnrollConfig};

use std::fmt;

/// A transformation stopped because it would exceed a configured growth
/// budget. Budgets bound compile-time and code-size blowup on adversarial
/// inputs: the caller can retry with the offending transformation disabled
/// (the pipeline's degradation ladder) instead of hanging or exploding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthBudget {
    /// Transformation that tripped ("unroll", "ifconvert", "promote").
    pub pass: &'static str,
    /// What was being bounded (e.g. "grown-insts", "formed-regions").
    pub metric: &'static str,
    /// The value the metric reached.
    pub value: u64,
    /// The configured limit it exceeded.
    pub limit: u64,
}

impl fmt::Display for GrowthBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} growth budget exceeded: {} = {} > limit {}",
            self.pass, self.metric, self.value, self.limit
        )
    }
}

impl std::error::Error for GrowthBudget {}
