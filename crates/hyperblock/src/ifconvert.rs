//! Hyperblock formation by if-conversion.
//!
//! A hyperblock is a single-entry, multiple-exit region in which all
//! internal control flow has been converted to predication (Mahlke et al.,
//! MICRO-25; §3.1 of the paper). This pass:
//!
//! 1. Picks candidate regions — innermost natural loop bodies (where the
//!    benchmarks spend their time), or the whole function when it is
//!    acyclic.
//! 2. Selects blocks by profile heuristics: execution ratio versus the
//!    header, a size budget, and exclusion of hazardous blocks (calls,
//!    returns). The selected set is closed so the region stays
//!    single-entry.
//! 3. If-converts: each internal branch becomes a predicate define with up
//!    to two typed destinations (taken predicate + fall-through complement,
//!    U-type for single-reaching-edge blocks and OR-type for merge points),
//!    each selected block's instructions are guarded by the block
//!    predicate, and edges leaving the region become (predicated) exit
//!    branches. The result is one linear block.

use hyperpred_emu::Profiler;
use hyperpred_ir::{
    BlockId, Cfg, CmpOp, DomTree, FuncId, Function, Inst, LoopForest, Op, Operand, PredReg,
    PredType,
};
use std::collections::HashMap;

/// Tunables for hyperblock formation.
#[derive(Debug, Clone, Copy)]
pub struct HyperblockConfig {
    /// Minimum `count(block) / count(header)` for inclusion.
    pub min_exec_ratio: f64,
    /// Maximum number of instructions in the merged hyperblock.
    pub max_insts: usize,
    /// Maximum number of blocks considered per region.
    pub max_blocks: usize,
    /// Maximum regions converted per function before the pass refuses with
    /// a typed [`GrowthBudget`](crate::GrowthBudget) error (each conversion
    /// restarts CFG/dominator/loop analysis, so this bounds compile time).
    pub max_regions: usize,
    /// Total instructions formation may add to one function (tail
    /// duplication of side entrances) before refusing with a typed
    /// [`GrowthBudget`](crate::GrowthBudget) error.
    pub max_growth_insts: usize,
}

impl Default for HyperblockConfig {
    fn default() -> HyperblockConfig {
        HyperblockConfig {
            min_exec_ratio: 0.04,
            max_insts: 400,
            max_blocks: 48,
            max_regions: 256,
            max_growth_insts: 20_000,
        }
    }
}

/// Forms hyperblocks in `f`, returning how many regions were converted, or
/// a typed [`GrowthBudget`](crate::GrowthBudget) error when formation
/// exceeds the configured region-count or code-growth budgets.
pub fn form_hyperblocks(
    f: &mut Function,
    fid: FuncId,
    prof: &Profiler,
    config: &HyperblockConfig,
) -> Result<usize, crate::GrowthBudget> {
    debug_assert!(f.is_basic(), "hyperblock formation requires basic blocks");
    let start_size = f.size();
    let mut formed = 0usize;
    // Convert one region at a time; each conversion invalidates the CFG.
    loop {
        if formed >= config.max_regions {
            return Err(crate::GrowthBudget {
                pass: "ifconvert",
                metric: "formed-regions",
                value: formed as u64 + 1,
                limit: config.max_regions as u64,
            });
        }
        let size = f.size();
        if size > start_size + config.max_growth_insts {
            return Err(crate::GrowthBudget {
                pass: "ifconvert",
                metric: "grown-insts",
                value: (size - start_size) as u64,
                limit: config.max_growth_insts as u64,
            });
        }
        let cfg = Cfg::new(f);
        let doms = DomTree::new(&cfg);
        let loops = LoopForest::new(&cfg, &doms);
        // Candidate regions: every natural loop body. Blocks belonging to
        // a *nested* loop are excluded from the outer region's selection
        // (an inner loop is first converted into its own hyperblock, which
        // then appears to the outer region as a hazardous single block).
        let mut regions: Vec<(BlockId, Vec<BlockId>, Vec<BlockId>)> = loops
            .loops
            .iter()
            .filter(|l| l.body.len() > 1)
            .map(|l| {
                let nested: Vec<BlockId> = loops
                    .loops
                    .iter()
                    .filter(|inner| inner.header != l.header && l.contains(inner.header))
                    .flat_map(|inner| inner.body.iter().copied())
                    .collect();
                (l.header, l.body.clone(), nested)
            })
            .collect();
        if loops.loops.is_empty() && f.layout.len() > 1 {
            // Acyclic function: the whole body is one region.
            regions.push((f.entry(), f.layout.clone(), Vec::new()));
        }
        // Innermost (smallest) regions first so inner loops become
        // hyperblocks before their enclosing loops are attempted.
        regions
            .sort_by_key(|(h, body, _)| (body.len(), std::cmp::Reverse(prof.block_count(fid, *h))));
        let mut converted = false;
        for (header, body, nested) in regions {
            if convert_region(f, fid, prof, header, &body, &nested, config) {
                formed += 1;
                converted = true;
                break; // CFG changed; restart analysis.
            }
        }
        if !converted {
            break;
        }
    }
    f.remove_unreachable();
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "if-conversion broke {}: {:?}",
        f.name,
        hyperpred_ir::verify::verify_function(f).err()
    );
    // In debug builds, also hold the converted function to the semantic
    // rules: every read defined on all paths, predicates well-formed.
    #[cfg(debug_assertions)]
    {
        use hyperpred_ir::analysis::{check_function, ModelClass};
        let vs = check_function(f, ModelClass::FullPred);
        assert!(vs.is_empty(), "if-conversion broke {}: {vs:#?}", f.name);
    }
    Ok(formed)
}

/// The outgoing edges of a basic block.
#[derive(Debug, Clone)]
enum Out {
    None,
    Uncond(BlockId),
    /// Conditional: comparison, operands, taken target, other target.
    Cond(CmpOp, Vec<Operand>, BlockId, BlockId),
}

fn out_edges(f: &Function, b: BlockId) -> Out {
    let insts = &f.block(b).insts;
    let n = insts.len();
    if n >= 2 {
        if let (Op::Br(c), Op::Jump) = (insts[n - 2].op, insts[n - 1].op) {
            let t = insts[n - 2].target.unwrap();
            let u = insts[n - 1].target.unwrap();
            if t == u {
                return Out::Uncond(t);
            }
            return Out::Cond(c, insts[n - 2].srcs.clone(), t, u);
        }
    }
    match insts.last().map(|i| i.op) {
        Some(Op::Br(c)) => {
            let t = insts.last().unwrap().target.unwrap();
            match f.layout_next(b) {
                Some(u) if u != t => Out::Cond(c, insts.last().unwrap().srcs.clone(), t, u),
                _ => Out::Uncond(t),
            }
        }
        Some(Op::Jump) => Out::Uncond(insts.last().unwrap().target.unwrap()),
        Some(Op::Ret) | Some(Op::Halt) => Out::None,
        _ => match f.layout_next(b) {
            Some(u) => Out::Uncond(u),
            None => Out::None,
        },
    }
}

fn hazardous(f: &Function, b: BlockId) -> bool {
    let insts = &f.block(b).insts;
    let n = insts.len();
    // Mid-block exits (superblocks, hand-built irregular code) cannot be
    // if-converted: `out_edges` only understands basic-block terminators.
    let basic = insts.iter().enumerate().all(|(i, inst)| {
        !inst.is_exit()
            || i + 1 == n
            || (i + 2 == n && matches!(inst.op, Op::Br(_)) && insts[n - 1].op.ends_block())
    });
    !basic
        || insts.iter().any(|i| {
            matches!(i.op, Op::Ret | Op::Halt | Op::Call)
                // Already-predicated code (an earlier hyperblock) is never
                // re-converted.
                || i.guard.is_some()
                || i.op.is_pred_def()
                || matches!(i.op, Op::PredClear | Op::PredSet)
        })
}

/// Removes side entrances into `selected` by duplicating the selected
/// subgraph reachable from entered blocks and rewiring every unselected
/// predecessor to the copies. Returns false if the region should be
/// abandoned (pathological shapes).
fn duplicate_side_entrances(f: &mut Function, header: BlockId, selected: &[BlockId]) -> bool {
    for _round in 0..4 {
        let preds = f.preds();
        // Blocks (other than the header) entered from outside the selection.
        let entered: Vec<BlockId> = selected
            .iter()
            .copied()
            .filter(|&b| b != header && preds[b.index()].iter().any(|p| !selected.contains(p)))
            .collect();
        if entered.is_empty() {
            return true;
        }
        // The duplication set: everything reachable from the entered blocks
        // through selected blocks (the header re-entry stays shared).
        let mut dup: Vec<BlockId> = Vec::new();
        let mut stack = entered.clone();
        while let Some(b) = stack.pop() {
            if dup.contains(&b) {
                continue;
            }
            dup.push(b);
            for s in f.succs(b) {
                if s != header && selected.contains(&s) && !dup.contains(&s) {
                    stack.push(s);
                }
            }
        }
        // Clone the subgraph.
        let mut clone_of: HashMap<BlockId, BlockId> = HashMap::new();
        for &d in &dup {
            let c = f.add_block();
            clone_of.insert(d, c);
        }
        for &d in &dup {
            // Record the fall-through target before cloning.
            let fall = if f.block(d).ends_explicitly() {
                None
            } else {
                f.layout_next(d)
            };
            let insts: Vec<Inst> = f.block(d).insts.clone();
            let mut cloned = Vec::with_capacity(insts.len() + 1);
            for inst in &insts {
                let mut ci = f.clone_inst(inst);
                if let Some(t) = ci.target {
                    if let Some(&ct) = clone_of.get(&t) {
                        ci.target = Some(ct);
                    }
                }
                cloned.push(ci);
            }
            // Clones live at the end of the layout: make the fall-through
            // explicit.
            if let Some(fall) = fall {
                let target = clone_of.get(&fall).copied().unwrap_or(fall);
                let mut j = f.make_inst(Op::Jump);
                j.target = Some(target);
                cloned.push(j);
            }
            let c = clone_of[&d];
            f.block_mut(c).insts = cloned;
        }
        // Rewire every cold edge into the copies.
        for &t in &entered {
            let ct = clone_of[&t];
            let sources: Vec<BlockId> = preds[t.index()]
                .iter()
                .copied()
                .filter(|p| !selected.contains(p))
                .collect();
            for p in sources {
                // Fall-through entry: append an explicit jump first.
                if !f.block(p).ends_explicitly() && f.layout_next(p) == Some(t) {
                    let mut j = f.make_inst(Op::Jump);
                    j.target = Some(ct);
                    f.block_mut(p).insts.push(j);
                }
                for inst in &mut f.block_mut(p).insts {
                    if inst.op.is_branch() && inst.target == Some(t) {
                        inst.target = Some(ct);
                    }
                }
            }
        }
    }
    // Still not single-entry after several rounds: give up on this region.
    false
}

/// Attempts to if-convert one region; returns true if it did.
fn convert_region(
    f: &mut Function,
    fid: FuncId,
    prof: &Profiler,
    header: BlockId,
    body: &[BlockId],
    nested: &[BlockId],
    config: &HyperblockConfig,
) -> bool {
    if body.len() > config.max_blocks || hazardous(f, header) || nested.contains(&header) {
        return false;
    }
    let hcount = prof.block_count(fid, header).max(1);
    // --- Block selection -------------------------------------------------
    let mut selected: Vec<BlockId> = body
        .iter()
        .copied()
        .filter(|&b| {
            b == header
                || (!hazardous(f, b)
                    && !nested.contains(&b)
                    && prof.block_count(fid, b) as f64 / hcount as f64 >= config.min_exec_ratio)
        })
        .collect();
    if !selected.contains(&header) {
        return false;
    }
    // Size budget: drop the coldest blocks until the region fits.
    loop {
        let total: usize = selected.iter().map(|&b| f.block(b).insts.len()).sum();
        if total <= config.max_insts {
            break;
        }
        let Some(&coldest) = selected
            .iter()
            .filter(|&&b| b != header)
            .min_by_key(|&&b| prof.block_count(fid, b))
        else {
            return false;
        };
        selected.retain(|&b| b != coldest);
    }
    // Side entrances: an unselected block (a cold path we excluded) may
    // branch back into a selected block. Instead of dropping the selected
    // block (which would cascade through every join), tail-duplicate the
    // selected subgraph reachable from the entered blocks and rewire the
    // cold edges to the copies — the classic hyperblock formation step.
    if !duplicate_side_entrances(f, header, &selected) {
        return false;
    }
    if selected.len() < 2 {
        return false;
    }
    // Coverage: if the selection misses most of the region's dynamic
    // weight (calls or returns dominate the hot path), if-conversion only
    // fragments the code; leave the region to superblock formation.
    let weight = |bs: &[BlockId]| -> u64 {
        bs.iter()
            .map(|&b| prof.block_count(fid, b) * f.block(b).insts.len() as u64)
            .sum()
    };
    let region_weight = weight(body).max(1);
    if (weight(&selected) as f64) < 0.5 * region_weight as f64 {
        return false;
    }

    // --- Topological order over in-region forward edges ------------------
    let in_s = |b: BlockId| selected.contains(&b);
    let fwd_succs = |b: BlockId| -> Vec<BlockId> {
        match out_edges(f, b) {
            Out::None => vec![],
            Out::Uncond(t) => vec![t],
            Out::Cond(_, _, t, u) => vec![t, u],
        }
        .into_iter()
        .filter(|&t| in_s(t) && t != header)
        .collect()
    };
    let mut indeg: HashMap<BlockId, usize> = selected.iter().map(|&b| (b, 0)).collect();
    for &b in &selected {
        for t in fwd_succs(b) {
            *indeg.get_mut(&t).unwrap() += 1;
        }
    }
    // Kahn's algorithm starting from the header. If it does not cover the
    // whole selection (an internal cycle not through the header, or a block
    // unreachable within the region), bail out.
    let mut topo: Vec<BlockId> = Vec::with_capacity(selected.len());
    let mut remaining = indeg.clone();
    let mut worklist = std::collections::VecDeque::from([header]);
    while let Some(b) = worklist.pop_front() {
        topo.push(b);
        for t in fwd_succs(b) {
            let d = remaining.get_mut(&t).unwrap();
            *d -= 1;
            if *d == 0 {
                worklist.push_back(t);
            }
        }
    }
    if topo.len() != selected.len() {
        return false;
    }

    // --- Control-dependence predicate assignment -------------------------
    //
    // Post-dominance is computed over the *in-region* graph with exit
    // edges removed: the emitted exit branches perform that filtering at
    // run time, so predicates only encode conditions among branches that
    // stay inside the region. This is what leaves join points and
    // single-successor loop bodies unguarded — exactly the paper's
    // Figure 1, where `add i,i,1` executes unconditionally.
    //
    // A block is control-dependent on edge (u -> v) when it post-dominates
    // v but not u (Ferrante-Ottenstein-Warren); blocks with equal
    // control-dependence sets share one predicate (RK assignment); a block
    // with an empty set is control-equivalent to the header and needs no
    // predicate.
    let n_sel = topo.len();
    let idx_of: HashMap<BlockId, usize> = topo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let sink = n_sel; // virtual exit node
    let mut succs_g: Vec<Vec<usize>> = vec![Vec::new(); n_sel + 1];
    for (i, &b) in topo.iter().enumerate() {
        let fs = fwd_succs(b);
        if fs.is_empty() {
            succs_g[i].push(sink);
        } else {
            for t in fs {
                succs_g[i].push(idx_of[&t]);
            }
        }
    }
    // Immediate post-dominators (Cooper-Harvey-Kennedy over the reversed
    // DAG; rank 0 = sink).
    let rank = |x: usize| if x == sink { 0 } else { n_sel - x };
    let mut ipdom: Vec<Option<usize>> = vec![None; n_sel + 1];
    ipdom[sink] = Some(sink);
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n_sel).rev() {
            let mut new: Option<usize> = None;
            for &sux in &succs_g[i] {
                if sux != sink && ipdom[sux].is_none() {
                    continue;
                }
                new = Some(match new {
                    None => sux,
                    Some(cur) => {
                        let (mut x, mut y) = (cur, sux);
                        while x != y {
                            while rank(x) > rank(y) {
                                x = ipdom[x].expect("ranked nodes have ipdoms");
                            }
                            while rank(y) > rank(x) {
                                y = ipdom[y].expect("ranked nodes have ipdoms");
                            }
                        }
                        x
                    }
                });
            }
            if ipdom[i] != new {
                ipdom[i] = new;
                changed = true;
            }
        }
    }
    // Control-dependence sets: (source block index, taken-side?) pairs.
    let mut cd: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n_sel];
    for (i, &b) in topo.iter().enumerate() {
        let Out::Cond(_, _, t, u) = out_edges(f, b) else {
            continue;
        };
        let stop = ipdom[i].expect("every region block reaches the sink");
        for (dest, kind) in [(t, true), (u, false)] {
            if !in_s(dest) || dest == header {
                continue;
            }
            let mut w = idx_of[&dest];
            while w != stop {
                cd[w].push((i, kind));
                w = ipdom[w].expect("walk ends at ipdom(u)");
            }
        }
    }
    for set in &mut cd {
        set.sort_unstable();
        set.dedup();
    }
    // One predicate per distinct nonempty set.
    let mut pred_for_set: HashMap<Vec<(usize, bool)>, PredReg> = HashMap::new();
    let mut pred_of: HashMap<BlockId, Option<PredReg>> = HashMap::new();
    pred_of.insert(header, None);
    let mut any_or = false;
    for (i, &b) in topo.iter().enumerate() {
        if i == 0 {
            continue;
        }
        if cd[i].is_empty() {
            pred_of.insert(b, None);
        } else {
            if cd[i].len() > 1 {
                any_or = true;
            }
            let p = *pred_for_set
                .entry(cd[i].clone())
                .or_insert_with(|| f.fresh_pred());
            pred_of.insert(b, Some(p));
        }
    }
    // Defines required per (source block, side): each distinct set
    // containing that edge contributes one typed destination.
    let mut defs_at: HashMap<(usize, bool), Vec<hyperpred_ir::PredDst>> = HashMap::new();
    for (set, &p) in &pred_for_set {
        let or_type = set.len() > 1;
        for &(u, kind) in set {
            let ty = match (or_type, kind) {
                (false, true) => PredType::U,
                (false, false) => PredType::UBar,
                (true, true) => PredType::Or,
                (true, false) => PredType::OrBar,
            };
            defs_at
                .entry((u, kind))
                .or_default()
                .push(hyperpred_ir::PredDst::new(p, ty));
        }
    }

    // --- Emission ----------------------------------------------------------
    let mut out: Vec<Inst> = Vec::new();
    if any_or {
        let clear = f.make_inst(Op::PredClear);
        out.push(clear);
    }
    for (i, &b) in topo.iter().enumerate() {
        let guard = pred_of[&b];
        let edges = out_edges(f, b);
        // Body instructions (minus terminators).
        let insts = std::mem::take(&mut f.block_mut(b).insts);
        let term_count = match edges {
            Out::None => 1,
            _ => {
                let n = insts.len();
                let mut k = 0;
                if n >= 1 && insts[n - 1].is_exit() {
                    k += 1;
                }
                if n >= 2 && matches!(insts[n - 2].op, Op::Br(_)) {
                    k += 1;
                }
                k
            }
        };
        let body_len = insts.len() - term_count.min(insts.len());
        for mut inst in insts.into_iter().take(body_len) {
            debug_assert!(inst.guard.is_none(), "if-converting already-guarded code");
            inst.guard = guard;
            out.push(inst);
        }
        // Edges.
        match edges {
            Out::None => unreachable!("hazardous blocks are excluded"),
            Out::Uncond(t) => {
                if !in_s(t) || t == header {
                    let mut j = f.make_inst(Op::Jump);
                    j.target = Some(t);
                    j.guard = guard;
                    out.push(j);
                }
                // In-region unconditional edges generate nothing: the
                // destination's predicate (if any) is defined elsewhere.
            }
            Out::Cond(c, srcs, t, u) => {
                // Predicate defines for blocks control-dependent on this
                // branch; a taken-side and a fall-side destination share
                // one dual-destination define.
                let mut taken_dsts = defs_at.get(&(i, true)).cloned().unwrap_or_default();
                let mut fall_dsts = defs_at.get(&(i, false)).cloned().unwrap_or_default();
                while !taken_dsts.is_empty() || !fall_dsts.is_empty() {
                    let mut pdsts = Vec::with_capacity(2);
                    if let Some(d) = taken_dsts.pop() {
                        pdsts.push(d);
                    }
                    if let Some(d) = fall_dsts.pop() {
                        pdsts.push(d);
                    }
                    let mut d = f.make_inst(Op::PredDef(c));
                    d.srcs = srcs.clone();
                    d.pdsts = pdsts;
                    d.guard = guard;
                    out.push(d);
                }
                // Exit branches for edges leaving the region (or looping
                // back to the header).
                if !in_s(t) || t == header {
                    let mut br = f.make_inst(Op::Br(c));
                    br.srcs = srcs.clone();
                    br.target = Some(t);
                    br.guard = guard;
                    out.push(br);
                }
                if !in_s(u) || u == header {
                    let mut br = f.make_inst(Op::Br(c.inverse()));
                    br.srcs = srcs.clone();
                    br.target = Some(u);
                    br.guard = guard;
                    out.push(br);
                }
            }
        }
    }
    // By construction exactly one exit fires on every traversal, so the end
    // of the hyperblock is unreachable; `halt` is a structural sentinel for
    // the verifier.
    if !out.last().is_some_and(|i| i.ends_block()) {
        let h = f.make_inst(Op::Halt);
        out.push(h);
    }
    f.block_mut(header).insts = out;
    // Remove the other selected blocks from the layout.
    f.layout.retain(|&b| b == header || !selected.contains(&b));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{DynStats, Emulator, NullSink};
    use hyperpred_lang::compile;
    use hyperpred_lang::lower::entry_args;
    use hyperpred_opt::optimize_module;

    fn profile(m: &hyperpred_ir::Module, args: &[i64]) -> Profiler {
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(m);
        emu.run("main", &entry_args(args), &mut prof).unwrap();
        prof
    }

    fn form_all(m: &mut hyperpred_ir::Module, prof: &Profiler) -> usize {
        let mut formed = 0;
        for i in 0..m.funcs.len() {
            let fid = FuncId(i as u32);
            let mut f = m.funcs[i].clone();
            formed += form_hyperblocks(&mut f, fid, prof, &HyperblockConfig::default()).unwrap();
            m.funcs[i] = f;
        }
        formed
    }

    fn check(src: &str, args: &[i64]) -> (i64, DynStats, DynStats) {
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let want = {
            let mut emu = Emulator::new(&m);
            emu.run("main", &entry_args(args), &mut NullSink)
                .unwrap()
                .ret
        };
        let mut s0 = DynStats::new();
        Emulator::new(&m)
            .run("main", &entry_args(args), &mut s0)
            .unwrap();
        let prof = profile(&m, args);
        let formed = form_all(&mut m, &prof);
        assert!(formed > 0, "no hyperblocks formed for:\n{src}");
        m.verify().unwrap_or_else(|e| panic!("verify: {e}\n{}", m));
        let mut s1 = DynStats::new();
        let got = Emulator::new(&m)
            .run("main", &entry_args(args), &mut s1)
            .unwrap()
            .ret;
        assert_eq!(got, want, "if-conversion changed behaviour:\n{src}\n{m}");
        (got, s0, s1)
    }

    #[test]
    fn simple_diamond_is_converted() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i += 1) {
                if (i % 2 == 0) s += 3; else s += 1;
            }
            return s;
        }";
        let (_, s0, s1) = check(src, &[]);
        assert!(
            s1.cond_branches < s0.cond_branches,
            "if-conversion should remove branches: {} -> {}",
            s0.cond_branches,
            s1.cond_branches
        );
        assert!(s1.pred_defs > 0, "must use predicate defines");
        assert!(s1.nullified > 0, "some instructions must be nullified");
    }

    #[test]
    fn figure1_nested_if_converts() {
        // The paper's Figure 1 source shape.
        let src = "int main(int a, int b, int c) {
            int i; int j; int k; i = 0; j = 0; k = 0;
            int n;
            for (n = 0; n < 50; n += 1) {
                if (a != 0 && b != 0) j += 1;
                else if (c != 0) k += 1;
                else k -= 1;
                i += 1;
                a = (a + 1) % 3; b = (b + 2) % 5; c = (c + 1) % 2;
            }
            return i * 10000 + j * 100 + k;
        }";
        let (_, s0, s1) = check(src, &[1, 1, 0]);
        assert!(s1.cond_branches < s0.cond_branches);
    }

    #[test]
    fn or_type_merge_point() {
        // Both arms flow into shared code: the join block has two in-edges
        // and needs an OR-type predicate.
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 64; i += 1) {
                int t; t = 0;
                if (i % 4 == 0) t = 2; else t = 5;
                s += t * 3 + 1; // join-point code under an OR predicate
            }
            return s;
        }";
        check(src, &[]);
    }

    #[test]
    fn loop_with_internal_break_keeps_exits() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 1000; i += 1) {
                s += i;
                if (s > 300) break;
            }
            return s + i;
        }";
        check(src, &[]);
    }

    #[test]
    fn calls_are_excluded_from_hyperblocks() {
        let src = "int f(int x) { return x + 1; }
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 40; i += 1) {
                if (i % 8 == 0) s += f(i);  // cold path with call
                else s += 1;
            }
            return s;
        }";
        // Must still convert *something* (the hot diamond around the call
        // block may collapse), and must stay correct.
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let want = Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut NullSink)
            .unwrap()
            .ret;
        let prof = profile(&m, &[]);
        form_all(&mut m, &prof);
        m.verify().unwrap();
        // Call must never be guarded.
        for f in &m.funcs {
            for (_, _, inst) in f.insts() {
                if inst.op == Op::Call {
                    assert!(inst.guard.is_none(), "calls must not be predicated");
                }
            }
        }
        let got = Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut NullSink)
            .unwrap()
            .ret;
        assert_eq!(got, want);
    }

    #[test]
    fn deeply_nested_conditions() {
        let src = "int main(int a) {
            int i; int s; s = 0;
            for (i = 0; i < 128; i += 1) {
                int x; x = (i * 7 + a) % 16;
                if (x < 8) {
                    if (x < 4) { if (x < 2) s += 1; else s += 2; }
                    else s += 3;
                } else {
                    if (x >= 12) s += 4; else s += 5;
                }
            }
            return s;
        }";
        let (_, s0, s1) = check(src, &[3]);
        assert!(s1.cond_branches < s0.cond_branches);
    }

    #[test]
    fn stores_are_predicated_correctly() {
        let src = "int out[64];
        int main() {
            int i;
            for (i = 0; i < 64; i += 1) {
                if (i % 3 == 0) out[i] = i * 2;
                else out[i] = i + 100;
            }
            int s; int j; s = 0;
            for (j = 0; j < 64; j += 1) s = s * 3 + out[j];
            return s;
        }";
        check(src, &[]);
    }
}
