//! Superblock formation: profile-driven trace selection, tail duplication,
//! and trace merging.
//!
//! A superblock is a single-entry, multiple-exit linear region. This pass
//! builds them in three steps (Hwu et al., *The Superblock*, 1993 — the
//! paper's baseline compilation strategy):
//!
//! 1. **Trace selection** — grow a trace from the hottest unvisited block
//!    along the most likely successor edges.
//! 2. **Tail duplication** — copy the trace suffix reached by any side
//!    entrance so the trace becomes single-entry.
//! 3. **Merging** — collapse the trace into one block; internal branches
//!    become mid-block exit branches.

use hyperpred_emu::Profiler;
use hyperpred_ir::{BlockId, FuncId, Function, Inst, Op};
use std::collections::HashMap;

/// Tunables for trace selection.
#[derive(Debug, Clone, Copy)]
pub struct SuperblockConfig {
    /// Minimum execution count for a block to seed or join a trace.
    pub min_count: u64,
    /// Minimum edge probability to extend a trace.
    pub min_prob: f64,
    /// Maximum number of instructions in a merged superblock.
    pub max_insts: usize,
}

impl Default for SuperblockConfig {
    fn default() -> SuperblockConfig {
        SuperblockConfig {
            min_count: 1,
            min_prob: 0.60,
            max_insts: 512,
        }
    }
}

/// Forms superblocks in `f` using `prof`. Returns the number of traces
/// merged (traces of length ≥ 2).
pub fn form_superblocks(
    f: &mut Function,
    fid: FuncId,
    prof: &Profiler,
    config: &SuperblockConfig,
) -> usize {
    let traces = select_traces(f, fid, prof, config);
    let mut formed = 0;
    for trace in traces {
        if trace.len() < 2 {
            continue;
        }
        let trace = tail_duplicate(f, &trace);
        merge_trace(f, &trace);
        formed += 1;
    }
    f.remove_unreachable();
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "superblock formation broke {}: {:?}",
        f.name,
        hyperpred_ir::verify::verify_function(f).err()
    );
    formed
}

/// The two outgoing edges of a basic block in normal form.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Edges {
    None,
    Uncond(BlockId),
    /// (taken target, fall target, taken probability)
    Cond(BlockId, BlockId, f64),
}

fn edges_of(f: &Function, fid: FuncId, prof: &Profiler, b: BlockId) -> Edges {
    let insts = &f.block(b).insts;
    let n = insts.len();
    if n >= 2 {
        if let (Op::Br(_), Op::Jump) = (insts[n - 2].op, insts[n - 1].op) {
            let br = &insts[n - 2];
            let stat = prof.branch(fid, br.id);
            return Edges::Cond(
                br.target.expect("branch target"),
                insts[n - 1].target.expect("jump target"),
                stat.taken_ratio(),
            );
        }
    }
    match insts.last().map(|i| i.op) {
        Some(Op::Br(_)) => {
            let br = insts.last().unwrap();
            let stat = prof.branch(fid, br.id);
            match f.layout_next(b) {
                Some(next) => Edges::Cond(br.target.unwrap(), next, stat.taken_ratio()),
                None => Edges::Uncond(br.target.unwrap()),
            }
        }
        Some(Op::Jump) => Edges::Uncond(insts.last().unwrap().target.unwrap()),
        Some(Op::Ret) | Some(Op::Halt) => Edges::None,
        _ => match f.layout_next(b) {
            Some(next) => Edges::Uncond(next),
            None => Edges::None,
        },
    }
}

fn select_traces(
    f: &Function,
    fid: FuncId,
    prof: &Profiler,
    config: &SuperblockConfig,
) -> Vec<Vec<BlockId>> {
    let mut visited = vec![false; f.blocks.len()];
    let mut order: Vec<BlockId> = f.layout.clone();
    order.sort_by_key(|&b| std::cmp::Reverse(prof.block_count(fid, b)));

    let preds = f.preds();
    let mut traces = Vec::new();
    for seed in order {
        if visited[seed.index()]
            || prof.block_count(fid, seed) < config.min_count
            || has_hazard(f, seed)
        {
            continue;
        }
        let mut trace = vec![seed];
        visited[seed.index()] = true;
        let mut insts = f.block(seed).insts.len();
        // Grow forward along the likeliest edge.
        let mut cur = seed;
        loop {
            let next = match edges_of(f, fid, prof, cur) {
                Edges::None => None,
                Edges::Uncond(t) => Some(t),
                Edges::Cond(t, u, p) => {
                    if p >= config.min_prob {
                        Some(t)
                    } else if 1.0 - p >= config.min_prob {
                        Some(u)
                    } else {
                        None
                    }
                }
            };
            let Some(next) = next else { break };
            if visited[next.index()]
                || trace.contains(&next)
                || prof.block_count(fid, next) < config.min_count
                || insts + f.block(next).insts.len() > config.max_insts
                || has_hazard(f, next)
            {
                break;
            }
            insts += f.block(next).insts.len();
            trace.push(next);
            visited[next.index()] = true;
            cur = next;
        }
        // Grow backward from the seed along the likeliest predecessor whose
        // best successor is the seed.
        let mut head = seed;
        loop {
            let best = preds[head.index()]
                .iter()
                .copied()
                .filter(|p| !visited[p.index()] && !has_hazard(f, *p))
                .max_by_key(|&p| prof.block_count(fid, p));
            let Some(p) = best else { break };
            // p's most likely successor must be `head` with good probability.
            let ok = match edges_of(f, fid, prof, p) {
                Edges::Uncond(t) => t == head,
                Edges::Cond(t, u, prob) => {
                    (t == head && prob >= config.min_prob)
                        || (u == head && 1.0 - prob >= config.min_prob)
                }
                Edges::None => false,
            };
            if !ok
                || prof.block_count(fid, p) < config.min_count
                || insts + f.block(p).insts.len() > config.max_insts
            {
                break;
            }
            insts += f.block(p).insts.len();
            trace.insert(0, p);
            visited[p.index()] = true;
            head = p;
        }
        traces.push(trace);
    }
    traces
}

/// Blocks that must never join a trace: returns, already-predicated code
/// (formed hyperblocks), and blocks that are not in basic-block shape
/// (mid-block exits from earlier region formation).
fn has_hazard(f: &Function, b: BlockId) -> bool {
    let insts = &f.block(b).insts;
    let n = insts.len();
    let basic = insts.iter().enumerate().all(|(i, inst)| {
        !inst.is_exit()
            || i + 1 == n
            || (i + 2 == n && matches!(inst.op, Op::Br(_)) && insts[n - 1].op.ends_block())
    });
    !basic
        || insts.iter().any(|i| {
            matches!(i.op, Op::Ret | Op::Halt)
                || i.guard.is_some()
                || i.op.is_pred_def()
                || matches!(i.op, Op::PredClear | Op::PredSet)
        })
}

/// Makes all fall-throughs of `b` explicit (appends a jump), so the block
/// can be relocated safely.
fn make_explicit(f: &mut Function, b: BlockId) {
    if !f.block(b).ends_explicitly() {
        if let Some(next) = f.layout_next(b) {
            let mut j = f.make_inst(Op::Jump);
            j.target = Some(next);
            f.block_mut(b).insts.push(j);
        }
    }
}

/// Removes side entrances: whenever a trace block (other than the head) has
/// a predecessor that is not its trace predecessor, the trace suffix from
/// that block onward is duplicated and the side entrances are rewired to
/// the copy. Returns the (unchanged) trace, which is afterwards
/// single-entry.
fn tail_duplicate(f: &mut Function, trace: &[BlockId]) -> Vec<BlockId> {
    for i in 1..trace.len() {
        let b = trace[i];
        let prev = trace[i - 1];
        let preds = f.preds();
        let side: Vec<BlockId> = preds[b.index()]
            .iter()
            .copied()
            .filter(|&p| p != prev)
            .collect();
        if side.is_empty() {
            continue;
        }
        // Duplicate the suffix trace[i..].
        let suffix: Vec<BlockId> = trace[i..].to_vec();
        // Make every suffix block's fall-through explicit first so clones
        // are position-independent.
        for &s in &suffix {
            make_explicit(f, s);
        }
        // Side entrances may fall through into b; make those explicit too.
        for &p in &side {
            make_explicit(f, p);
        }
        let mut clone_of: HashMap<BlockId, BlockId> = HashMap::new();
        for &s in &suffix {
            let c = f.add_block();
            clone_of.insert(s, c);
        }
        for &s in &suffix {
            let insts: Vec<Inst> = f.block(s).insts.clone();
            let mut cloned = Vec::with_capacity(insts.len());
            for inst in &insts {
                let mut ci = f.clone_inst(inst);
                if let Some(t) = ci.target {
                    if let Some(&ct) = clone_of.get(&t) {
                        ci.target = Some(ct);
                    }
                }
                cloned.push(ci);
            }
            let c = clone_of[&s];
            f.block_mut(c).insts = cloned;
        }
        // Rewire the side entrances to the clone of b.
        let cb = clone_of[&b];
        for &p in &side {
            for inst in &mut f.block_mut(p).insts {
                if inst.op.is_branch() && inst.target == Some(b) {
                    inst.target = Some(cb);
                }
            }
        }
    }
    trace.to_vec()
}

/// Collapses the (now single-entry) trace into its head block. Internal
/// control transfers are rewritten so execution simply continues into the
/// appended instructions.
///
/// Every trace block's terminator is made explicit first (`[... Br, Jump]`
/// form), so the merge never has to reason about layout-dependent
/// fall-throughs; redundant jumps left behind are cleaned up by the CFG
/// optimizer.
fn merge_trace(f: &mut Function, trace: &[BlockId]) {
    for &b in trace {
        make_explicit(f, b);
    }
    let head = trace[0];
    for &next in &trace[1..] {
        // Fix the merged tail so "continue to the next instruction" means
        // "enter `next`". The tail is explicit: it ends with Jump, Ret, or
        // Halt, optionally preceded by a conditional branch.
        {
            let insts = &mut f.blocks[head.index()].insts;
            let n = insts.len();
            debug_assert!(n > 0 && insts[n - 1].op.ends_block());
            if insts[n - 1].op == Op::Jump && insts[n - 1].target == Some(next) {
                insts.pop();
                let m = insts.len();
                if m > 0 {
                    if let Op::Br(c) = insts[m - 1].op {
                        if insts[m - 1].target == Some(next) {
                            // Br next + Jump next: both redundant.
                            insts.pop();
                            let _ = c;
                        }
                    }
                }
            } else if n >= 2 {
                if let (Op::Br(c), Op::Jump) = (insts[n - 2].op, insts[n - 1].op) {
                    if insts[n - 2].target == Some(next) {
                        // [Br next, Jump u] -> [Br(!c) u]; fall into next.
                        let u = insts[n - 1].target;
                        insts.pop();
                        let m = insts.len();
                        insts[m - 1].op = Op::Br(c.inverse());
                        insts[m - 1].target = u;
                    }
                }
            }
        }
        // Append next's instructions.
        let moved = std::mem::take(&mut f.blocks[next.index()].insts);
        f.blocks[head.index()].insts.extend(moved);
        f.layout.retain(|&x| x != next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_lang::compile;
    use hyperpred_lang::lower::entry_args;
    use hyperpred_opt::optimize_module;

    fn profile(m: &hyperpred_ir::Module, args: &[i64]) -> Profiler {
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(m);
        emu.run("main", &entry_args(args), &mut prof).unwrap();
        prof
    }

    fn form_all(m: &mut hyperpred_ir::Module, prof: &Profiler) -> usize {
        let mut formed = 0;
        for i in 0..m.funcs.len() {
            let fid = FuncId(i as u32);
            let mut f = m.funcs[i].clone();
            formed += form_superblocks(&mut f, fid, prof, &SuperblockConfig::default());
            m.funcs[i] = f;
        }
        formed
    }

    #[test]
    fn biased_branch_becomes_superblock_exit() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i += 1) {
                if (i % 10 == 0) s += 100;  // unlikely path
                else s += 1;                // likely path
            }
            return s;
        }";
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let prof = profile(&m, &[]);
        let formed = form_all(&mut m, &prof);
        assert!(formed >= 1, "should form at least one trace");
        // The hot path is now one block with a mid-block exit branch.
        let has_superblock = m.funcs[0].layout.iter().any(|&b| {
            let insts = &m.funcs[0].block(b).insts;
            insts
                .iter()
                .enumerate()
                .any(|(i, inst)| inst.op.is_branch() && i + 2 < insts.len())
        });
        assert!(
            has_superblock,
            "expected a mid-block exit branch:\n{}",
            m.funcs[0]
        );
        // Behaviour must be preserved.
        let mut emu = Emulator::new(&m);
        let r = emu.run("main", &entry_args(&[]), &mut NullSink).unwrap();
        assert_eq!(r.ret, 10 * 100 + 90);
    }

    #[test]
    fn tail_duplication_removes_side_entrances() {
        // Join point: both arms of the if flow into the loop latch; the
        // latch is on the trace, so the cold arm must get a duplicate.
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 60; i += 1) {
                if (i % 6 == 0) s += 2; else s += 1;
                s += 10;   // join-point code, duplicated for the cold arm
            }
            return s;
        }";
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let want = {
            let mut emu = Emulator::new(&m);
            emu.run("main", &entry_args(&[]), &mut NullSink)
                .unwrap()
                .ret
        };
        let prof = profile(&m, &[]);
        form_all(&mut m, &prof);
        m.verify().unwrap();
        let mut emu = Emulator::new(&m);
        let got = emu
            .run("main", &entry_args(&[]), &mut NullSink)
            .unwrap()
            .ret;
        assert_eq!(got, want);
    }

    #[test]
    fn superblocks_reduce_dynamic_jumps() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 200; i += 1) { if (i % 17 == 0) s += 3; s += i; }
            return s;
        }";
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let prof = profile(&m, &[]);
        let mut stats0 = hyperpred_emu::DynStats::new();
        Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut stats0)
            .unwrap();
        form_all(&mut m, &prof);
        optimize_module(&mut m);
        let mut stats1 = hyperpred_emu::DynStats::new();
        Emulator::new(&m)
            .run("main", &entry_args(&[]), &mut stats1)
            .unwrap();
        assert!(
            stats1.branches <= stats0.branches,
            "superblocks should not add dynamic branches ({} > {})",
            stats1.branches,
            stats0.branches
        );
    }

    #[test]
    fn respects_max_insts() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 10; i += 1) { s += i; }
            return s;
        }";
        let mut m = compile(src).unwrap();
        optimize_module(&mut m);
        let prof = profile(&m, &[]);
        let tiny = SuperblockConfig {
            max_insts: 1,
            ..SuperblockConfig::default()
        };
        let f = &mut m.funcs[0].clone();
        let formed = form_superblocks(f, FuncId(0), &prof, &tiny);
        assert_eq!(formed, 0, "cap of 1 instruction admits no merge");
    }
}
