//! Superblock / hyperblock loop unrolling.
//!
//! IMPACT's superblock optimizer unrolls superblock loops so the scheduler
//! can overlap consecutive iterations — essential on an in-order machine,
//! where a stalled instruction blocks everything younger. After region
//! formation a loop is a single block whose final instruction transfers
//! control back to the block itself; unrolling by `n` concatenates `n`
//! copies of the body:
//!
//! * a final unconditional back edge (`jump -> self`) is dropped from all
//!   but the last copy (fall into the next copy);
//! * a final conditional back edge (`br c -> self`, exit on fall-through)
//!   is inverted in all but the last copy (`br !c -> exit`), falling into
//!   the next copy on the loop path;
//! * mid-block exit branches are replicated per copy unchanged.
//!
//! Register renaming is unnecessary: the IR is not SSA, and each copy
//! recomputes its temporaries; loop-carried values flow through the same
//! registers exactly as across real iterations.

use crate::GrowthBudget;
use hyperpred_emu::Profiler;
use hyperpred_ir::{BlockId, FuncId, Function, Inst, Op};

/// Unrolling configuration.
#[derive(Debug, Clone, Copy)]
pub struct UnrollConfig {
    /// Number of body copies (1 disables unrolling).
    pub factor: u32,
    /// Loops whose body exceeds this many instructions are left alone.
    pub max_body_insts: usize,
    /// Minimum profiled entry count for a loop to be worth unrolling.
    /// Formation-created clones carry no profile, so the default is 0 (the
    /// self-loop pattern itself proves a loop).
    pub min_count: u64,
    /// Total instructions unrolling may *add* to one function before the
    /// pass refuses with a typed [`GrowthBudget`] error. Bounds code-size
    /// blowup on adversarial inputs with many eligible self-loops.
    pub max_growth_insts: usize,
}

impl Default for UnrollConfig {
    fn default() -> UnrollConfig {
        UnrollConfig {
            factor: 4,
            max_body_insts: 80,
            min_count: 0,
            max_growth_insts: 8192,
        }
    }
}

/// The recognized self-loop tail of a block.
enum Tail {
    /// `[.., jump -> self]` — unguarded.
    Jump,
    /// `[.., br c -> self]` with fall-through exit to `next`.
    BrFall(BlockId),
    /// `[.., br c -> self, jump X]`.
    BrJump,
}

fn self_loop_tail(f: &Function, b: BlockId) -> Option<Tail> {
    let insts = &f.block(b).insts;
    let n = insts.len();
    if n < 2 {
        return None;
    }
    let last = &insts[n - 1];
    if last.op == Op::Jump && last.guard.is_none() && last.target == Some(b) {
        return Some(Tail::Jump);
    }
    if let Op::Br(_) = last.op {
        if last.guard.is_none() && last.target == Some(b) {
            // Fall-through must go somewhere real.
            return f.layout_next(b).map(Tail::BrFall);
        }
    }
    if n >= 3 {
        if let (Op::Br(_), Op::Jump) = (insts[n - 2].op, insts[n - 1].op) {
            if insts[n - 2].guard.is_none()
                && insts[n - 2].target == Some(b)
                && insts[n - 1].guard.is_none()
                && insts[n - 1].target != Some(b)
            {
                return Some(Tail::BrJump);
            }
        }
    }
    // No other back edges may exist mid-block (a mid-block branch to self
    // would re-enter the loop from inside a copy).
    None
}

/// Unrolls every eligible self-loop block of `f`. Returns how many loops
/// were unrolled, or a typed [`GrowthBudget`] error when the copies would
/// add more than [`UnrollConfig::max_growth_insts`] instructions.
pub fn unroll_self_loops(
    f: &mut Function,
    fid: FuncId,
    prof: &Profiler,
    config: &UnrollConfig,
) -> Result<usize, GrowthBudget> {
    if config.factor <= 1 {
        return Ok(0);
    }
    let mut done = 0;
    let mut grown = 0usize;
    for &b in &f.layout.clone() {
        let insts_len = f.block(b).insts.len();
        if insts_len == 0 || insts_len > config.max_body_insts {
            continue;
        }
        if prof.block_count(fid, b) < config.min_count {
            continue;
        }
        // Only one branch may target the block itself, and it must be the
        // recognized tail.
        let self_branches = f
            .block(b)
            .insts
            .iter()
            .filter(|i| i.op.is_branch() && i.target == Some(b))
            .count();
        if self_branches != 1 {
            continue;
        }
        let Some(tail) = self_loop_tail(f, b) else {
            continue;
        };
        // Each extra copy adds (up to) one body's worth of instructions.
        let added = insts_len * (config.factor as usize - 1);
        if grown + added > config.max_growth_insts {
            return Err(GrowthBudget {
                pass: "unroll",
                metric: "grown-insts",
                value: (grown + added) as u64,
                limit: config.max_growth_insts as u64,
            });
        }
        grown += added;
        let body: Vec<Inst> = f.block(b).insts.clone();
        let n = body.len();
        let mut out: Vec<Inst> = Vec::with_capacity(n * config.factor as usize);
        for copy in 0..config.factor {
            let last_copy = copy + 1 == config.factor;
            match tail {
                Tail::Jump => {
                    let keep = if last_copy { n } else { n - 1 };
                    for inst in &body[..keep] {
                        out.push(f.clone_inst(inst));
                    }
                }
                Tail::BrFall(exit) => {
                    for inst in &body[..n - 1] {
                        out.push(f.clone_inst(inst));
                    }
                    let mut br = f.clone_inst(&body[n - 1]);
                    if !last_copy {
                        // Loop-continue becomes fall-through; exit becomes
                        // the taken side.
                        let Op::Br(c) = br.op else { unreachable!() };
                        br.op = Op::Br(c.inverse());
                        br.target = Some(exit);
                    }
                    out.push(br);
                }
                Tail::BrJump => {
                    for inst in &body[..n - 2] {
                        out.push(f.clone_inst(inst));
                    }
                    let mut br = f.clone_inst(&body[n - 2]);
                    if last_copy {
                        out.push(br);
                        out.push(f.clone_inst(&body[n - 1]));
                    } else {
                        let Op::Br(c) = br.op else { unreachable!() };
                        br.op = Op::Br(c.inverse());
                        br.target = body[n - 1].target;
                        out.push(br);
                    }
                }
            }
        }
        f.block_mut(b).insts = out;
        done += 1;
    }
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "unrolling broke {}: {:?}",
        f.name,
        hyperpred_ir::verify::verify_function(f).err()
    );
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_ir::{CmpOp, FuncBuilder, Module, Operand};

    fn loop_module() -> Module {
        // acc = sum(0..100)
        let mut b = FuncBuilder::new("main");
        let acc = b.mov(Operand::Imm(0));
        let i = b.mov(Operand::Imm(0));
        let body = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let acc2 = b.add(acc.into(), i.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), Operand::Imm(100), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m
    }

    fn profile(m: &Module) -> Profiler {
        let mut prof = Profiler::new();
        Emulator::new(m).run("main", &[], &mut prof).unwrap();
        prof
    }

    #[test]
    fn unrolls_br_jump_self_loop() {
        let mut m = loop_module();
        // Merge the loop into a self-loop superblock first.
        let prof = profile(&m);
        crate::form_superblocks(
            &mut m.funcs[0],
            FuncId(0),
            &prof,
            &crate::SuperblockConfig::default(),
        );
        let want = Emulator::new(&m)
            .run("main", &[], &mut NullSink)
            .unwrap()
            .ret;
        let n =
            unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &UnrollConfig::default()).unwrap();
        assert_eq!(n, 1, "{}", m.funcs[0]);
        m.verify().unwrap();
        let got = Emulator::new(&m)
            .run("main", &[], &mut NullSink)
            .unwrap()
            .ret;
        assert_eq!(got, want);
        // Dynamic back-edge branches should drop ~4x; check the static
        // shape instead: 4 copies of the add.
        let adds = m.funcs[0]
            .insts()
            .filter(|(_, _, i)| i.op == Op::Add)
            .count();
        assert!(adds >= 8, "4 copies of 2 adds");
    }

    #[test]
    fn factor_one_is_identity() {
        let mut m = loop_module();
        let prof = profile(&m);
        let before = m.funcs[0].size();
        let config = UnrollConfig {
            factor: 1,
            ..UnrollConfig::default()
        };
        assert_eq!(
            unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &config).unwrap(),
            0
        );
        assert_eq!(m.funcs[0].size(), before);
    }

    #[test]
    fn min_count_knob_filters_cold_loops() {
        let mut m = loop_module();
        let prof = Profiler::new(); // empty profile: everything cold
        let config = UnrollConfig {
            min_count: 1,
            ..UnrollConfig::default()
        };
        assert_eq!(
            unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &config).unwrap(),
            0
        );
    }

    #[test]
    fn oversized_bodies_are_left_alone() {
        let mut m = loop_module();
        let prof = profile(&m);
        crate::form_superblocks(
            &mut m.funcs[0],
            FuncId(0),
            &prof,
            &crate::SuperblockConfig::default(),
        );
        let config = UnrollConfig {
            max_body_insts: 2,
            ..UnrollConfig::default()
        };
        assert_eq!(
            unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &config).unwrap(),
            0
        );
    }

    #[test]
    fn growth_budget_trips_typed_error() {
        let mut m = loop_module();
        let prof = profile(&m);
        crate::form_superblocks(
            &mut m.funcs[0],
            FuncId(0),
            &prof,
            &crate::SuperblockConfig::default(),
        );
        let config = UnrollConfig {
            max_growth_insts: 2,
            ..UnrollConfig::default()
        };
        let err = unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &config).unwrap_err();
        assert_eq!(err.pass, "unroll");
        assert_eq!(err.metric, "grown-insts");
        assert_eq!(err.limit, 2);
        assert!(err.value > err.limit, "{err}");
    }

    #[test]
    fn hyperblock_loops_unroll_and_stay_correct() {
        let src = "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 97; i += 1) {
                if (i % 3 == 0) s += 2; else s += 5;
            }
            return s;
        }";
        let mut m = hyperpred_lang::compile(src).unwrap();
        hyperpred_opt::optimize_module(&mut m);
        let want = Emulator::new(&m)
            .run(
                "main",
                &hyperpred_lang::lower::entry_args(&[]),
                &mut NullSink,
            )
            .unwrap()
            .ret;
        let mut prof = Profiler::new();
        Emulator::new(&m)
            .run("main", &hyperpred_lang::lower::entry_args(&[]), &mut prof)
            .unwrap();
        crate::form_hyperblocks(
            &mut m.funcs[0],
            FuncId(0),
            &prof,
            &crate::HyperblockConfig::default(),
        )
        .unwrap();
        crate::promote(&mut m.funcs[0]);
        let n =
            unroll_self_loops(&mut m.funcs[0], FuncId(0), &prof, &UnrollConfig::default()).unwrap();
        assert!(n >= 1, "{}", m.funcs[0]);
        m.verify().unwrap();
        let got = Emulator::new(&m)
            .run(
                "main",
                &hyperpred_lang::lower::entry_args(&[]),
                &mut NullSink,
            )
            .unwrap()
            .ret;
        assert_eq!(got, want);
    }
}
