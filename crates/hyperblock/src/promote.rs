//! Predicate promotion (paper §3.2, Fig. 2).
//!
//! Promotion removes the guard from a predicated instruction, turning it
//! into a speculative (silent) instruction. It is profitable in two ways:
//!
//! * With **full** predicate support it breaks the dependence between the
//!   predicate define and the predicated instruction, letting the scheduler
//!   start long-latency work before the predicate is known.
//! * For the **partial** (conditional move) model it is essential: every
//!   predicated instruction that survives to conversion expands into
//!   speculation + `cmov`, so fewer guarded instructions means far fewer
//!   conditional moves (the paper's Fig. 2 shows a 6-instruction sequence
//!   collapsing to 4).
//!
//! An instruction `I` (guard `p`, destination `d`) is promoted when all of
//! the following hold:
//!
//! 1. `I` can execute silently (no stores, branches, calls, or predicate
//!    defines).
//! 2. Every use of `d` reachable from `I` before `d` is fully redefined is
//!    guarded by `p` itself, or by a predicate `q` the relation analysis
//!    proves is a *subset* of `p` at the use point (`q` true ⇒ `p` true,
//!    so the use firing proves `I` executed for real) — when `p` is false
//!    the junk value is never observed either way. Predicate defines are
//!    excluded from the relaxation: they read their comparison operands
//!    unconditionally (the guard only feeds `Pin`), so only literal
//!    `p`-guarded pred defines are tolerated, as before.
//! 3. `d` is not live into any successor block of the region (it is a
//!    compiler temporary of this hyperblock).
//! 4. `p` is not redefined between `I` and the last such use (guard
//!    equality would otherwise be meaningless).
//! 5. Every general-register source of `I` is must-defined for an
//!    *unguarded* read at `I` — a promoted instruction executes on paths
//!    where `p` is false, and a source written only under `p` (common
//!    when `I` consumes an earlier guarded def of the same hyperblock)
//!    would be read before it is defined there. Promotion walks the
//!    block in order, so a guarded producer promoted earlier in the same
//!    round immediately unblocks its consumers.

use crate::GrowthBudget;
use hyperpred_ir::analysis::{forward, ForwardAnalysis, MustDefined, RelAnalysis};
use hyperpred_ir::liveness::Liveness;
use hyperpred_ir::{Cfg, Function, Op, PredReg, RelState};

/// Runs promotion over every block of `f` to a fixpoint. Returns the number
/// of instructions promoted.
pub fn promote(f: &mut Function) -> usize {
    // The fixpoint terminates unconditionally (each round removes at least
    // one guard and no pass adds guards), so an unbounded run cannot trip.
    promote_bounded(f, usize::MAX).expect("unbounded promotion cannot exceed a budget")
}

/// Like [`promote`], but refuses with a typed [`GrowthBudget`] error after
/// `max_rounds` fixpoint rounds. Each round recomputes CFG + liveness, so
/// the bound caps compile time on adversarial hyperblocks where every
/// round promotes a single straggler.
pub fn promote_bounded(f: &mut Function, max_rounds: usize) -> Result<usize, GrowthBudget> {
    let mut total = 0;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > max_rounds {
            return Err(GrowthBudget {
                pass: "promote",
                metric: "fixpoint-rounds",
                value: rounds as u64,
                limit: max_rounds as u64,
            });
        }
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        let flow = forward(f, &cfg, &MustDefined);
        // Promotion never touches predicate defines, so the relation
        // fixpoint stays valid across every promotion of this round.
        let relflow = forward(f, &cfg, &RelAnalysis);
        let mut promoted = 0;
        for &b in &f.layout.clone() {
            // Blocks the dataflow never reached cannot execute; there is
            // nothing to win by promoting in them, and no entry state to
            // judge candidate sources against.
            let Some(mut defs) = flow.entry[b.index()].clone() else {
                continue;
            };
            let mut rels = relflow.entry[b.index()]
                .clone()
                .expect("reachable block has relation state");
            let block_succs = cfg.succs[b.index()].clone();
            let n = f.block(b).insts.len();
            for i in 0..n {
                // `defs` holds the must-defined state immediately before
                // instruction `i`; the transfer at the bottom of this loop
                // advances it over the (possibly just-promoted) form.
                'decide: {
                    let cand = {
                        let inst = &f.block(b).insts[i];
                        let Some(p) = inst.guard else { break 'decide };
                        if !inst.op.can_speculate() {
                            break 'decide;
                        }
                        // Conditional moves stay partial definitions even
                        // when unguarded, so promoting them can launder
                        // junk across iterations; only full definitions
                        // are candidates.
                        if matches!(inst.op, Op::Cmov | Op::CmovCom) {
                            break 'decide;
                        }
                        let Some(d) = inst.dst else { break 'decide };
                        // Condition 5: promoted, the sources are read
                        // unguarded on every path, so each must be
                        // must-defined without the guard's help.
                        if !inst.src_regs().all(|r| defs.reg_ok(r, None)) {
                            break 'decide;
                        }
                        (p, d, inst.id)
                    };
                    let (p, d, cand_id) = cand;
                    // Scan the span from the candidate to the next full
                    // redefinition of d (or the end of the block),
                    // collecting the exit targets through which a junk
                    // value could escape.
                    let mut ok = true;
                    // Exit targets paired with whether p was still
                    // stable (un-redefined since the candidate) when
                    // control could leave through them — the subset
                    // relaxation in `exposed` is only meaningful while
                    // p still holds the value the candidate saw.
                    let mut exit_targets: Vec<(hyperpred_ir::BlockId, bool)> = Vec::new();
                    let mut reaches_end = true;
                    let mut p_stable = true;
                    {
                        let insts = &f.block(b).insts;
                        // Relation state immediately after the candidate,
                        // advanced over the span to answer subset queries
                        // at each use point.
                        let mut span_rels = rels.clone();
                        RelAnalysis.transfer(&insts[i], &mut span_rels);
                        for (j, later) in insts[i + 1..].iter().enumerate() {
                            // p redefined: any remaining use of d would
                            // compare against a *different* p value.
                            if later.defines_all_preds() || later.pred_defs().any(|q| q == p) {
                                p_stable = false;
                                if uses_reg(later, d) || remaining_uses(&insts[i + 1 + j + 1..], d)
                                {
                                    ok = false;
                                }
                                // The rest of the span is use-free; the
                                // junk can still escape through later
                                // exits, so keep collecting them.
                                if !ok {
                                    break;
                                }
                            }
                            if uses_reg(later, d)
                                && later.guard != Some(p)
                                && !subset_guarded_read(later, p, &span_rels)
                            {
                                ok = false;
                                break;
                            }
                            if later.op.is_branch() {
                                if let Some(t) = later.target {
                                    exit_targets.push((t, p_stable));
                                }
                                if later.op == Op::Jump && later.guard.is_none() {
                                    // Unconditional transfer: nothing
                                    // after it in this block executes.
                                    reaches_end = false;
                                    break;
                                }
                            }
                            if matches!(later.op, Op::Ret | Op::Halt) && later.guard.is_none() {
                                reaches_end = false;
                                break;
                            }
                            if later.dst == Some(d) && !later.is_partial_reg_def() {
                                reaches_end = false;
                                break;
                            }
                            RelAnalysis.transfer(later, &mut span_rels);
                        }
                    }
                    if !ok {
                        break 'decide;
                    }
                    if reaches_end {
                        exit_targets.extend(block_succs.iter().map(|&t| (t, p_stable)));
                    }
                    // The junk value must be unobservable at every escape
                    // target. `exposed` walks the target: a use of d
                    // before a full redefinition observes it; the
                    // candidate itself becomes a full (killing)
                    // definition once promoted.
                    if exit_targets
                        .iter()
                        .any(|&(t, ps)| exposed(f, &lv, t, d, cand_id, b, p, ps, &relflow.entry))
                    {
                        break 'decide;
                    }
                    let inst = &mut f.block_mut(b).insts[i];
                    inst.guard = None;
                    if inst.op.may_trap() {
                        inst.speculative = true;
                    }
                    promoted += 1;
                }
                let inst = &f.block(b).insts[i];
                MustDefined.transfer(inst, &mut defs);
                RelAnalysis.transfer(inst, &mut rels);
                if inst.ends_block() {
                    // Anything after an unconditional terminator is dead;
                    // the dataflow carries no state for it.
                    break;
                }
            }
        }
        total += promoted;
        if promoted == 0 {
            break;
        }
    }
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "promotion broke {}",
        f.name
    );
    Ok(total)
}

/// True when `inst` reads `d` only under a guard `q` that the relation
/// state proves is a subset of `p` — the read firing proves `p` held,
/// so a junk value (present only when `p` was false) is unobservable.
/// Predicate defines never qualify: they read their comparison operands
/// regardless of their guard.
fn subset_guarded_read(inst: &hyperpred_ir::Inst, p: PredReg, rels: &RelState) -> bool {
    !inst.op.is_pred_def() && inst.guard.is_some_and(|q| rels.subset(q, p))
}

/// Is `d` observable on entry to block `t`?
///
/// For blocks other than the candidate's own, the liveness fixpoint
/// answers directly. For the candidate's own block (the loop back edge),
/// the fixpoint is uselessly conservative — the candidate's partial
/// definition makes `d` upward-exposed *because it is still guarded* — so
/// the block is walked from the top instead: a read of `d` observes the
/// junk; the candidate itself counts as a full (killing) definition since
/// it will be one once promoted; a branch passed along the way leaks the
/// junk into its target's live-in.
///
/// A read under a guard `q ⊆ p` is tolerated like a `p`-guarded read in
/// the candidate's span — but only while `p` is *stable*: un-redefined
/// from the candidate to the exit (`p_stable`) and from the block top to
/// the read, so `q ⊆ p` still speaks about the value of `p` that decided
/// whether the junk exists.
#[allow(clippy::too_many_arguments)]
fn exposed(
    f: &Function,
    lv: &Liveness,
    t: hyperpred_ir::BlockId,
    d: hyperpred_ir::Reg,
    cand_id: hyperpred_ir::InstId,
    self_block: hyperpred_ir::BlockId,
    p: PredReg,
    p_stable: bool,
    rel_entry: &[Option<RelState>],
) -> bool {
    if t != self_block {
        return lv.live_in[t.index()].regs.contains(&d);
    }
    let mut rels = rel_entry[t.index()].clone();
    let mut p_ok = p_stable && rels.is_some();
    for inst in &f.block(t).insts {
        if inst.id == cand_id {
            return false; // the promoted candidate fully redefines d
        }
        if uses_reg(inst, d) {
            let tolerated = p_ok
                && rels
                    .as_ref()
                    .is_some_and(|r| subset_guarded_read(inst, p, r));
            if !tolerated {
                return true;
            }
        }
        if inst.op.is_branch() {
            if let Some(u) = inst.target {
                // A back edge to this same block re-poses the same
                // question; any other escape defers to the fixpoint.
                if u != t && lv.live_in[u.index()].regs.contains(&d) {
                    return true;
                }
            }
        }
        if inst.dst == Some(d) && !inst.is_partial_reg_def() {
            return false;
        }
        if inst.defines_all_preds() || inst.pred_defs().any(|q| q == p) {
            p_ok = false;
        }
        if let Some(r) = rels.as_mut() {
            RelAnalysis.transfer(inst, r);
        }
    }
    lv.live_out[t.index()].regs.contains(&d)
}

/// True when `inst` reads `d` (as a source, or implicitly as a partially
/// defined destination).
fn uses_reg(inst: &hyperpred_ir::Inst, d: hyperpred_ir::Reg) -> bool {
    inst.src_regs().any(|r| r == d) || (inst.is_partial_reg_def() && inst.dst == Some(d))
}

/// True when `d` is read anywhere in `insts` before being fully redefined.
fn remaining_uses(insts: &[hyperpred_ir::Inst], d: hyperpred_ir::Reg) -> bool {
    for inst in insts {
        if uses_reg(inst, d) {
            return true;
        }
        if inst.dst == Some(d) && !inst.is_partial_reg_def() {
            return false;
        }
    }
    false
}

/// Statistics helper: counts guarded instructions in a function.
pub fn guarded_count(f: &Function) -> usize {
    f.insts()
        .filter(|(_, _, i)| i.guard.is_some() && !matches!(i.op, Op::PredDef(_) | Op::FPredDef(_)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, MemWidth, Operand, PredType};

    /// Builds the paper's Figure 2 shape: load/mul/add all guarded by p,
    /// with y (the add's destination) live out.
    fn figure2() -> (Function, hyperpred_ir::Reg) {
        let mut b = FuncBuilder::new("f");
        let addrx = b.param();
        let offx = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            addrx.into(),
            Operand::Imm(0),
            None,
        );
        let y = b.mov(Operand::Imm(0)); // y defined before
        let t1 = b.load(MemWidth::Word, addrx.into(), offx.into());
        b.guard_last(p);
        let t2 = b.mul(t1.into(), Operand::Imm(2));
        b.guard_last(p);
        let t3 = b.add(t2.into(), Operand::Imm(3));
        b.guard_last(p);
        b.mov_to(y, t3.into());
        b.guard_last(p);
        b.ret(Some(y.into()));
        (b.finish(), y)
    }

    #[test]
    fn figure2_promotes_temporaries_only() {
        let (mut f, y) = figure2();
        let n = promote(&mut f);
        assert_eq!(n, 3, "load, mul, add promoted; final mov to y stays:\n{f}");
        let insts = &f.blocks[0].insts;
        let load = insts.iter().find(|i| i.op.is_load()).unwrap();
        assert!(load.guard.is_none());
        assert!(load.speculative, "promoted load must be silent");
        let mov_y = insts
            .iter()
            .find(|i| {
                i.op == hyperpred_ir::Op::Mov && i.dst == Some(y) && i.srcs[0].as_imm().is_none()
            })
            .unwrap();
        assert!(mov_y.guard.is_some(), "write to live-out y keeps its guard");
    }

    #[test]
    fn does_not_promote_when_use_has_different_guard() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        let t = b.add(x.into(), Operand::Imm(1));
        b.guard_last(p);
        b.mov_to(out, t.into());
        b.guard_last(q); // uses t under q, not p
        b.ret(Some(out.into()));
        let mut f = b.finish();
        assert_eq!(promote(&mut f), 0);
    }

    /// The relation relaxation of condition 2: a use guarded by a
    /// *nested* predicate `q ⊆ p` (a U-define under `p`) no longer
    /// blocks promotion — if the use fires, `p` held, so the promoted
    /// producer computed a real value. Before the relation DB this
    /// candidate was skipped outright (guard mismatch `q ≠ p`).
    #[test]
    fn promotes_when_use_guard_is_nested_subset() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Gt,
            &[(q, PredType::U)],
            y.into(),
            Operand::Imm(0),
            Some(p), // q ⊆ p
        );
        let out = b.mov(Operand::Imm(0));
        let t = b.add(x.into(), Operand::Imm(1));
        b.guard_last(p);
        b.mov_to(out, t.into());
        b.guard_last(q); // uses t under the nested q, not p itself
        b.ret(Some(out.into()));
        let mut f = b.finish();
        assert_eq!(promote(&mut f), 1, "the p-guarded add promotes:\n{f}");
        let add = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.op == hyperpred_ir::Op::Add && i.dst == Some(t))
            .unwrap();
        assert!(add.guard.is_none());
    }

    #[test]
    fn does_not_promote_live_out_destination() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(7));
        let exit = b.block();
        b.mov_to(out, Operand::Imm(9));
        b.guard_last(p);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        assert_eq!(promote(&mut f), 0, "out is live in the exit block");
    }

    /// Condition 5: a candidate reading a register that is defined only
    /// under a *different* guard must keep its own guard — promoted, it
    /// would read the source on paths where the producer never executed.
    /// (Same-guard producer/consumer chains still promote: the producer
    /// goes first in the block walk and becomes a full definition, as
    /// `figure2_promotes_temporaries_only` pins.)
    #[test]
    fn does_not_promote_reader_of_foreign_guarded_def() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Gt,
            &[(q, PredType::U)],
            x.into(),
            Operand::Imm(5),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        let s = b.add(x.into(), Operand::Imm(1));
        b.guard_last(q); // s exists only where q held; s is read under p,
                         // so the producer cannot promote (condition 2)
        let t = b.add(s.into(), Operand::Imm(2));
        b.guard_last(p);
        b.mov_to(out, t.into());
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        promote(&mut f);
        let consumer = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.src_regs().any(|r| r == s))
            .expect("the s-consumer survives");
        assert_eq!(
            consumer.guard,
            Some(p),
            "reader of a q-guarded def must stay guarded:\n{f}"
        );
    }

    #[test]
    fn never_promotes_stores_or_branches() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.store(MemWidth::Word, x.into(), Operand::Imm(0), Operand::Imm(1));
        b.guard_last(p);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(promote(&mut f), 0);
    }

    #[test]
    fn promoted_division_becomes_silent() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            y.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(0));
        let t = b.op2(hyperpred_ir::Op::Div, x.into(), y.into());
        b.guard_last(p);
        b.mov_to(out, t.into());
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        assert_eq!(promote(&mut f), 1);
        let div = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.op == hyperpred_ir::Op::Div)
            .unwrap();
        assert!(div.speculative, "promoted div must not trap on zero");
        assert!(div.guard.is_none());
    }
}
