//! Blocks, functions, globals and modules.

use crate::inst::{Inst, Op};
use crate::types::{BlockId, FuncId, InstId, PredReg, Reg};
use std::collections::HashMap;

/// Base address of the data segment (globals).
pub const DATA_BASE: u64 = 0x1000;
/// Reserved always-valid scratch word used by the `$safe_addr` store
/// conversion (paper Fig. 3): nullified stores are redirected here.
pub const SAFE_ADDR: u64 = 0xFF8;
/// Total simulated memory size in bytes.
pub const MEM_SIZE: u64 = 16 * 1024 * 1024;
/// Initial stack pointer (stack grows toward lower addresses).
pub const STACK_BASE: u64 = MEM_SIZE - 16;
/// Addresses below this value (except [`SAFE_ADDR`]) trap on non-speculative
/// access, approximating a null-pointer guard page.
pub const NULL_GUARD: u64 = 0x800;

/// A straight-line sequence of instructions.
///
/// Before region formation every block is a *basic block*: branches appear
/// only as the final instruction. After superblock/hyperblock formation a
/// block is a single-entry, multiple-exit linear region: conditional exit
/// branches may appear anywhere. Control enters only at the top; if the
/// final instruction does not end the block, control falls through to the
/// next block in the function's layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instructions in code order (= schedule order once scheduled).
    pub insts: Vec<Inst>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// The final instruction, if any.
    pub fn last(&self) -> Option<&Inst> {
        self.insts.last()
    }

    /// True when the block cannot fall through (ends in an unguarded
    /// jump/ret/halt).
    pub fn ends_explicitly(&self) -> bool {
        self.last().is_some_and(|i| i.ends_block())
    }
}

/// A function: blocks plus a layout (code order).
///
/// `layout[0]` is the entry block. Fall-through flows to the next block in
/// layout order. Blocks not present in the layout are dead (kept only until
/// the next [`Function::remove_unreachable`]).
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Parameter registers, in call order.
    pub params: Vec<Reg>,
    /// All blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Code order; `layout[0]` is the entry.
    pub layout: Vec<BlockId>,
    /// Number of virtual registers (ids `0..reg_count`).
    pub reg_count: u32,
    /// Number of predicate registers (ids `0..pred_count`).
    pub pred_count: u32,
    next_inst_id: u32,
    /// Calls whose callee is recorded by name until [`Module::link`] runs.
    pub(crate) pending_callees: HashMap<InstId, String>,
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::new()],
            layout: vec![BlockId(0)],
            reg_count: 0,
            pred_count: 0,
            next_inst_id: 0,
            pending_callees: HashMap::new(),
        }
    }

    /// The entry block.
    ///
    /// # Panics
    /// Panics if the layout is empty (never true for built functions).
    pub fn entry(&self) -> BlockId {
        self.layout[0]
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Allocates a fresh predicate register.
    pub fn fresh_pred(&mut self) -> PredReg {
        let p = PredReg(self.pred_count);
        self.pred_count += 1;
        p
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_inst_id(&mut self) -> InstId {
        let id = InstId(self.next_inst_id);
        self.next_inst_id += 1;
        id
    }

    /// Creates a new empty block appended to the layout.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        self.layout.push(id);
        id
    }

    /// Creates a new empty block *not* yet placed in the layout. The caller
    /// must insert it into `layout` before the function is executed.
    pub fn add_block_detached(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Builds a new [`Inst`] with a fresh id.
    pub fn make_inst(&mut self, op: Op) -> Inst {
        let id = self.fresh_inst_id();
        Inst::new(id, op)
    }

    /// Clones `inst`, assigning the clone a fresh id.
    pub fn clone_inst(&mut self, inst: &Inst) -> Inst {
        let mut c = inst.clone();
        c.id = self.fresh_inst_id();
        c
    }

    /// Position of `id` in the layout, if laid out.
    pub fn layout_pos(&self, id: BlockId) -> Option<usize> {
        self.layout.iter().position(|&b| b == id)
    }

    /// The fall-through successor of `id` (next block in layout).
    pub fn layout_next(&self, id: BlockId) -> Option<BlockId> {
        let pos = self.layout_pos(id)?;
        self.layout.get(pos + 1).copied()
    }

    /// Control-flow successors of block `id`: every branch target inside the
    /// block plus the fall-through successor when the block does not end
    /// explicitly. Duplicates removed; order: branch targets in code order,
    /// fall-through last.
    pub fn succs(&self, id: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let block = self.block(id);
        for inst in &block.insts {
            if inst.op.is_branch() {
                if let Some(t) = inst.target {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        if !block.ends_explicitly() {
            if let Some(next) = self.layout_next(id) {
                if !out.contains(&next) {
                    out.push(next);
                }
            }
        }
        out
    }

    /// Predecessor lists for all laid-out blocks, indexed by block id.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for &b in &self.layout {
            for s in self.succs(b) {
                if !preds[s.index()].contains(&b) {
                    preds[s.index()].push(b);
                }
            }
        }
        preds
    }

    /// Total number of instructions across laid-out blocks.
    pub fn size(&self) -> usize {
        self.layout.iter().map(|&b| self.block(b).insts.len()).sum()
    }

    /// Iterates `(block, index, inst)` over the layout.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> + '_ {
        self.layout.iter().flat_map(move |&b| {
            self.block(b)
                .insts
                .iter()
                .enumerate()
                .map(move |(i, inst)| (b, i, inst))
        })
    }

    /// Removes unreachable blocks from the layout (blocks stay allocated so
    /// ids remain stable; they are simply no longer laid out or executed).
    pub fn remove_unreachable(&mut self) {
        let mut reach = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry()];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reach[b.index()], true) {
                continue;
            }
            for s in self.succs(b) {
                if !reach[s.index()] {
                    stack.push(s);
                }
            }
        }
        self.layout.retain(|b| reach[b.index()]);
        // Unreachable blocks may still be jump targets from other dead
        // blocks; clear their bodies so the verifier sees no stale edges.
        for (i, block) in self.blocks.iter_mut().enumerate() {
            if !reach[i] {
                block.insts.clear();
            }
        }
    }

    /// True when every block is a *basic* block: control leaves only at the
    /// end. Two terminator shapes are allowed:
    ///
    /// * a single exit as the final instruction (conditional branch with
    ///   fall-through, jump, ret, or halt), or
    /// * the *double terminator* `[..., Br, Jump/Ret/Halt]` — a conditional
    ///   branch whose not-taken path immediately leaves via the final
    ///   instruction (frontends emit this so they never rely on layout
    ///   order).
    pub fn is_basic(&self) -> bool {
        self.layout.iter().all(|&b| {
            let insts = &self.block(b).insts;
            let n = insts.len();
            insts.iter().enumerate().all(|(i, inst)| {
                if !inst.is_exit() {
                    return true;
                }
                if i + 1 == n {
                    return true;
                }
                // Second-to-last: allowed only for Br followed by an
                // unconditional ender.
                i + 2 == n && matches!(inst.op, Op::Br(_)) && insts[n - 1].op.ends_block()
            })
        })
    }
}

/// A global data object (scalar or array) in the data segment.
#[derive(Debug, Clone)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Absolute byte address in simulated memory.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents (zero-padded to `size`).
    pub init: Vec<u8>,
}

/// A whole program: functions plus a data segment of globals.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Global data objects.
    pub globals: Vec<Global>,
    data_end: u64,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module {
            funcs: Vec::new(),
            globals: Vec::new(),
            data_end: DATA_BASE,
        }
    }

    /// Adds a function, returning its id.
    pub fn push(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Allocates a global of `size` bytes (8-aligned) with initial
    /// contents `init`, returning its address.
    ///
    /// # Panics
    /// Panics if `init` is longer than `size` or the data segment overflows
    /// into the stack region. Frontends lowering untrusted source should
    /// use [`Module::try_add_global`] and report a compile error instead.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64, init: Vec<u8>) -> u64 {
        self.try_add_global(name, size, init)
            .expect("global initializer too long or data segment overflow")
    }

    /// Non-panicking [`Module::add_global`]: returns `None` (leaving the
    /// module unchanged) when `init` is longer than `size` or the data
    /// segment would overflow into the stack region.
    pub fn try_add_global(
        &mut self,
        name: impl Into<String>,
        size: u64,
        init: Vec<u8>,
    ) -> Option<u64> {
        if init.len() as u64 > size {
            return None;
        }
        let addr = self.data_end;
        let end = addr.checked_add(size)?.checked_add(7)? & !7;
        if end >= MEM_SIZE / 2 {
            return None;
        }
        self.data_end = end;
        self.globals.push(Global {
            name: name.into(),
            addr,
            size,
            init,
        });
        Some(addr)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// End of the data segment (first free byte).
    pub fn data_end(&self) -> u64 {
        self.data_end
    }

    /// Resolves calls recorded by name into [`FuncId`]s.
    ///
    /// # Errors
    /// Returns the name of the first callee that does not exist.
    pub fn link(&mut self) -> Result<(), String> {
        let names: HashMap<String, FuncId> = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        for f in &mut self.funcs {
            if f.pending_callees.is_empty() {
                continue;
            }
            let pending = std::mem::take(&mut f.pending_callees);
            let mut resolve: HashMap<InstId, FuncId> = HashMap::new();
            for (iid, name) in pending {
                let id = *names.get(&name).ok_or(name)?;
                resolve.insert(iid, id);
            }
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if inst.op == Op::Call && inst.callee.is_none() {
                        if let Some(&fid) = resolve.get(&inst.id) {
                            inst.callee = Some(fid);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CmpOp, Operand};

    #[test]
    fn fresh_ids_are_unique() {
        let mut f = Function::new("t");
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        assert_ne!(a, b);
        let p = f.fresh_pred();
        let q = f.fresh_pred();
        assert_ne!(p, q);
        let i = f.fresh_inst_id();
        let j = f.fresh_inst_id();
        assert_ne!(i, j);
    }

    #[test]
    fn succs_fallthrough_and_branch() {
        let mut f = Function::new("t");
        let b0 = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        // b0: br eq r0,0 -> b2 ; fallthrough b1
        let mut br = f.make_inst(Op::Br(CmpOp::Eq));
        br.srcs = vec![Operand::Imm(0), Operand::Imm(0)];
        br.target = Some(b2);
        f.block_mut(b0).insts.push(br);
        let s = f.succs(b0);
        assert_eq!(s, vec![b2, b1]);
        // b2 last in layout, no terminator -> no successors
        assert!(f.succs(b2).is_empty());
        // b1 has no terminator, so it falls through to b2 as well.
        assert_eq!(f.preds()[b2.index()], vec![b0, b1]);
    }

    #[test]
    fn jump_has_no_fallthrough() {
        let mut f = Function::new("t");
        let b0 = f.entry();
        let _b1 = f.add_block();
        let b2 = f.add_block();
        let mut j = f.make_inst(Op::Jump);
        j.target = Some(b2);
        f.block_mut(b0).insts.push(j);
        assert_eq!(f.succs(b0), vec![b2]);
    }

    #[test]
    fn remove_unreachable_drops_dead_blocks() {
        let mut f = Function::new("t");
        let b0 = f.entry();
        let b1 = f.add_block(); // falls after b0; b0 jumps over it
        let b2 = f.add_block();
        let mut j = f.make_inst(Op::Jump);
        j.target = Some(b2);
        f.block_mut(b0).insts.push(j);
        let ret = f.make_inst(Op::Ret);
        f.block_mut(b2).insts.push(ret);
        f.remove_unreachable();
        assert_eq!(f.layout, vec![b0, b2]);
        assert!(f.block(b1).insts.is_empty());
    }

    #[test]
    fn module_globals_are_aligned_and_disjoint() {
        let mut m = Module::new();
        let a = m.add_global("a", 3, vec![1, 2, 3]);
        let b = m.add_global("b", 8, vec![]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
        assert_eq!(m.global("a").unwrap().init, vec![1, 2, 3]);
        assert!(m.global("zzz").is_none());
    }

    #[test]
    fn link_resolves_pending_callees() {
        let mut m = Module::new();
        let mut f = Function::new("caller");
        let call = {
            let mut c = f.make_inst(Op::Call);
            c.dst = Some(f.fresh_reg());
            f.pending_callees.insert(c.id, "callee".to_string());
            c
        };
        let entry = f.entry();
        f.block_mut(entry).insts.push(call);
        let ret = f.make_inst(Op::Ret);
        f.block_mut(entry).insts.push(ret);
        m.push(f);
        m.push(Function::new("callee"));
        m.link().unwrap();
        let callee = m.func_by_name("callee").unwrap();
        assert_eq!(m.funcs[0].blocks[0].insts[0].callee, Some(callee));
    }

    #[test]
    fn link_reports_missing_callee() {
        let mut m = Module::new();
        let mut f = Function::new("caller");
        let mut c = f.make_inst(Op::Call);
        f.pending_callees.insert(c.id, "nope".to_string());
        c.dst = Some(f.fresh_reg());
        let entry = f.entry();
        f.block_mut(entry).insts.push(c);
        m.push(f);
        assert_eq!(m.link(), Err("nope".to_string()));
    }

    #[test]
    fn is_basic_detects_mid_block_branches() {
        let mut f = Function::new("t");
        let b0 = f.entry();
        let b1 = f.add_block();
        let mut br = f.make_inst(Op::Br(CmpOp::Eq));
        br.srcs = vec![Operand::Imm(0), Operand::Imm(0)];
        br.target = Some(b1);
        let nop = f.make_inst(Op::Nop);
        f.block_mut(b0).insts.push(br);
        assert!(f.is_basic());
        f.block_mut(b0).insts.push(nop);
        assert!(!f.is_basic());
    }
}
