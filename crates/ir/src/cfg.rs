//! Control-flow graph analyses: reverse postorder, dominators, natural loops.

use crate::module::Function;
use crate::types::BlockId;

/// A snapshot of a function's control-flow graph.
///
/// The CFG is invalidated by any pass that adds/removes branches or changes
/// the layout; rebuild with [`Cfg::new`].
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists indexed by block id.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists indexed by block id.
    pub preds: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`None` if unreachable).
    pub rpo_pos: Vec<Option<usize>>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        for &b in &f.layout {
            succs[b.index()] = f.succs(b);
        }
        let mut preds = vec![Vec::new(); n];
        for &b in &f.layout {
            for &s in &succs[b.index()] {
                if !preds[s.index()].contains(&b) {
                    preds[s.index()].push(b);
                }
            }
        }
        // Iterative postorder DFS.
        let mut post = Vec::new();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        state[f.entry().index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![None; n];
        for (i, &b) in post.iter().enumerate() {
            rpo_pos[b.index()] = Some(i);
        }
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_pos,
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()].is_some()
    }
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy).
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    rpo_pos: Vec<Option<usize>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> DomTree {
        let n = cfg.succs.len();
        let entry = cfg.rpo[0];
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let pos = |b: BlockId| cfg.rpo_pos[b.index()].expect("reachable");
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if !cfg.reachable(p) || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            // intersect(cur, p)
                            let (mut x, mut y) = (cur, p);
                            while x != y {
                                while pos(x) > pos(y) {
                                    x = idom[x.index()].unwrap();
                                }
                                while pos(y) > pos(x) {
                                    y = idom[y.index()].unwrap();
                                }
                            }
                            x
                        }
                    });
                }
                if idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree {
            idom,
            rpo_pos: cfg.rpo_pos.clone(),
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// A natural loop: a header plus the set of blocks on paths from back-edge
/// sources to the header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks in the loop, header included, in discovery order.
    pub body: Vec<BlockId>,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function (loops sharing a header are merged, per
/// the classic definition).
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops, innermost-last not guaranteed; keyed by header.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects natural loops from back edges (`u -> h` where `h` dominates
    /// `u`).
    pub fn new(cfg: &Cfg, doms: &DomTree) -> LoopForest {
        let mut loops: Vec<Loop> = Vec::new();
        for &u in &cfg.rpo {
            for &h in &cfg.succs[u.index()] {
                if doms.dominates(h, u) {
                    // back edge u -> h
                    let lp = match loops.iter_mut().find(|l| l.header == h) {
                        Some(l) => l,
                        None => {
                            loops.push(Loop {
                                header: h,
                                body: vec![h],
                                latches: Vec::new(),
                            });
                            loops.last_mut().unwrap()
                        }
                    };
                    lp.latches.push(u);
                    // Backward walk from u to h.
                    let mut stack = vec![u];
                    while let Some(b) = stack.pop() {
                        if lp.body.contains(&b) {
                            continue;
                        }
                        lp.body.push(b);
                        for &p in &cfg.preds[b.index()] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any (smallest body).
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::{CmpOp, Operand};
    use crate::Function;

    /// Builds a diamond: B0 -> {B1, B2} -> B3, with a loop B3 -> B0.
    fn diamond_loop() -> Function {
        let mut f = Function::new("t");
        let b0 = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let b4 = f.add_block();
        // b0: br -> b2 (else fall to b1)
        let mut br = f.make_inst(Op::Br(CmpOp::Eq));
        br.srcs = vec![Operand::Imm(0), Operand::Imm(0)];
        br.target = Some(b2);
        f.block_mut(b0).insts.push(br);
        // b1: jump b3
        let mut j = f.make_inst(Op::Jump);
        j.target = Some(b3);
        f.block_mut(b1).insts.push(j);
        // b2: fall to b3
        // b3: br -> b0 (loop), else fall to b4
        let mut back = f.make_inst(Op::Br(CmpOp::Ne));
        back.srcs = vec![Operand::Imm(0), Operand::Imm(0)];
        back.target = Some(b0);
        f.block_mut(b3).insts.push(back);
        // b4: ret
        let r = f.make_inst(Op::Ret);
        f.block_mut(b4).insts.push(r);
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo[0], f.entry());
        assert_eq!(cfg.rpo.len(), 5);
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        let doms = DomTree::new(&cfg);
        let b = |i: u32| BlockId(i);
        assert!(doms.dominates(b(0), b(3)));
        assert!(!doms.dominates(b(1), b(3)));
        assert!(!doms.dominates(b(2), b(3)));
        assert_eq!(doms.idom(b(3)), Some(b(0)));
        assert_eq!(doms.idom(b(1)), Some(b(0)));
        assert_eq!(doms.idom(b(0)), None);
        assert!(doms.dominates(b(0), b(0)));
    }

    #[test]
    fn loop_detection() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        let doms = DomTree::new(&cfg);
        let loops = LoopForest::new(&cfg, &doms);
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.header, BlockId(0));
        assert_eq!(l.latches, vec![BlockId(3)]);
        let mut body = l.body.clone();
        body.sort();
        assert_eq!(body, vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
        assert!(loops.innermost(BlockId(2)).is_some());
        assert!(loops.innermost(BlockId(4)).is_none());
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("t");
        let e = f.entry();
        let r = f.make_inst(Op::Ret);
        f.block_mut(e).insts.push(r);
        let cfg = Cfg::new(&f);
        let doms = DomTree::new(&cfg);
        let loops = LoopForest::new(&cfg, &doms);
        assert!(loops.loops.is_empty());
    }
}
