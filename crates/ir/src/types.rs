//! Core identifier and operand types.

use std::fmt;

/// A virtual general-purpose register.
///
/// The paper's baseline machine assumes an infinite register file, so
/// registers are never allocated to a finite set; every SSA-ish temporary
/// simply gets a fresh `Reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// Index as `usize`, for register-file vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A 1-bit predicate register (full-predication extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(pub u32);

impl PredReg {
    /// Index as `usize`, for predicate-file vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a [`crate::Block`] within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index as `usize`, for block vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Index of a [`crate::Function`] within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index as `usize`, for function vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Unique (per function) identifier of a static instruction.
///
/// Identifiers survive reordering but not duplication: passes that copy
/// instructions (tail duplication, conversion expansion) must assign fresh
/// ids via [`crate::Function::fresh_inst_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An instruction source operand: a register or an immediate.
///
/// Floating-point immediates are stored as the raw `f64` bit pattern of the
/// immediate (registers are 64-bit and untyped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register source.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate, if this operand is one.
    #[inline]
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }

    /// Builds a floating-point immediate (bit pattern of `v`).
    #[inline]
    pub fn fimm(v: f64) -> Operand {
        Operand::Imm(v.to_bits() as i64)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operator used by compares, branches and predicate defines.
///
/// Comparisons are signed 64-bit (or IEEE `f64` for the floating-point
/// variants of the owning opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Evaluates the comparison on signed integers.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on floats.
    #[inline]
    pub fn eval_f(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The logical negation: `inverse(a cmp b) == !(a cmp b)`.
    ///
    /// Note that for floats with NaN this identity does not hold; the
    /// pipeline never relies on NaN-correct inversion (MiniC has no NaN
    /// sources).
    #[inline]
    pub fn inverse(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison with swapped operands: `a cmp b == b cmp.swap() a`.
    #[inline]
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Assembly-style mnemonic suffix (`eq`, `ne`, `lt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Access width of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte, zero-extended on load (MiniC `char`).
    Byte,
    /// Eight bytes (MiniC `int` / `float`).
    Word,
}

impl MemWidth {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Word => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_matches_rust() {
        for cmp in CmpOp::ALL {
            for a in [-3i64, 0, 1, 7] {
                for b in [-3i64, 0, 1, 7] {
                    let got = cmp.eval(a, b);
                    let want = match cmp {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                    };
                    assert_eq!(got, want, "{cmp:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn inverse_is_negation() {
        for cmp in CmpOp::ALL {
            for a in [-2i64, 0, 5] {
                for b in [-2i64, 0, 5] {
                    assert_eq!(cmp.eval(a, b), !cmp.inverse().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn swap_swaps_operands() {
        for cmp in CmpOp::ALL {
            for a in [-2i64, 0, 5] {
                for b in [-2i64, 0, 5] {
                    assert_eq!(cmp.eval(a, b), cmp.swap().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn inverse_is_involution() {
        for cmp in CmpOp::ALL {
            assert_eq!(cmp.inverse().inverse(), cmp);
        }
    }

    #[test]
    fn operand_accessors() {
        let r = Operand::Reg(Reg(3));
        assert_eq!(r.as_reg(), Some(Reg(3)));
        assert_eq!(r.as_imm(), None);
        let i = Operand::Imm(-7);
        assert_eq!(i.as_imm(), Some(-7));
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn fimm_round_trips() {
        let op = Operand::fimm(1.5);
        assert_eq!(f64::from_bits(op.as_imm().unwrap() as u64), 1.5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(4).to_string(), "r4");
        assert_eq!(PredReg(2).to_string(), "p2");
        assert_eq!(BlockId(9).to_string(), "B9");
        assert_eq!(Operand::Imm(-1).to_string(), "-1");
        assert_eq!(CmpOp::Ge.to_string(), "ge");
    }
}
