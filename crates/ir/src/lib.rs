//! Predicated intermediate representation for ILP compilation research.
//!
//! This crate defines the load/store RISC-style IR used throughout the
//! `hyperpred` workspace, a reproduction of Mahlke et al., *"A Comparison of
//! Full and Partial Predicated Execution Support for ILP Processors"*
//! (ISCA 1995).
//!
//! The IR models three levels of architectural support in one instruction
//! set:
//!
//! * **Full predication** — every [`Inst`] carries an optional *guard*
//!   predicate register; predicate values are produced by
//!   [`Op::PredDef`] instructions whose destination predicate types
//!   ([`PredType`]) implement the paper's Table 1 truth table
//!   (unconditional, OR, AND, and their complements), plus
//!   [`Op::PredClear`] / [`Op::PredSet`] for bulk initialization.
//! * **Partial predication** — [`Op::Cmov`], [`Op::CmovCom`] and
//!   [`Op::Select`] conditionally update a general register.
//! * **No predication** — the plain instruction set, with *silent*
//!   (non-excepting) forms of every opcode for speculative execution
//!   (the [`Inst::speculative`] flag).
//!
//! Programs are organized as a [`Module`] of [`Function`]s; each function is
//! a list of [`Block`]s plus a code **layout** order that defines
//! fall-through successors. Branches are allowed anywhere inside a block so
//! that superblocks and hyperblocks (single-entry, multiple-exit linear
//! regions) can be represented as single blocks with internal exit branches.
//!
//! # Example
//!
//! ```
//! use hyperpred_ir::{FuncBuilder, Module, Operand, CmpOp};
//!
//! let mut module = Module::new();
//! let mut b = FuncBuilder::new("add1");
//! let x = b.param();
//! let one = Operand::Imm(1);
//! let y = b.add(Operand::Reg(x), one);
//! b.ret(Some(Operand::Reg(y)));
//! module.push(b.finish());
//! module.link().unwrap();
//! assert!(module.verify().is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod inst;
pub mod liveness;
pub mod module;
pub mod parse;
pub mod pred;
pub mod printer;
pub mod types;
pub mod verify;

pub use analysis::{
    check_function, check_module, CheckKind, ModelClass, RelAnalysis, RelState, RelationDb,
    Snapshot, Violation,
};
pub use builder::FuncBuilder;
pub use cfg::{Cfg, DomTree, Loop, LoopForest};
pub use inst::{Inst, Op};
pub use liveness::{LiveSet, Liveness};
pub use module::{Block, Function, Global, Module};
pub use parse::{parse_function, ParseError};
pub use pred::{PredDst, PredType};
pub use types::{BlockId, CmpOp, FuncId, InstId, MemWidth, Operand, PredReg, Reg};
pub use verify::VerifyError;
