//! Instructions and opcodes.

use crate::pred::PredDst;
use crate::types::{BlockId, CmpOp, FuncId, InstId, MemWidth, Operand, PredReg, Reg};

/// Opcode of an [`Inst`].
///
/// The source-operand layout per opcode is fixed:
///
/// | opcode | `srcs` | `dst` | other |
/// |---|---|---|---|
/// | ALU binop (`Add`..`Sra`) | `[a, b]` | result | |
/// | `Cmp(c)` | `[a, b]` | 0/1 result | |
/// | `Mov` | `[a]` | copy | |
/// | `FAdd`..`FCmp`, `IToF`, `FToI` | as integer forms | result | operate on `f64` bit patterns |
/// | `Ld(w)` | `[base, off]` | loaded value | |
/// | `St(w)` | `[base, off, value]` | — | |
/// | `Br(c)` | `[a, b]` | — | `target` |
/// | `Jump` | `[]` | — | `target` |
/// | `Call` | args | return value | `callee` |
/// | `Ret` | `[]` or `[value]` | — | |
/// | `Halt` | `[]` | — | stops the program |
/// | `PredDef(c)` / `FPredDef(c)` | `[a, b]` | — | `pdsts` (1–2 typed predicate dests) |
/// | `PredClear` / `PredSet` | `[]` | — | clears/sets the whole predicate file |
/// | `Cmov` | `[value, cond]` | written iff `cond != 0` | |
/// | `CmovCom` | `[value, cond]` | written iff `cond == 0` | |
/// | `Select` | `[tval, fval, cond]` | always written | |
/// | `Nop` | `[]` | — | |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = a + b` (wrapping).
    Add,
    /// `dst = a - b` (wrapping).
    Sub,
    /// `dst = a * b` (wrapping).
    Mul,
    /// `dst = a / b` (signed; traps on zero unless speculative).
    Div,
    /// `dst = a % b` (signed; traps on zero unless speculative).
    Rem,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = a & !b` — complementary AND assumed by the paper's peepholes.
    AndNot,
    /// `dst = a | !b` — complementary OR assumed by the paper's peepholes.
    OrNot,
    /// `dst = a << (b & 63)`.
    Shl,
    /// `dst = ((a as u64) >> (b & 63)) as i64` (logical).
    Shr,
    /// `dst = a >> (b & 63)` (arithmetic).
    Sra,
    /// `dst = (a cmp b) as i64`.
    Cmp(CmpOp),
    /// `dst = a`.
    Mov,
    /// Floating add on `f64` bit patterns.
    FAdd,
    /// Floating subtract.
    FSub,
    /// Floating multiply.
    FMul,
    /// Floating divide (traps on zero divisor unless speculative).
    FDiv,
    /// `dst = (a fcmp b) as i64`.
    FCmp(CmpOp),
    /// Integer to float conversion.
    IToF,
    /// Float to integer (truncating) conversion.
    FToI,
    /// Load: `dst = mem[a + b]` (traps on bad address unless speculative).
    Ld(MemWidth),
    /// Store: `mem[a + b] = value`.
    St(MemWidth),
    /// Conditional branch to `target` when `a cmp b`.
    Br(CmpOp),
    /// Unconditional jump to `target`.
    Jump,
    /// Call `callee(args...)`; `dst` receives the return value.
    Call,
    /// Return from the current function with an optional value.
    Ret,
    /// Stop the program (top-level return).
    Halt,
    /// Predicate define comparing integers (paper §2.1).
    PredDef(CmpOp),
    /// Predicate define comparing floats.
    FPredDef(CmpOp),
    /// Clear the entire predicate register file to 0.
    PredClear,
    /// Set the entire predicate register file to 1.
    PredSet,
    /// Conditional move: `if cond != 0 { dst = value }` (paper §2.2).
    Cmov,
    /// Complement conditional move: `if cond == 0 { dst = value }`.
    CmovCom,
    /// `dst = if cond != 0 { tval } else { fval }`.
    Select,
    /// No operation.
    Nop,
}

impl Op {
    /// True for control transfers that carry a `target` (conditional
    /// branches and jumps). Calls and returns are not "branches" for the
    /// branch-resource limit, matching the paper's machine model.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Br(_) | Op::Jump)
    }

    /// True for instructions after which control never falls through.
    #[inline]
    pub fn ends_block(self) -> bool {
        matches!(self, Op::Jump | Op::Ret | Op::Halt)
    }

    /// True if this opcode reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Ld(_))
    }

    /// True if this opcode writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, Op::St(_))
    }

    /// True if a non-speculative execution of this opcode may raise a
    /// program-terminating exception (divide-by-zero, illegal address).
    #[inline]
    pub fn may_trap(self) -> bool {
        matches!(self, Op::Div | Op::Rem | Op::FDiv | Op::Ld(_))
    }

    /// True if the opcode may be executed speculatively (hoisted above a
    /// branch or promoted off a predicate) given its *silent* form: it only
    /// writes its destination register.
    #[inline]
    pub fn can_speculate(self) -> bool {
        !matches!(
            self,
            Op::St(_)
                | Op::Br(_)
                | Op::Jump
                | Op::Call
                | Op::Ret
                | Op::Halt
                | Op::PredDef(_)
                | Op::FPredDef(_)
                | Op::PredClear
                | Op::PredSet
        )
    }

    /// True if the instruction has effects beyond writing its destination
    /// register / predicate destinations, i.e. must never be removed by DCE.
    #[inline]
    pub fn has_side_effects(self) -> bool {
        matches!(
            self,
            Op::St(_) | Op::Br(_) | Op::Jump | Op::Call | Op::Ret | Op::Halt
        )
    }

    /// True for predicate defines (integer or float).
    #[inline]
    pub fn is_pred_def(self) -> bool {
        matches!(self, Op::PredDef(_) | Op::FPredDef(_))
    }

    /// The comparison carried by this opcode, if any.
    #[inline]
    pub fn cmp(self) -> Option<CmpOp> {
        match self {
            Op::Cmp(c) | Op::FCmp(c) | Op::Br(c) | Op::PredDef(c) | Op::FPredDef(c) => Some(c),
            _ => None,
        }
    }
}

/// A single IR instruction.
///
/// Every instruction may carry a *guard* predicate (full predication): when
/// the guard evaluates false the instruction is nullified — it modifies no
/// state, accesses no memory, and transfers no control.
///
/// The `speculative` flag selects the *silent* (non-excepting) form of the
/// opcode: a silent load of an unmapped address produces 0, a silent divide
/// by zero produces 0. The baseline machine of the paper provides silent
/// forms of all instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Unique id within the function (see [`InstId`]).
    pub id: InstId,
    /// Opcode.
    pub op: Op,
    /// Destination register, for opcodes that produce a value.
    pub dst: Option<Reg>,
    /// Source operands (layout documented on [`Op`]).
    pub srcs: Vec<Operand>,
    /// Typed predicate destinations (predicate defines only; at most 2).
    pub pdsts: Vec<PredDst>,
    /// Guard predicate (`None` = always execute).
    pub guard: Option<PredReg>,
    /// Branch target (branches and jumps only).
    pub target: Option<BlockId>,
    /// Callee (calls only).
    pub callee: Option<FuncId>,
    /// Silent / non-excepting form (set on speculated or promoted code).
    pub speculative: bool,
    /// Issue cycle within the owning block, assigned by the scheduler.
    pub cycle: u32,
}

impl Inst {
    /// Creates a bare instruction; the builder and passes fill in operands.
    pub fn new(id: InstId, op: Op) -> Inst {
        Inst {
            id,
            op,
            dst: None,
            srcs: Vec::new(),
            pdsts: Vec::new(),
            guard: None,
            target: None,
            callee: None,
            speculative: false,
            cycle: 0,
        }
    }

    /// Register sources (skipping immediates), in operand order.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|s| s.as_reg())
    }

    /// True when this instruction only *partially* defines its destination
    /// register: when nullified or when the condition fails, the previous
    /// value persists. Partial definitions do not kill liveness.
    #[inline]
    pub fn is_partial_reg_def(&self) -> bool {
        matches!(self.op, Op::Cmov | Op::CmovCom) || (self.guard.is_some() && self.dst.is_some())
    }

    /// Predicate registers read by this instruction (its guard).
    #[inline]
    pub fn pred_uses(&self) -> impl Iterator<Item = PredReg> + '_ {
        self.guard.into_iter().chain(
            self.pdsts
                .iter()
                .filter(|d| d.ty.is_partial())
                .map(|d| d.reg),
        )
    }

    /// Predicate registers written by this instruction. Returns `None` for
    /// [`Op::PredClear`] / [`Op::PredSet`], which define the *entire* file
    /// (see [`Inst::defines_all_preds`]).
    #[inline]
    pub fn pred_defs(&self) -> impl Iterator<Item = PredReg> + '_ {
        self.pdsts.iter().map(|d| d.reg)
    }

    /// True for `pred_clear` / `pred_set`, which write every predicate
    /// register at once.
    #[inline]
    pub fn defines_all_preds(&self) -> bool {
        matches!(self.op, Op::PredClear | Op::PredSet)
    }

    /// True if this instruction, in silent form, is a legal candidate for
    /// upward speculation: it can speculate, and it writes (at most) a
    /// general register.
    #[inline]
    pub fn can_speculate(&self) -> bool {
        self.op.can_speculate() && self.guard.is_none()
    }

    /// Rewrites every use of register `from` to operand `to`.
    pub fn replace_src(&mut self, from: Reg, to: Operand) {
        for s in &mut self.srcs {
            if s.as_reg() == Some(from) {
                *s = to;
            }
        }
    }

    /// True if this is an unconditional control transfer or a conditional
    /// branch — anything that can leave the linear instruction stream.
    #[inline]
    pub fn is_exit(&self) -> bool {
        self.op.is_branch() || matches!(self.op, Op::Ret | Op::Halt)
    }

    /// True when control can never continue past this instruction: an
    /// *unguarded* jump/ret/halt. A guarded jump falls through when its
    /// predicate is false, so it does not end the block.
    #[inline]
    pub fn ends_block(&self) -> bool {
        self.op.ends_block() && self.guard.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InstId, Operand, PredReg, Reg};
    use crate::PredType;

    fn inst(op: Op) -> Inst {
        Inst::new(InstId(0), op)
    }

    #[test]
    fn classification() {
        assert!(Op::Br(CmpOp::Eq).is_branch());
        assert!(Op::Jump.is_branch());
        assert!(!Op::Call.is_branch());
        assert!(Op::Jump.ends_block());
        assert!(Op::Ret.ends_block());
        assert!(!Op::Br(CmpOp::Eq).ends_block());
        assert!(Op::Ld(MemWidth::Word).may_trap());
        assert!(Op::Div.may_trap());
        assert!(!Op::Add.may_trap());
        assert!(Op::Ld(MemWidth::Byte).can_speculate());
        assert!(!Op::St(MemWidth::Byte).can_speculate());
        assert!(!Op::PredDef(CmpOp::Eq).can_speculate());
        assert!(Op::Cmov.can_speculate());
        assert!(Op::St(MemWidth::Word).has_side_effects());
        assert!(!Op::Cmp(CmpOp::Lt).has_side_effects());
    }

    #[test]
    fn partial_defs() {
        let mut i = inst(Op::Cmov);
        i.dst = Some(Reg(1));
        assert!(i.is_partial_reg_def());

        let mut j = inst(Op::Add);
        j.dst = Some(Reg(1));
        assert!(!j.is_partial_reg_def());
        j.guard = Some(PredReg(0));
        assert!(j.is_partial_reg_def());

        let mut s = inst(Op::Select);
        s.dst = Some(Reg(1));
        assert!(!s.is_partial_reg_def());
    }

    #[test]
    fn pred_uses_include_partial_dests() {
        let mut d = inst(Op::PredDef(CmpOp::Eq));
        d.pdsts.push(PredDst::new(PredReg(1), PredType::Or));
        d.pdsts.push(PredDst::new(PredReg(2), PredType::UBar));
        d.guard = Some(PredReg(3));
        let uses: Vec<_> = d.pred_uses().collect();
        // guard + OR-type destination (read-modify-write), but not the U-type.
        assert_eq!(uses, vec![PredReg(3), PredReg(1)]);
        let defs: Vec<_> = d.pred_defs().collect();
        assert_eq!(defs, vec![PredReg(1), PredReg(2)]);
    }

    #[test]
    fn replace_src_rewrites_all_uses() {
        let mut i = inst(Op::Add);
        i.srcs = vec![Operand::Reg(Reg(1)), Operand::Reg(Reg(1))];
        i.replace_src(Reg(1), Operand::Imm(5));
        assert_eq!(i.srcs, vec![Operand::Imm(5), Operand::Imm(5)]);
    }

    #[test]
    fn src_regs_skips_imms() {
        let mut i = inst(Op::Add);
        i.srcs = vec![Operand::Reg(Reg(2)), Operand::Imm(1)];
        assert_eq!(i.src_regs().collect::<Vec<_>>(), vec![Reg(2)]);
    }
}
