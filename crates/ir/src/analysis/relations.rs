//! Predicate relation analysis — the Predicate Query System (PQS).
//!
//! The paper's Table 1 define semantics give every predicate write an
//! algebraic shape: an unconditional define computes `Pin ∧ ±cmp` outright,
//! an OR-type only raises its target, an AND-type only lowers it, and a
//! complemented type flips the comparison sense. From those shapes alone a
//! forward dataflow can derive *relations between predicate values* at each
//! program point:
//!
//! * **disjoint(p, q)** — `p` and `q` are never simultaneously true,
//! * **subset(p, q)** — `p == true` implies `q == true` (`p ⊆ q`),
//! * **complement(p, q)** — disjoint *and* jointly exhaustive (`p ∨ q = ⊤`),
//! * **implied_true(p, ctx)** — `p` is guaranteed true in a context guarded
//!   by `ctx` (or unconditionally).
//!
//! This is the relation database de Ferrière's Psi-SSA work identifies as
//! the enabler for optimizing predicated code: a dual `U`/`U̅` define under
//! guard `g` carves `g` into two disjoint halves that jointly span it, an
//! OR-accumulation chain under `g` stays inside `g`, and a complement pair
//! that spans ⊤ lets passes reason about else-paths without re-deriving
//! control flow. Queries are O(1) bit tests after a single fixpoint build.
//!
//! Soundness is value-level: every fact is a claim about the *current boolean
//! values* of the predicate file at that point, independent of whether the
//! registers are formally initialized (an unconditional define writes
//! `Pin ∧ ±cmp` even when `Pin` is 0, so `q ⊆ g` holds the instant the
//! define executes, junk inputs included). Facts are killed or narrowed on
//! redefinition according to the target's family: a fresh `U` value drops
//! everything known about the register, OR growth keeps only facts valid
//! for both the old value and the freshly-merged `Pin ∧ ±cmp` part, AND
//! shrinkage keeps facts monotone under lowering. Joins intersect. The
//! companion checker [`check_relations`] validates the structural invariants
//! (symmetry, irreflexivity, transfer closure) of a built database, so a
//! corrupted partition graph is caught at the pipeline checkpoint.

use super::dataflow::{forward, BitSet, ForwardAnalysis};
use crate::cfg::Cfg;
use crate::inst::{Inst, Op};
use crate::module::Function;
use crate::types::{BlockId, PredReg};

/// The `t` of a partition fact spanning every path (`a ∨ b = ⊤`).
pub const TOP: u32 = u32::MAX;

/// Relation facts over the predicate file at one program point.
///
/// `disjoint` rows are kept symmetric and irreflexive; `subset` rows are
/// irreflexive (`p ⊆ p` is implicit). `partitions` holds sorted facts
/// `[a, b, t]` meaning `a ∨ b ⊇ t` (with `t == TOP` for "spans every
/// path"), in the same shape the `MustDefined` analysis uses for its
/// write-coverage saturation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelState {
    disjoint: Vec<BitSet>,
    subset: Vec<BitSet>,
    known: BitSet,
    fals: BitSet,
    partitions: Vec<[u32; 3]>,
}

impl RelState {
    fn empty(np: usize) -> RelState {
        RelState {
            disjoint: vec![BitSet::empty(np); np],
            subset: vec![BitSet::empty(np); np],
            known: BitSet::empty(np),
            fals: BitSet::empty(np),
            partitions: Vec::new(),
        }
    }

    /// Number of predicate registers covered.
    pub fn pred_count(&self) -> usize {
        self.known.capacity()
    }

    /// True if `p` and `q` are never simultaneously true here.
    pub fn disjoint(&self, p: PredReg, q: PredReg) -> bool {
        if self.fals.contains(p.index()) || self.fals.contains(q.index()) {
            return true;
        }
        p != q && self.disjoint[p.index()].contains(q.index())
    }

    /// True if `p == true` implies `q == true` here (`p ⊆ q`).
    pub fn subset(&self, p: PredReg, q: PredReg) -> bool {
        p == q
            || self.subset[p.index()].contains(q.index())
            || self.known.contains(q.index())
            || self.fals.contains(p.index())
    }

    /// True if `p` and `q` are disjoint and jointly span every path.
    pub fn complement(&self, p: PredReg, q: PredReg) -> bool {
        self.disjoint(p, q)
            && (self.known.contains(p.index()) || self.known.contains(q.index()) || {
                let (a, b) = (p.index() as u32, q.index() as u32);
                self.partitions.binary_search(&[a, b, TOP]).is_ok()
                    || self.partitions.binary_search(&[b, a, TOP]).is_ok()
            })
    }

    /// True if `p` is guaranteed true whenever a context guarded by `ctx`
    /// executes (`ctx == None` asks for unconditional truth).
    pub fn implied_true(&self, p: PredReg, ctx: Option<PredReg>) -> bool {
        self.known.contains(p.index()) || ctx.is_some_and(|g| self.subset(g, p))
    }

    /// True if `p` is known true on every path to this point.
    pub fn known_true(&self, p: PredReg) -> bool {
        self.known.contains(p.index())
    }

    /// True if `p` is known false on every path to this point.
    pub fn known_false(&self, p: PredReg) -> bool {
        self.fals.contains(p.index())
    }

    /// Predicates disjoint from `p` (for dumps and oracles).
    pub fn disjoint_of(&self, p: PredReg) -> impl Iterator<Item = PredReg> + '_ {
        self.disjoint[p.index()].ones().map(|i| PredReg(i as u32))
    }

    /// Predicates `q` with `p ⊆ q`, excluding `p` itself.
    pub fn subset_of(&self, p: PredReg) -> impl Iterator<Item = PredReg> + '_ {
        self.subset[p.index()].ones().map(|i| PredReg(i as u32))
    }

    /// The partition facts `[a, b, t]` in force (`t == TOP` spans ⊤).
    pub fn partitions(&self) -> &[[u32; 3]] {
        &self.partitions
    }

    /// Chaos-testing hook: breaks the disjointness *symmetry* invariant
    /// by setting one half of a pair, so [`check_relations`] must
    /// reject this state. Used by the pipeline's `--sabotage relations`
    /// hook to prove a corrupted held graph is caught and blamed; no
    /// real pass calls this. Returns false when the predicate file is
    /// too small to corrupt (fewer than two registers).
    pub fn sabotage(&mut self) -> bool {
        if self.disjoint.len() < 2 {
            return false;
        }
        self.disjoint[0].insert(1);
        self.disjoint[1].remove(0);
        true
    }

    /// True if no fact of any kind is in force.
    pub fn is_vacuous(&self) -> bool {
        self.partitions.is_empty()
            && self.known.ones().next().is_none()
            && self.fals.ones().next().is_none()
            && self.disjoint.iter().all(|r| r.ones().next().is_none())
            && self.subset.iter().all(|r| r.ones().next().is_none())
    }

    /// Drops every fact (the conservative unknown state).
    fn clear_all(&mut self) {
        self.disjoint.iter_mut().for_each(BitSet::clear);
        self.subset.iter_mut().for_each(BitSet::clear);
        self.known.clear();
        self.fals.clear();
        self.partitions.clear();
    }

    /// Forgets everything known about `q`: its own rows, its bit in every
    /// other disjoint row (symmetry), and its bit in every subset row
    /// (`x ⊆ q` facts).
    fn kill(&mut self, q: usize) {
        for x in self.disjoint[q].clone().ones() {
            self.disjoint[x].remove(q);
        }
        self.disjoint[q].clear();
        self.subset[q].clear();
        for row in &mut self.subset {
            row.remove(q);
        }
        self.known.remove(q);
        self.fals.remove(q);
    }

    fn insert_partition(&mut self, fact: [u32; 3]) {
        if let Err(i) = self.partitions.binary_search(&fact) {
            self.partitions.insert(i, fact);
        }
    }
}

/// The predicate relation dataflow (plug into [`forward`] / `walk_block`).
///
/// Transfer rules, by the target's Table 1 family:
///
/// * `pred_clear` (unguarded): every predicate is false — all pairs are
///   disjoint and every subset holds vacuously. `pred_set`: every predicate
///   is true — every subset holds, nothing is disjoint. A *guarded* whole-
///   file define may or may not execute, so all facts drop.
/// * **U-family** target `q` under guard `g`: `q` takes the fresh value
///   `g ∧ ±cmp`, so everything known about `q` dies, then `q ⊆ g` (plus
///   `g`'s own subset closure) and `q` inherits `g`'s disjointness.
/// * **OR-family**: `q` grows by a part inside `g`; facts `q ⊆ x` survive
///   only when the new part is also inside `x`, `q ⟂ x` only when `g ⟂ x`;
///   facts `x ⊆ q` and `q`'s known-truth survive growth.
/// * **AND-family**: `q` shrinks; `q ⊆ x` and `q ⟂ x` survive, `x ⊆ q`
///   and known-truth die.
/// * A **dual define** writing complementary senses `a`/`c` (neither
///   AND-family) adds the partition fact `a ∨ c ⊇ g` (⊤ when unguarded) —
///   sound for OR accumulators too, old contents only add coverage — and,
///   when both halves are unconditional, `a ⟂ c`.
///
/// A define whose guard register is among its own targets derives no
/// guard-based facts (the old guard value is unrecoverable after the
/// write); the kills still apply.
pub struct RelAnalysis;

impl ForwardAnalysis for RelAnalysis {
    type State = RelState;

    fn boundary(&self, f: &Function) -> RelState {
        RelState::empty(f.pred_count as usize)
    }

    fn meet(&self, into: &mut RelState, other: &RelState) -> bool {
        let mut changed = into.known.intersect_with(&other.known);
        changed |= into.fals.intersect_with(&other.fals);
        for (a, b) in into.disjoint.iter_mut().zip(&other.disjoint) {
            changed |= a.intersect_with(b);
        }
        for (a, b) in into.subset.iter_mut().zip(&other.subset) {
            changed |= a.intersect_with(b);
        }
        let before = into.partitions.len();
        into.partitions
            .retain(|p| other.partitions.binary_search(p).is_ok());
        changed | (into.partitions.len() != before)
    }

    fn transfer(&self, inst: &Inst, state: &mut RelState) {
        if inst.defines_all_preds() {
            if inst.guard.is_some() {
                // May or may not have executed: no fact survives both
                // outcomes in general.
                state.clear_all();
                return;
            }
            state.clear_all();
            match inst.op {
                // All false: every pair disjoint, every subset vacuous.
                Op::PredClear => state.fals.set_all(),
                // All true: every subset holds, nothing is disjoint.
                Op::PredSet => state.known.set_all(),
                _ => {}
            }
            return;
        }
        if inst.pdsts.is_empty() {
            return;
        }
        // Guard-derived facts are only sound while the guard register keeps
        // the value the define read as Pin; a define overwriting its own
        // guard forfeits them.
        let guard = inst
            .guard
            .filter(|g| inst.pdsts.iter().all(|pd| pd.reg != *g));
        let guard_hazard = inst.guard.is_some() && guard.is_none();
        for pd in &inst.pdsts {
            let q = pd.reg.index();
            if !pd.ty.is_partial() {
                // U-family: a fresh `g ∧ ±cmp` value.
                state.kill(q);
                if let Some(g) = guard {
                    let gi = g.index();
                    let mut sub = state.subset[gi].clone();
                    sub.insert(gi);
                    sub.remove(q);
                    state.subset[q] = sub;
                    for x in state.disjoint[gi].clone().ones() {
                        state.disjoint[q].insert(x);
                        state.disjoint[x].insert(q);
                    }
                    if state.fals.contains(gi) {
                        // Pin is false on every path: the define writes 0.
                        state.fals.insert(q);
                    }
                }
            } else if pd.ty.is_or_family() {
                // q := q ∨ (g ∧ ±cmp).
                if state.fals.contains(q) {
                    // The accumulator is known false (fresh off pred_clear):
                    // the first deposit behaves exactly like an
                    // unconditional define of the deposited part.
                    state.kill(q);
                    if let Some(g) = guard {
                        let gi = g.index();
                        let mut sub = state.subset[gi].clone();
                        sub.insert(gi);
                        sub.remove(q);
                        state.subset[q] = sub;
                        for x in state.disjoint[gi].clone().ones() {
                            state.disjoint[q].insert(x);
                            state.disjoint[x].insert(q);
                        }
                        if state.fals.contains(gi) {
                            state.fals.insert(q);
                        }
                    }
                } else {
                    // Only facts valid for both the old value and the new
                    // part survive; `x ⊆ q` and known-truth survive growth.
                    match guard {
                        Some(g) => {
                            let gi = g.index();
                            let mut keep = state.subset[gi].clone();
                            keep.insert(gi);
                            state.subset[q].intersect_with(&keep);
                            let gdis = state.disjoint[gi].clone();
                            for x in state.disjoint[q].clone().ones() {
                                if !gdis.contains(x) {
                                    state.disjoint[q].remove(x);
                                    state.disjoint[x].remove(q);
                                }
                            }
                        }
                        _ => {
                            state.subset[q].clear();
                            for x in state.disjoint[q].clone().ones() {
                                state.disjoint[x].remove(q);
                            }
                            state.disjoint[q].clear();
                        }
                    }
                }
            } else {
                // AND-family: q only shrinks. `q ⊆ x` / `q ⟂ x` and
                // known-falsity survive; `x ⊆ q` and known-truth die.
                for row in &mut state.subset {
                    row.remove(q);
                }
                state.known.remove(q);
            }
            // Partition facts: an operand slot survives growth (OR-family),
            // the target slot survives shrinkage (AND-family).
            let qw = q as u32;
            state.partitions.retain(|&[a, b, t]| {
                ((a != qw && b != qw) || pd.ty.is_or_family()) && (t != qw || pd.ty.is_and_family())
            });
        }
        if let [a, c] = inst.pdsts[..] {
            if a.reg != c.reg
                && a.ty.is_complemented() != c.ty.is_complemented()
                && !a.ty.is_and_family()
                && !c.ty.is_and_family()
            {
                if !guard_hazard {
                    let t = guard.map_or(TOP, |g| g.index() as u32);
                    state.insert_partition([a.reg.0, c.reg.0, t]);
                }
                if !a.ty.is_partial() && !c.ty.is_partial() {
                    state.disjoint[a.reg.index()].insert(c.reg.index());
                    state.disjoint[c.reg.index()].insert(a.reg.index());
                }
            }
        }
    }
}

/// The per-function relation database: block-entry fixpoint states.
///
/// Build once, query everywhere: `entry(b)` gives the state at the top of
/// `b`; replay [`RelAnalysis::transfer`](ForwardAnalysis::transfer) (or
/// `walk_block`) to reach any interior point.
pub struct RelationDb {
    /// Entry state per block (`None` for unreachable blocks).
    pub entry: Vec<Option<RelState>>,
}

impl RelationDb {
    /// Runs the relation fixpoint over `f`.
    pub fn build(f: &Function, cfg: &Cfg) -> RelationDb {
        RelationDb {
            entry: forward(f, cfg, &RelAnalysis).entry,
        }
    }

    /// The relation state at the top of `b`, if reachable.
    pub fn entry(&self, b: BlockId) -> Option<&RelState> {
        self.entry.get(b.index()).and_then(|s| s.as_ref())
    }
}

/// Validates the structural invariants of a built relation database against
/// its function: disjoint rows symmetric and irreflexive, subset rows
/// irreflexive, partition facts in range, and the whole graph *closed*
/// under the transfer relation (pushing any block's entry state across its
/// edges must refine into — never add to — the recorded successor states).
/// A fresh [`RelationDb::build`] satisfies all of these by construction;
/// the checks exist so a corrupted or stale graph held by a pipeline
/// checkpoint is caught and blamed, and as an audit of the derivation
/// rules themselves.
pub fn check_relations(
    f: &Function,
    db: &RelationDb,
    mut report: impl FnMut(BlockId, String),
) -> bool {
    let np = f.pred_count as usize;
    let mut clean = true;
    for &b in &f.layout {
        let Some(state) = db.entry(b) else { continue };
        for p in 0..np {
            for q in state.disjoint[p].ones() {
                if q == p {
                    clean = false;
                    report(b, format!("p{p} claimed disjoint from itself"));
                } else if !state.disjoint[q].contains(p) {
                    clean = false;
                    report(b, format!("asymmetric disjointness claim p{p} ⟂ p{q}"));
                }
            }
            if state.subset[p].contains(p) {
                clean = false;
                report(b, format!("reflexive subset claim stored for p{p}"));
            }
        }
        for &[a, c, t] in &state.partitions {
            if a as usize >= np || c as usize >= np || (t != TOP && t as usize >= np) {
                clean = false;
                report(b, format!("partition fact [{a}, {c}, {t}] out of range"));
            }
        }
        // Closure: replay the block and require every outgoing edge's state
        // to be no stronger than what is recorded at the target.
        let mut state = state.clone();
        let mut fell_through = true;
        for inst in &f.block(b).insts {
            if inst.op.is_branch() {
                if let Some(t) = inst.target {
                    let mut taken = state.clone();
                    RelAnalysis.assume_taken(inst, &mut taken);
                    clean &= check_edge(db, b, t, &taken, &mut report);
                }
            }
            RelAnalysis.transfer(inst, &mut state);
            if inst.ends_block() {
                fell_through = false;
                break;
            }
        }
        if fell_through {
            if let Some(next) = f.layout_next(b) {
                clean &= check_edge(db, b, next, &state, &mut report);
            }
        }
    }
    clean
}

fn check_edge(
    db: &RelationDb,
    from: BlockId,
    to: BlockId,
    along: &RelState,
    report: &mut impl FnMut(BlockId, String),
) -> bool {
    let Some(target) = db.entry(to) else {
        report(
            from,
            format!("edge to {to} reaches a block with no recorded relation state"),
        );
        return false;
    };
    let mut met = target.clone();
    if RelAnalysis.meet(&mut met, along) {
        report(
            from,
            format!("relation graph not closed over the edge {from} → {to}"),
        );
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredType;
    use crate::types::{CmpOp, Operand};
    use crate::FuncBuilder;

    /// Walks `f`'s entry block to its end and returns the final state.
    fn end_of_entry(f: &Function) -> RelState {
        let cfg = Cfg::new(f);
        let db = RelationDb::build(f, &cfg);
        let mut s = db.entry(f.entry()).unwrap().clone();
        for inst in &f.block(f.entry()).insts {
            RelAnalysis.transfer(inst, &mut s);
            if inst.ends_block() {
                break;
            }
        }
        s
    }

    #[test]
    fn dual_unconditional_define_is_a_complement() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pt = b.fresh_pred();
        let pf = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(pt, PredType::U), (pf, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(s.disjoint(pt, pf) && s.disjoint(pf, pt));
        assert!(s.complement(pt, pf) && s.complement(pf, pt));
        assert!(!s.subset(pt, pf));
        assert!(s.subset(pt, pt), "subset is reflexive");
    }

    #[test]
    fn guarded_dual_define_nests_inside_its_guard() {
        // p partitions ⊤; p6/p7 partition p. Nested facts: p6 ⊆ p,
        // p6 ⟂ p7, p6 ⟂ p̄ (disjointness inherited through the guard),
        // but p6 and p7 are not a ⊤-complement.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pp = b.fresh_pred();
        let pbar = b.fresh_pred();
        let p6 = b.fresh_pred();
        let p7 = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(pp, PredType::U), (pbar, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Lt,
            &[(p6, PredType::U), (p7, PredType::UBar)],
            x.into(),
            Operand::Imm(10),
            Some(pp),
        );
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(s.subset(p6, pp) && s.subset(p7, pp));
        assert!(s.disjoint(p6, p7));
        assert!(s.disjoint(p6, pbar), "inherited from the guard");
        assert!(s.disjoint(p7, pbar));
        assert!(s.complement(pp, pbar));
        assert!(!s.complement(p6, p7), "they span p, not ⊤");
        assert!(s.implied_true(pp, Some(p6)), "p6 executing forces p");
        assert!(!s.implied_true(pp, None));
    }

    #[test]
    fn redefinition_kills_stale_facts() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pt = b.fresh_pred();
        let pf = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(pt, PredType::U), (pf, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        // Unrelated single redefinition of pt severs it from pf.
        b.pred_def(
            CmpOp::Gt,
            &[(pt, PredType::U)],
            x.into(),
            Operand::Imm(5),
            None,
        );
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(!s.disjoint(pt, pf));
        assert!(!s.complement(pt, pf));
    }

    #[test]
    fn or_growth_narrows_but_keeps_guard_bound_facts() {
        // pred_clear; dual U/U̅ on (pp, pbar); then an OR deposit into po
        // under pp. po starts known-false (all-false file), so po ⊆ pp
        // after growing only by a part inside pp... the all-false subset
        // fact po ⊆ pp survives the OR exactly because the new part is
        // inside pp, and po stays disjoint from pbar.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pp = b.fresh_pred();
        let pbar = b.fresh_pred();
        let po = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Ne,
            &[(pp, PredType::U), (pbar, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Lt,
            &[(po, PredType::Or)],
            x.into(),
            Operand::Imm(3),
            Some(pp),
        );
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(s.subset(po, pp), "grown only inside pp from known-false");
        assert!(s.disjoint(po, pbar));
        // A second deposit under pbar leaves only facts common to both.
        let mut b2 = FuncBuilder::new("g");
        let y = b2.param();
        let _q0 = b2.fresh_pred();
        let q1 = b2.fresh_pred();
        let q2 = b2.fresh_pred();
        b2.pred_def(
            CmpOp::Gt,
            &[(q2, PredType::Or)],
            y.into(),
            Operand::Imm(7),
            Some(q1),
        );
        b2.ret(None);
        let g = b2.finish();
        let dep = &g.block(g.entry()).insts[0];
        assert_eq!((q1, q2), (pbar, po), "same indices as in f");
        let mut s2 = s.clone();
        RelAnalysis.transfer(dep, &mut s2);
        assert!(!s2.subset(po, pp), "now straddles both halves");
        assert!(!s2.disjoint(po, pbar));
    }

    #[test]
    fn pred_clear_and_set_extremes() {
        let mut b = FuncBuilder::new("f");
        let _ = b.param();
        let a = b.fresh_pred();
        let c = b.fresh_pred();
        b.pred_clear();
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(s.disjoint(a, c), "all-false file: vacuously disjoint");
        assert!(s.subset(a, c), "vacuous subset");
        assert!(!s.known_true(a));
        assert!(!s.complement(a, c), "neither is ever true");

        let mut b = FuncBuilder::new("g");
        let _ = b.param();
        let a = b.fresh_pred();
        let c = b.fresh_pred();
        b.emit_with(Op::PredSet, |_| {});
        b.ret(None);
        let g = b.finish();
        let s = end_of_entry(&g);
        assert!(!s.disjoint(a, c));
        assert!(s.subset(a, c) && s.subset(c, a));
        assert!(s.known_true(a));
        assert!(s.implied_true(a, None));
    }

    #[test]
    fn meet_keeps_only_common_facts() {
        // Diamond: both arms derive a dual define, but onto different
        // pred pairs; at the join nothing survives. Arms deriving the
        // *same* facts keep them.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let a = b.fresh_pred();
        let c = b.fresh_pred();
        let d = b.fresh_pred();
        let t = b.block();
        let join = b.block();
        b.pred_def(
            CmpOp::Ne,
            &[(a, PredType::U), (c, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.br(CmpOp::Ne, x.into(), Operand::Imm(1), t);
        // fall arm: redefine a, breaking the pair.
        b.pred_def(
            CmpOp::Gt,
            &[(a, PredType::U), (d, PredType::UBar)],
            x.into(),
            Operand::Imm(4),
            None,
        );
        b.jump(join);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let db = RelationDb::build(&f, &cfg);
        let s = db.entry(join).unwrap();
        assert!(!s.disjoint(a, c), "pair broken on the fall arm");
        assert!(!s.disjoint(a, d), "pair only formed on the fall arm");
        assert!(!s.disjoint(c, d), "never related on any arm");
    }

    #[test]
    fn self_guarding_define_derives_no_guard_facts() {
        // A define overwriting its own guard must not claim q ⊆ g about
        // the *new* g value.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let g = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(g, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Lt,
            &[(g, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(3),
            Some(g),
        );
        b.ret(None);
        let f = b.finish();
        let s = end_of_entry(&f);
        assert!(!s.subset(q, g), "old guard value is gone");
        assert!(s.disjoint(g, q), "the dual halves are still disjoint");
        assert!(!s.complement(g, q), "they span the old guard, not ⊤");
    }

    #[test]
    fn checker_accepts_fresh_builds_and_catches_corruption() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pt = b.fresh_pred();
        let pf = b.fresh_pred();
        let t = b.block();
        b.pred_def(
            CmpOp::Ne,
            &[(pt, PredType::U), (pf, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.jump(t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let mut db = RelationDb::build(&f, &cfg);
        let mut msgs = Vec::new();
        assert!(check_relations(&f, &db, |_, m| msgs.push(m)));
        assert!(msgs.is_empty());
        // Corrupt: claim pt ⟂ pt at the successor block (reflexive) and
        // drop one direction of a symmetric pair.
        let s = db.entry[t.index()].as_mut().unwrap();
        s.disjoint[pt.index()].insert(pt.index());
        s.disjoint[pf.index()].remove(pt.index());
        assert!(!check_relations(&f, &db, |_, m| msgs.push(m)));
        assert!(msgs.iter().any(|m| m.contains("disjoint from itself")));
        assert!(msgs.iter().any(|m| m.contains("asymmetric")));
    }

    #[test]
    fn checker_catches_unclosed_graph() {
        // Weaken a successor's entry below what the edge carries — the
        // closure check must flag the edge... wait, weaker (fewer facts)
        // is *allowed*. Strengthen it instead: record a fact the edge
        // cannot justify.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let pt = b.fresh_pred();
        let pf = b.fresh_pred();
        let t = b.block();
        b.pred_def(
            CmpOp::Ne,
            &[(pt, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.jump(t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let mut db = RelationDb::build(&f, &cfg);
        let s = db.entry[t.index()].as_mut().unwrap();
        s.disjoint[pt.index()].insert(pf.index());
        s.disjoint[pf.index()].insert(pt.index());
        let mut msgs = Vec::new();
        assert!(!check_relations(&f, &db, |_, m| msgs.push(m)));
        assert!(msgs.iter().any(|m| m.contains("not closed")));
    }
}
