//! A small forward-dataflow framework over superblock-shaped CFGs.
//!
//! Blocks in this IR are single-entry, multiple-exit linear regions: a
//! conditional exit branch may appear *anywhere* inside a block, so a
//! block-granular engine (in/out sets at block boundaries only) would lose
//! the state that actually flows along each mid-block exit edge. The engine
//! here walks every block instruction by instruction and propagates the
//! state *at each branch* to that branch's target, exactly mirroring how
//! [`crate::liveness`] injects branch-target live-ins on the backward walk.
//!
//! Analyses plug in through [`ForwardAnalysis`]: a state lattice (clone +
//! equality), a `meet` at control-flow joins, and a per-instruction
//! transfer function. [`forward`] iterates to a fixpoint in reverse
//! postorder and returns the entry state of every reachable block;
//! [`walk_block`] then replays a block from its fixpoint entry state so
//! checkers can inspect the state immediately before each instruction.

use crate::cfg::Cfg;
use crate::inst::{Inst, Op};
use crate::module::Function;
use crate::types::{BlockId, PredReg, Reg};

/// A dense bit set over `u32`-indexed ids (registers, predicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for ids `0..len`.
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over ids `0..len`.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::empty(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let bits = (len - i * 64).min(64);
            *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        s
    }

    /// Number of addressable ids.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`; true if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let had = self.words[w] & b != 0;
        self.words[w] |= b;
        !had
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True if `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Intersects with `other`; true if `self` shrank.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Unions with `other`; true if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Sets every id.
    pub fn set_all(&mut self) {
        let full = BitSet::full(self.len);
        self.words = full.words;
    }

    /// Clears every id.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// True if the two sets share any id.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates the ids present, in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// A forward dataflow analysis: state lattice + transfer function.
pub trait ForwardAnalysis {
    /// The per-program-point state.
    type State: Clone + PartialEq;

    /// State on entry to the function.
    ///
    /// Blocks no flow has reached yet carry no state at all (`None` in
    /// [`ForwardResult`]) — the first edge in simply copies its state —
    /// so analyses need not construct an explicit lattice top.
    fn boundary(&self, f: &Function) -> Self::State;

    /// Meets `other` into `into` at a join; true if `into` changed.
    fn meet(&self, into: &mut Self::State, other: &Self::State) -> bool;

    /// Applies one instruction's effect.
    fn transfer(&self, inst: &Inst, state: &mut Self::State);

    /// Refines the state flowing along a *taken* branch edge, where the
    /// branch's guard predicate is known to be true (default: nothing).
    fn assume_taken(&self, _inst: &Inst, _state: &mut Self::State) {}
}

/// Per-block fixpoint results of a forward analysis.
pub struct ForwardResult<S> {
    /// Entry state per block (indexed by block id); `None` for blocks the
    /// flow never reached (unreachable or not laid out).
    pub entry: Vec<Option<S>>,
}

/// Runs `a` to a fixpoint over `f`, honoring mid-block exit branches.
pub fn forward<A: ForwardAnalysis>(f: &Function, cfg: &Cfg, a: &A) -> ForwardResult<A::State> {
    let n = f.blocks.len();
    let mut entry: Vec<Option<A::State>> = vec![None; n];
    entry[f.entry().index()] = Some(a.boundary(f));
    loop {
        let mut changed = false;
        for &b in &cfg.rpo {
            let Some(mut state) = entry[b.index()].clone() else {
                continue;
            };
            let mut fell_through = true;
            for inst in &f.block(b).insts {
                if inst.op.is_branch() {
                    if let Some(t) = inst.target {
                        let mut taken = state.clone();
                        a.assume_taken(inst, &mut taken);
                        changed |= join(&mut entry, t, &taken, a);
                    }
                }
                a.transfer(inst, &mut state);
                if inst.ends_block() {
                    fell_through = false;
                    break;
                }
            }
            if fell_through {
                if let Some(next) = f.layout_next(b) {
                    changed |= join(&mut entry, next, &state, a);
                }
            }
        }
        if !changed {
            return ForwardResult { entry };
        }
    }
}

fn join<A: ForwardAnalysis>(
    entry: &mut [Option<A::State>],
    to: BlockId,
    state: &A::State,
    a: &A,
) -> bool {
    match &mut entry[to.index()] {
        Some(existing) => a.meet(existing, state),
        slot @ None => {
            *slot = Some(state.clone());
            true
        }
    }
}

/// Replays block `b` from state `s`, calling `visit(index, inst, state)`
/// with the state in force immediately *before* each instruction.
pub fn walk_block<A: ForwardAnalysis>(
    f: &Function,
    b: BlockId,
    s: &A::State,
    a: &A,
    mut visit: impl FnMut(usize, &Inst, &A::State),
) {
    let mut state = s.clone();
    for (i, inst) in f.block(b).insts.iter().enumerate() {
        visit(i, inst, &state);
        a.transfer(inst, &mut state);
        if inst.ends_block() {
            break;
        }
    }
}

/// The predicate-aware must-be-defined state over both register files.
///
/// Beyond plain "written on every path" bits, the state carries the
/// Psi-SSA-style facts needed to accept if-converted code: a guarded write
/// leaves its register *defined under* that guard predicate, and a read
/// guarded by the same predicate (or one known to imply it) is then safe —
/// when the guard is true, the write executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefState {
    /// General registers guaranteed written on every path to this point.
    pub regs: BitSet,
    /// Per general register: predicates under which it is guaranteed
    /// written (when any of them is true, the register holds a value).
    reg_under: Vec<BitSet>,
    /// Predicate registers guaranteed written on every path.
    pub preds: BitSet,
    /// Per predicate `q`: predicates `p` with `q == true → p == true`,
    /// from U/U̅-type defines (`q` is `Pin ∧ ±cmp`, so `q` implies `Pin`),
    /// closed transitively and invalidated when either side is rewritten.
    implies: Vec<BitSet>,
    /// Partition facts `[a, b, t]`, sorted: `a ∨ b ⊇ t`, where `t` is a
    /// predicate index or [`TOP`] (the fact covers every path). Derived
    /// from dual defines that carve one comparison into complementary
    /// predicates (the if-converter's then/else partition): the pair
    /// jointly spans the define's guard.
    partitions: Vec<[u32; 3]>,
}

/// The `t` of a partition fact that spans every path (`a ∨ b = ⊤`).
const TOP: u32 = u32::MAX;

impl DefState {
    /// True if general register `r` is definitely defined on every path.
    pub fn reg(&self, r: Reg) -> bool {
        self.regs.contains(r.index())
    }

    /// True if a read of `r` guarded by `guard` definitely observes a
    /// defined value: `r` is fully defined, or it is defined under the
    /// guard itself or under some predicate the guard implies.
    pub fn reg_ok(&self, r: Reg, guard: Option<PredReg>) -> bool {
        if self.regs.contains(r.index()) {
            return true;
        }
        let under = &self.reg_under[r.index()];
        // Saturate the write predicates through the partition facts: if a
        // covered pair spans t, then t's truth also guarantees a write.
        // Spanning ⊤ means some write happened on every path. Nested
        // if-then-else chains need the chaining (p6 ∨ p7 ⊇ p5, then
        // p4 ∨ p5 ⊇ ⊤), hence the fixpoint loop; fact lists are tiny.
        let mut cov = under.clone();
        loop {
            let mut changed = false;
            for &[a, b, t] in &self.partitions {
                if cov.contains(a as usize) && cov.contains(b as usize) {
                    if t == TOP {
                        return true;
                    }
                    changed |= cov.insert(t as usize);
                }
            }
            if !changed {
                break;
            }
        }
        let Some(g) = guard else { return false };
        // The guard being true at the read must force one of the writes:
        // directly, through saturation, or through a U-type implication.
        cov.contains(g.index()) || under.intersects(&self.implies[g.index()])
    }

    /// True if predicate register `p` is definitely defined.
    pub fn pred(&self, p: PredReg) -> bool {
        self.preds.contains(p.index())
    }
}

/// Predicate-aware must-be-defined analysis.
///
/// Full definitions: unguarded writes, `select`, and predicate defines of
/// unconditional type (which write even under a false guard — `Pin=0`
/// writes 0), plus `pred_clear`/`pred_set` for the whole predicate file.
/// Guarded writes record definedness *under their guard*. `cmov`/
/// `cmov_com` also count as full definitions: their condition is a
/// general register, so the predicate lattice cannot see when the move
/// commits, and the cmov chains partial conversion emits merge values
/// whose path coverage was already checked in full-predicate form.
///
/// Rewriting a predicate `q` invalidates facts mentioning it, by family
/// (paper Table 1): U-types give `q` a fresh value, killing both
/// `defined-under-q` facts and `x → q` implications; OR-types only grow
/// `q`, preserving `x → q` but killing `defined-under-q`; AND-types only
/// shrink `q`, preserving `defined-under-q` but killing `x → q`.
pub struct MustDefined;

impl ForwardAnalysis for MustDefined {
    type State = DefState;

    fn boundary(&self, f: &Function) -> DefState {
        let mut regs = BitSet::empty(f.reg_count as usize);
        for &p in &f.params {
            regs.insert(p.index());
        }
        let np = f.pred_count as usize;
        DefState {
            regs,
            reg_under: vec![BitSet::empty(np); f.reg_count as usize],
            preds: BitSet::empty(np),
            implies: vec![BitSet::empty(np); np],
            partitions: Vec::new(),
        }
    }

    fn meet(&self, into: &mut DefState, other: &DefState) -> bool {
        let mut changed = into.regs.intersect_with(&other.regs);
        changed |= into.preds.intersect_with(&other.preds);
        for (a, b) in into.reg_under.iter_mut().zip(&other.reg_under) {
            changed |= a.intersect_with(b);
        }
        for (a, b) in into.implies.iter_mut().zip(&other.implies) {
            changed |= a.intersect_with(b);
        }
        let before = into.partitions.len();
        into.partitions
            .retain(|p| other.partitions.binary_search(p).is_ok());
        changed | (into.partitions.len() != before)
    }

    fn transfer(&self, inst: &Inst, state: &mut DefState) {
        // General-register destination.
        if let Some(d) = inst.dst {
            if matches!(inst.op, Op::Cmov | Op::CmovCom) {
                // The condition is a general register, so whether the move
                // commits is invisible to predicate-based tracking. Cmov is
                // the commit point of partial conversion (paper Fig. 3):
                // the converter lowers each predicate-partitioned merge —
                // whose coverage the full-predicate checkpoint has already
                // verified — into a cmov chain over complementary boolean
                // values. Count it as a definition rather than re-deriving
                // that coverage from general-register boolean algebra.
                state.regs.insert(d.index());
            } else if let Some(g) = inst.guard {
                state.reg_under[d.index()].insert(g.index());
            } else {
                state.regs.insert(d.index());
            }
        }
        // Predicate destinations.
        if inst.defines_all_preds() {
            // The whole file takes constant values: everything is defined,
            // but every conditional fact about old values is gone.
            state.preds.set_all();
            state.reg_under.iter_mut().for_each(BitSet::clear);
            state.implies.iter_mut().for_each(BitSet::clear);
            state.partitions.clear();
            return;
        }
        for pd in &inst.pdsts {
            let q = pd.reg.index();
            if !pd.ty.is_partial() {
                state.preds.insert(q);
            }
            if !pd.ty.is_and_family() {
                // q may become true on paths where it was false: registers
                // defined under the old q are no longer covered by it.
                for under in &mut state.reg_under {
                    under.remove(q);
                }
            }
            if !pd.ty.is_or_family() {
                // q may become false where it was true: `x → q` dies.
                for imp in &mut state.implies {
                    imp.remove(q);
                }
            }
            // Partition facts and the write to q: on the operand side
            // (`q ∨ b ⊇ t`) the fact survives only growth (OR-family); on
            // the target side (`a ∨ b ⊇ q`) only shrinkage (AND-family),
            // since the pair spans old-q, which contains any narrowed q.
            let qw = q as u32;
            state.partitions.retain(|&[a, b, t]| {
                ((a != qw && b != qw) || pd.ty.is_or_family()) && (t != qw || pd.ty.is_and_family())
            });
            // What the new q implies. AND-family writes shrink q, so its
            // implications survive untouched; U/OR writes derive them from
            // the guard: q = Pin ∧ ±cmp (U) or old ∨ (Pin ∧ ±cmp) (OR), so
            // the freshly-set part implies Pin and everything Pin implies.
            if !pd.ty.is_and_family() {
                let incoming = match inst.guard {
                    Some(p) => {
                        let mut s = state.implies[p.index()].clone();
                        s.insert(p.index());
                        s
                    }
                    None => BitSet::empty(state.implies.len()),
                };
                if pd.ty.is_or_family() {
                    // q is old-q or freshly set: keep only implications
                    // valid for both parts.
                    state.implies[q].intersect_with(&incoming);
                } else {
                    state.implies[q] = incoming;
                }
            }
        }
        // A dual define with opposite senses carves one comparison into
        // complementary predicates: `a` receives (at least) the
        // `Pin ∧ cmp` half and `c` the `Pin ∧ ¬cmp` half, so together
        // they span `Pin` — a partition fact `a ∨ c ⊇ guard` (or ⊤ when
        // unguarded). This holds for U/U̅ then/else pairs and for
        // OR-accumulator pairs alike (OR keeps old contents and only
        // grows). AND-types can clear bits of the comparison's half and
        // span nothing.
        if let [a, c] = inst.pdsts[..] {
            if a.ty.is_complemented() != c.ty.is_complemented()
                && !a.ty.is_and_family()
                && !c.ty.is_and_family()
            {
                let t = inst.guard.map_or(TOP, |g| g.index() as u32);
                let fact = [a.reg.index() as u32, c.reg.index() as u32, t];
                if let Err(i) = state.partitions.binary_search(&fact) {
                    state.partitions.insert(i, fact);
                }
            }
        }
    }

    fn assume_taken(&self, inst: &Inst, state: &mut DefState) {
        // Taking a guarded branch proves its guard true on that edge:
        // every register defined under the guard (or under a predicate
        // the guard implies) was definitely written.
        let Some(g) = inst.guard else { return };
        let DefState {
            regs,
            reg_under,
            implies,
            ..
        } = state;
        for (r, under) in reg_under.iter().enumerate() {
            if under.contains(g.index()) || under.intersects(&implies[g.index()]) {
                regs.insert(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CmpOp, Operand};
    use crate::FuncBuilder;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(70);
        assert!(!s.contains(65));
        assert!(s.insert(65));
        assert!(!s.insert(65));
        assert!(s.contains(65));
        s.remove(65);
        assert!(!s.contains(65));
        let full = BitSet::full(70);
        assert!(full.contains(0) && full.contains(69));
        assert!(!full.contains(70));
        let mut a = BitSet::empty(70);
        a.insert(3);
        a.insert(65);
        let mut b = BitSet::empty(70);
        b.insert(3);
        assert!(a.intersect_with(&b));
        assert!(a.contains(3) && !a.contains(65));
        assert!(a.union_with(&full));
        assert!(a.contains(69));
    }

    #[test]
    fn must_defined_diamond_intersects() {
        // r defined on only one arm of a diamond: not must-defined at the
        // join.
        let mut b = FuncBuilder::new("f");
        let c = b.param();
        let t = b.block();
        let join = b.block();
        b.br(CmpOp::Ne, c.into(), Operand::Imm(0), t);
        let r = b.mov(Operand::Imm(1)); // fall arm defines r
        b.jump(join);
        b.switch_to(t);
        b.jump(join); // taken arm does not
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let res = forward(&f, &cfg, &MustDefined);
        let at_join = res.entry[join.index()].as_ref().unwrap();
        assert!(!at_join.reg(r));
        assert!(at_join.reg(c), "params are defined everywhere");
    }

    #[test]
    fn must_defined_sees_mid_block_branch_state() {
        // The value defined *after* a mid-block exit branch must not leak
        // into the branch target's entry state.
        let mut b = FuncBuilder::new("f");
        let c = b.param();
        let out = b.block();
        let early = b.mov(Operand::Imm(1));
        b.br(CmpOp::Ne, c.into(), Operand::Imm(0), out);
        let late = b.mov(Operand::Imm(2));
        b.jump(out);
        b.switch_to(out);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let res = forward(&f, &cfg, &MustDefined);
        let at_out = res.entry[out.index()].as_ref().unwrap();
        assert!(at_out.reg(early));
        assert!(!at_out.reg(late), "late def only reaches on the fall path");
    }
}
