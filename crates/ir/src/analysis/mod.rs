//! Semantic static analysis over predicated IR.
//!
//! [`crate::verify`] checks *structure* (operand counts, dangling targets);
//! this module checks *meaning*. Five checker families, run together by
//! [`check_function`] / [`check_module`]:
//!
//! 1. **Def-before-use** — every general-register source and every guard
//!    predicate is defined on *all* paths from the entry, via the
//!    predicate-aware [`dataflow::MustDefined`] forward analysis (a
//!    guarded definition satisfies reads under the same or an implying
//!    guard, as in Psi-SSA). Because the meet is an intersection over
//!    predecessors, a predicate whose define neither dominates a use nor
//!    merges into it on every path is reported here.
//! 2. **Predicate well-formedness** — OR/AND-type predicate destinations
//!    (which accumulate into their register, paper Table 1) only ever
//!    write a predicate previously initialized by `pred_clear`/`pred_set`
//!    or an unconditional-type define, and dual-destination defines pair
//!    two distinct registers with complementary senses, as if-conversion
//!    constructs them.
//! 3. **Speculation safety** — the `speculative` (silent) marker appears
//!    only on opcodes that may legally speculate, and — differentially,
//!    via [`Snapshot`] — no pass moves a potentially-excepting op
//!    (div/rem/fdiv/load) above a branch it used to follow without
//!    marking it silent.
//! 4. **Model conformance** — under [`ModelClass::NoPred`] (the paper's
//!    superblock baseline) no predicate registers, defines, or
//!    conditional moves exist at all; under [`ModelClass::PartialPred`]
//!    (after `convert_to_partial`) no guards or predicate defines remain,
//!    only the cmov family.
//! 5. **Relation soundness** — the predicate relation database built by
//!    [`relations::RelationDb`] (the PQS partition graph: disjointness,
//!    subset, complement facts from Table 1 define shapes) satisfies its
//!    structural invariants and is closed under the transfer relation, so
//!    a corrupted or stale partition graph held by a checkpoint is caught.
//!
//! Violations carry function/block/instruction coordinates in the same
//! shape as [`crate::VerifyError`], so pipeline checkpoints can blame the
//! pass that introduced them.

pub mod dataflow;
pub mod relations;

pub use dataflow::{
    forward, walk_block, BitSet, DefState, ForwardAnalysis, ForwardResult, MustDefined,
};
pub use relations::{check_relations, RelAnalysis, RelState, RelationDb};

use crate::cfg::Cfg;
use crate::module::{Function, Module};
use crate::types::{BlockId, InstId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which checker family produced a [`Violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A structural problem reported by [`crate::verify`] (checkpoint
    /// runners fold those into the same diagnostic stream).
    Structure,
    /// A register or predicate may be read before it is defined.
    UseBeforeDef,
    /// A predicate define violates the Table 1 accumulation discipline.
    PredWellFormed,
    /// An illegal or unmarked speculation.
    Speculation,
    /// Code that does not conform to the compilation model in force.
    ModelConformance,
    /// The predicate relation database (partition graph) violates its
    /// structural invariants — see [`relations::check_relations`].
    Relations,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckKind::Structure => "structure",
            CheckKind::UseBeforeDef => "use-before-def",
            CheckKind::PredWellFormed => "pred-wellformed",
            CheckKind::Speculation => "speculation",
            CheckKind::ModelConformance => "model-conformance",
            CheckKind::Relations => "relation-soundness",
        })
    }
}

/// A semantic problem found by the checkers, with coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The checker family that fired.
    pub kind: CheckKind,
    /// Function the problem is in.
    pub func: String,
    /// Block the problem is in, when attributable to one.
    pub block: Option<BlockId>,
    /// Description, including the offending instruction.
    pub message: String,
}

impl From<crate::VerifyError> for Violation {
    fn from(e: crate::VerifyError) -> Violation {
        Violation {
            kind: CheckKind::Structure,
            func: e.func.unwrap_or_default(),
            block: e.block,
            message: e.message,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] in {}: ", self.kind, self.func)?;
        if let Some(b) = self.block {
            write!(f, "{b}: ")?;
        }
        f.write_str(&self.message)
    }
}

/// The predication discipline a function must conform to at a given point
/// in the pipeline. Unlike the driver's model enum this lives in `ir` so
/// every layer (passes, tests, the CLI) can name it without a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelClass {
    /// Superblock baseline: no predicate state and no conditional moves.
    NoPred,
    /// Partial predication after conversion: cmov family only — no
    /// guards, predicate defines, or predicate-file ops remain.
    PartialPred,
    /// Full predication: guards and typed predicate defines are legal.
    FullPred,
}

/// Per-module positional snapshot used by the differential speculation
/// check: for every *non-speculative* potentially-excepting instruction,
/// the set of branches that textually precede it inside its block. A later
/// pass that reorders the two without setting the silent marker is caught
/// by comparing a fresh snapshot against this one.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Function name → trap-op id → ids of branches before it in its block.
    funcs: HashMap<String, HashMap<InstId, HashSet<InstId>>>,
}

impl Snapshot {
    /// Records the current branch/trap-op ordering of every function.
    pub fn of(m: &Module) -> Snapshot {
        let mut funcs = HashMap::new();
        for f in &m.funcs {
            let mut ops: HashMap<InstId, HashSet<InstId>> = HashMap::new();
            for &b in &f.layout {
                let mut branches_above: HashSet<InstId> = HashSet::new();
                for inst in &f.block(b).insts {
                    if inst.op.may_trap() && !inst.speculative {
                        ops.insert(inst.id, branches_above.clone());
                    }
                    if inst.op.is_branch() {
                        branches_above.insert(inst.id);
                    }
                }
            }
            funcs.insert(f.name.clone(), ops);
        }
        Snapshot { funcs }
    }
}

/// Runs every checker on one function.
pub fn check_function(f: &Function, class: ModelClass) -> Vec<Violation> {
    let cfg = Cfg::new(f);
    let flow = forward(f, &cfg, &MustDefined);
    let mut out = Vec::new();
    check_def_before_use(f, &flow, &mut out);
    check_pred_wellformed(f, &flow, &mut out);
    check_speculation_flags(f, &mut out);
    check_model(f, class, &mut out);
    let rel = RelationDb::build(f, &cfg);
    check_relation_soundness(f, &rel, &mut out);
    out
}

/// Family 5: the predicate relation database built from `f` satisfies its
/// structural invariants (disjointness symmetric and irreflexive, partition
/// facts in range, graph closed under the transfer relation). Exposed
/// separately so pipeline checkpoints can validate a *held* database — a
/// corrupted or stale partition graph is blamed like any other violation.
pub fn check_relation_soundness(f: &Function, db: &RelationDb, out: &mut Vec<Violation>) {
    check_relations(f, db, |b, msg| {
        out.push(violation(CheckKind::Relations, f, b, msg))
    });
}

/// Runs every checker on every function, plus the differential speculation
/// check against `prev` (a [`Snapshot`] taken before the pass under test).
pub fn check_module(m: &Module, class: ModelClass, prev: Option<&Snapshot>) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &m.funcs {
        out.extend(check_function(f, class));
    }
    if let Some(prev) = prev {
        check_speculation_moves(m, prev, &mut out);
    }
    out
}

/// Family 1: every read sees a definition on all paths.
///
/// Reads are general-register sources and guard predicates. A register
/// read is also accepted when it is defined *under* the reading
/// instruction's own guard (or one it implies) — the Psi-SSA discipline
/// if-conversion produces. Blocks the flow never reaches are skipped —
/// they cannot execute.
pub fn check_def_before_use(
    f: &Function,
    flow: &ForwardResult<DefState>,
    out: &mut Vec<Violation>,
) {
    for &b in &f.layout {
        let Some(entry) = &flow.entry[b.index()] else {
            continue;
        };
        walk_block(f, b, entry, &MustDefined, |_, inst, state| {
            for r in inst.src_regs() {
                if !state.reg_ok(r, inst.guard) {
                    out.push(violation(
                        CheckKind::UseBeforeDef,
                        f,
                        b,
                        format!("{inst}: {r} may be read before it is defined"),
                    ));
                }
            }
            if let Some(g) = inst.guard {
                if !state.pred(g) {
                    out.push(violation(
                        CheckKind::UseBeforeDef,
                        f,
                        b,
                        format!("{inst}: guard {g} may be read before it is defined"),
                    ));
                }
            }
        });
    }
}

/// Family 2: Table 1 accumulation discipline for predicate defines.
pub fn check_pred_wellformed(
    f: &Function,
    flow: &ForwardResult<DefState>,
    out: &mut Vec<Violation>,
) {
    for &b in &f.layout {
        let Some(entry) = &flow.entry[b.index()] else {
            continue;
        };
        walk_block(f, b, entry, &MustDefined, |_, inst, state| {
            for pd in &inst.pdsts {
                if pd.ty.is_partial() && !state.pred(pd.reg) {
                    out.push(violation(
                        CheckKind::PredWellFormed,
                        f,
                        b,
                        format!(
                            "{inst}: {}-type destination accumulates into {} \
                             before it is initialized",
                            pd.ty, pd.reg
                        ),
                    ));
                }
            }
            if let [a, c] = inst.pdsts[..] {
                if a.reg == c.reg {
                    out.push(violation(
                        CheckKind::PredWellFormed,
                        f,
                        b,
                        format!("{inst}: dual define writes {} twice", a.reg),
                    ));
                }
                if a.ty.is_complemented() == c.ty.is_complemented() {
                    out.push(violation(
                        CheckKind::PredWellFormed,
                        f,
                        b,
                        format!(
                            "{inst}: dual define must pair complementary senses, \
                             found <{}> and <{}>",
                            a.ty, c.ty
                        ),
                    ));
                }
            }
        });
    }
}

/// Family 3a: the silent marker appears only where it is meaningful.
pub fn check_speculation_flags(f: &Function, out: &mut Vec<Violation>) {
    for (b, _, inst) in f.insts() {
        if inst.speculative && !inst.op.can_speculate() {
            out.push(violation(
                CheckKind::Speculation,
                f,
                b,
                format!("{inst}: opcode may not be speculated yet carries the silent marker"),
            ));
        }
    }
}

/// Family 3b: differential hoist check. An instruction that may trap and
/// was below a branch in `prev` but sits above that same branch now was
/// hoisted past it — legal only in silent form.
pub fn check_speculation_moves(m: &Module, prev: &Snapshot, out: &mut Vec<Violation>) {
    for f in &m.funcs {
        let Some(ops) = prev.funcs.get(&f.name) else {
            continue;
        };
        for &b in &f.layout {
            let insts = &f.block(b).insts;
            for (i, inst) in insts.iter().enumerate() {
                if !inst.op.may_trap() || inst.speculative {
                    continue;
                }
                let Some(was_above) = ops.get(&inst.id) else {
                    continue;
                };
                for later in &insts[i + 1..] {
                    if later.op.is_branch() && was_above.contains(&later.id) {
                        out.push(violation(
                            CheckKind::Speculation,
                            f,
                            b,
                            format!(
                                "{inst}: potentially-excepting op hoisted above \
                                 `{later}` without the silent marker"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Family 4: the function uses only the machinery its model provides.
pub fn check_model(f: &Function, class: ModelClass, out: &mut Vec<Violation>) {
    if class == ModelClass::FullPred {
        return;
    }
    for (b, _, inst) in f.insts() {
        let mut bad = |what: &str| {
            out.push(violation(
                CheckKind::ModelConformance,
                f,
                b,
                format!("{inst}: {what} is illegal under {class:?}"),
            ));
        };
        if inst.guard.is_some() {
            bad("a guard predicate");
        }
        if !inst.pdsts.is_empty() || inst.defines_all_preds() {
            bad("predicate definition");
        }
        if class == ModelClass::NoPred
            && matches!(
                inst.op,
                crate::Op::Cmov | crate::Op::CmovCom | crate::Op::Select
            )
        {
            bad("a conditional move");
        }
    }
}

fn violation(kind: CheckKind, f: &Function, b: BlockId, message: String) -> Violation {
    Violation {
        kind,
        func: f.name.clone(),
        block: Some(b),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredType;
    use crate::types::{CmpOp, Operand, Reg};
    use crate::{FuncBuilder, Op};

    fn kinds(vs: &[Violation]) -> Vec<CheckKind> {
        vs.iter().map(|v| v.kind).collect()
    }

    #[test]
    fn clean_function_has_no_violations() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        assert!(check_function(&b.finish(), ModelClass::NoPred).is_empty());
    }

    #[test]
    fn catches_use_before_def_on_one_path() {
        // Diamond where `r` is defined on only the fall-through arm.
        let mut b = FuncBuilder::new("f");
        let c = b.param();
        let skip = b.block();
        let join = b.block();
        let r = b.fresh();
        b.br(CmpOp::Ne, c.into(), Operand::Imm(0), skip);
        b.mov_to(r, Operand::Imm(1));
        b.jump(join);
        b.switch_to(skip);
        b.jump(join);
        b.switch_to(join);
        let s = b.add(r.into(), Operand::Imm(1));
        b.ret(Some(s.into()));
        let vs = check_function(&b.finish(), ModelClass::NoPred);
        assert_eq!(kinds(&vs), vec![CheckKind::UseBeforeDef], "{vs:?}");
        assert!(vs[0].message.contains("may be read before"), "{}", vs[0]);
    }

    /// The if-converter's nested then/else shape: p4/p5 split every path,
    /// p6/p7 split p5, so writes under {p4, p6, p7} cover all paths and
    /// an unguarded read is fine. Dropping any leg reopens the hole.
    fn nested_partition(drop_last_leg: bool) -> Vec<Violation> {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let (p4, p5) = (b.fresh_pred(), b.fresh_pred());
        let (p6, p7) = (b.fresh_pred(), b.fresh_pred());
        b.pred_def(
            CmpOp::Eq,
            &[(p4, PredType::U), (p5, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let r = b.mov(Operand::Imm(2));
        b.guard_last(p4);
        b.pred_def(
            CmpOp::Eq,
            &[(p6, PredType::U), (p7, PredType::UBar)],
            x.into(),
            Operand::Imm(1),
            Some(p5),
        );
        b.mov_to(r, Operand::Imm(1));
        b.guard_last(p6);
        if !drop_last_leg {
            b.mov_to(r, Operand::Imm(0));
            b.guard_last(p7);
        }
        b.ret(Some(r.into()));
        check_function(&b.finish(), ModelClass::FullPred)
    }

    #[test]
    fn nested_then_else_partition_covers_unguarded_read() {
        assert!(nested_partition(false).is_empty());
    }

    #[test]
    fn incomplete_partition_is_still_a_hole() {
        let vs = nested_partition(true);
        assert_eq!(kinds(&vs), vec![CheckKind::UseBeforeDef], "{vs:?}");
    }

    #[test]
    fn or_accumulated_else_chain_covers_unguarded_read() {
        // The guarded-dual OR shape: p2 accumulates ¬c1 then p0 ∧ ¬c2,
        // while p1 gets p0 ∧ c2 — so p1 ∨ p2 spans every path.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let (p0, p1, p2) = (b.fresh_pred(), b.fresh_pred(), b.fresh_pred());
        b.pred_clear();
        b.pred_def(
            CmpOp::Ge,
            &[(p0, PredType::U), (p2, PredType::OrBar)],
            x.into(),
            Operand::Imm(97),
            None,
        );
        b.pred_def(
            CmpOp::Le,
            &[(p1, PredType::U), (p2, PredType::OrBar)],
            x.into(),
            Operand::Imm(122),
            Some(p0),
        );
        let r = b.mov(Operand::Imm(1));
        b.guard_last(p1);
        b.mov_to(r, Operand::Imm(0));
        b.guard_last(p2);
        b.ret(Some(r.into()));
        assert!(check_function(&b.finish(), ModelClass::FullPred).is_empty());
    }

    /// A guarded branch proves its guard on the taken edge, so the target
    /// may read registers defined under that guard.
    fn guarded_exit(guard_the_branch: bool) -> Vec<Violation> {
        let mut b = FuncBuilder::new("f");
        let c = b.param();
        let t = b.block();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U)],
            c.into(),
            Operand::Imm(0),
            None,
        );
        let r = b.mov(Operand::Imm(1));
        b.guard_last(p);
        b.br(CmpOp::Eq, c.into(), Operand::Imm(5), t);
        if guard_the_branch {
            b.guard_last(p);
        }
        b.ret(None);
        b.switch_to(t);
        b.ret(Some(r.into()));
        check_function(&b.finish(), ModelClass::FullPred)
    }

    #[test]
    fn taken_guarded_branch_proves_its_guard() {
        assert!(guarded_exit(true).is_empty());
    }

    #[test]
    fn unguarded_branch_proves_nothing() {
        let vs = guarded_exit(false);
        assert_eq!(kinds(&vs), vec![CheckKind::UseBeforeDef], "{vs:?}");
    }

    #[test]
    fn catches_undefined_guard() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.store(crate::MemWidth::Word, x.into(), Operand::Imm(0), x.into());
        b.guard_last(p); // p never defined
        b.ret(None);
        let vs = check_function(&b.finish(), ModelClass::FullPred);
        assert_eq!(kinds(&vs), vec![CheckKind::UseBeforeDef], "{vs:?}");
        assert!(vs[0].message.contains("guard"), "{}", vs[0]);
    }

    #[test]
    fn catches_uninitialized_or_accumulation() {
        // An OR-type define into a predicate never cleared first.
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        let vs = check_function(&b.finish(), ModelClass::FullPred);
        assert_eq!(kinds(&vs), vec![CheckKind::PredWellFormed], "{vs:?}");
        assert!(vs[0].message.contains("accumulates"), "{}", vs[0]);
    }

    #[test]
    fn pred_clear_initializes_or_accumulation() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_clear();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        assert!(check_function(&b.finish(), ModelClass::FullPred).is_empty());
    }

    #[test]
    fn catches_same_sense_dual_define() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U), (q, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        let vs = check_function(&b.finish(), ModelClass::FullPred);
        assert_eq!(kinds(&vs), vec![CheckKind::PredWellFormed], "{vs:?}");
        assert!(vs[0].message.contains("complementary"), "{}", vs[0]);
    }

    #[test]
    fn catches_illegal_speculative_marker() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        b.emit_with(Op::St(crate::MemWidth::Word), |i| {
            i.srcs = vec![x.into(), Operand::Imm(0), Operand::Imm(1)];
            i.speculative = true;
        });
        b.ret(None);
        let vs = check_function(&b.finish(), ModelClass::NoPred);
        assert_eq!(kinds(&vs), vec![CheckKind::Speculation], "{vs:?}");
    }

    /// Builds `main` with a div and a branch in the given textual order.
    fn div_branch_module(div_first: bool) -> Module {
        let mut b = FuncBuilder::new("main");
        let x = b.param();
        let out = b.block();
        let emit_div = |b: &mut FuncBuilder| {
            let q = b.op2(Op::Div, x.into(), Operand::Imm(3));
            b.ret(Some(q.into()));
        };
        if div_first {
            emit_div(&mut b);
        } else {
            b.br(CmpOp::Eq, x.into(), Operand::Imm(0), out);
            emit_div(&mut b);
        }
        b.switch_to(out);
        b.ret(None);
        let mut m = Module::new();
        m.push(b.finish());
        m
    }

    #[test]
    fn catches_unsilent_hoist_of_trapping_op() {
        // Before: `br; div`. After: the same instructions with the div
        // moved above the branch, still non-speculative.
        let before = div_branch_module(false);
        let snap = Snapshot::of(&before);
        let mut after = before.clone();
        let insts = &mut after.funcs[0].blocks[0].insts;
        insts.swap(0, 1);
        let mut vs = Vec::new();
        check_speculation_moves(&after, &snap, &mut vs);
        assert_eq!(kinds(&vs), vec![CheckKind::Speculation], "{vs:?}");
        assert!(vs[0].message.contains("hoisted above"), "{}", vs[0]);

        // Marking the hoisted div silent makes the motion legal.
        after.funcs[0].blocks[0].insts[0].speculative = true;
        let mut vs = Vec::new();
        check_speculation_moves(&after, &snap, &mut vs);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unmoved_trapping_op_below_branch_is_fine() {
        let m = div_branch_module(false);
        let snap = Snapshot::of(&m);
        let mut vs = Vec::new();
        check_speculation_moves(&m, &snap, &mut vs);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn model_conformance_rejects_leftover_guard() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let d = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d, x.into(), Operand::Imm(1));
        b.guard_last(p);
        b.ret(None);
        let f = b.finish();
        assert!(check_function(&f, ModelClass::FullPred).is_empty());
        let vs = check_function(&f, ModelClass::PartialPred);
        assert!(
            vs.iter().all(|v| v.kind == CheckKind::ModelConformance) && vs.len() == 2,
            "guard + pred define each flagged: {vs:?}"
        );
    }

    #[test]
    fn model_conformance_rejects_cmov_in_superblock() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let d = b.mov(Operand::Imm(0));
        b.cmov(d, Operand::Imm(1), x.into());
        b.ret(Some(d.into()));
        let f = b.finish();
        assert!(check_function(&f, ModelClass::PartialPred).is_empty());
        let vs = check_function(&f, ModelClass::NoPred);
        assert_eq!(kinds(&vs), vec![CheckKind::ModelConformance], "{vs:?}");
        assert!(vs[0].message.contains("conditional move"), "{}", vs[0]);
    }

    #[test]
    fn violation_display_has_coordinates() {
        let v = Violation {
            kind: CheckKind::UseBeforeDef,
            func: "main".into(),
            block: Some(BlockId(3)),
            message: format!("{} may be read before it is defined", Reg(7)),
        };
        let s = v.to_string();
        assert!(s.contains("use-before-def"), "{s}");
        assert!(s.contains("main"), "{s}");
        assert!(s.contains("B3"), "{s}");
    }
}
