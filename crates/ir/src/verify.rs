//! Structural verifier for modules and functions.
//!
//! Passes in this workspace run the verifier after every transformation in
//! debug builds and in the test suite; it catches malformed operand counts,
//! dangling branch targets, out-of-range registers, and code after an
//! unconditional block ender.

use crate::inst::{Inst, Op};
use crate::module::{Function, Module};
use crate::types::{BlockId, FuncId};
use std::error::Error;
use std::fmt;

/// A structural error found by [`verify_function`] / [`Module::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error was found (if any).
    pub func: Option<String>,
    /// Block in which the error was found (if any).
    pub block: Option<BlockId>,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(func) = &self.func {
            write!(f, "in {func}: ")?;
        }
        if let Some(b) = self.block {
            write!(f, "{b}: ")?;
        }
        f.write_str(&self.message)
    }
}

impl Error for VerifyError {}

fn err(func: &Function, block: Option<BlockId>, message: String) -> VerifyError {
    VerifyError {
        func: Some(func.name.clone()),
        block,
        message,
    }
}

/// Expected number of sources for an opcode; `None` means variable.
fn expected_srcs(op: Op) -> Option<usize> {
    Some(match op {
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::AndNot
        | Op::OrNot
        | Op::Shl
        | Op::Shr
        | Op::Sra
        | Op::Cmp(_)
        | Op::FAdd
        | Op::FSub
        | Op::FMul
        | Op::FDiv
        | Op::FCmp(_)
        | Op::Ld(_)
        | Op::Br(_)
        | Op::PredDef(_)
        | Op::FPredDef(_)
        | Op::Cmov
        | Op::CmovCom => 2,
        Op::Mov | Op::IToF | Op::FToI => 1,
        Op::St(_) | Op::Select => 3,
        Op::Jump | Op::Halt | Op::PredClear | Op::PredSet | Op::Nop => 0,
        Op::Call | Op::Ret => return None,
    })
}

/// True when the opcode must write a destination register.
fn requires_dst(op: Op) -> bool {
    matches!(
        op,
        Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::AndNot
            | Op::OrNot
            | Op::Shl
            | Op::Shr
            | Op::Sra
            | Op::Cmp(_)
            | Op::Mov
            | Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FDiv
            | Op::FCmp(_)
            | Op::IToF
            | Op::FToI
            | Op::Ld(_)
            | Op::Cmov
            | Op::CmovCom
            | Op::Select
            | Op::Call
    )
}

fn verify_inst(f: &Function, b: BlockId, inst: &Inst) -> Result<(), VerifyError> {
    if let Some(n) = expected_srcs(inst.op) {
        if inst.srcs.len() != n {
            return Err(err(
                f,
                Some(b),
                format!("{inst}: expected {n} sources, found {}", inst.srcs.len()),
            ));
        }
    }
    if inst.op == Op::Ret && inst.srcs.len() > 1 {
        return Err(err(f, Some(b), format!("{inst}: ret takes 0 or 1 source")));
    }
    if requires_dst(inst.op) != inst.dst.is_some() {
        return Err(err(
            f,
            Some(b),
            format!("{inst}: destination presence mismatch"),
        ));
    }
    if inst.op.is_pred_def() {
        if inst.pdsts.is_empty() || inst.pdsts.len() > 2 {
            return Err(err(
                f,
                Some(b),
                format!("{inst}: predicate define needs 1-2 destinations"),
            ));
        }
    } else if !inst.pdsts.is_empty() {
        return Err(err(
            f,
            Some(b),
            format!("{inst}: only predicate defines may have predicate destinations"),
        ));
    }
    if inst.op.is_branch() {
        let t = inst
            .target
            .ok_or_else(|| err(f, Some(b), format!("{inst}: branch without target")))?;
        if f.layout_pos(t).is_none() {
            return Err(err(
                f,
                Some(b),
                format!("{inst}: target {t} is not in the layout"),
            ));
        }
    } else if inst.target.is_some() {
        return Err(err(f, Some(b), format!("{inst}: unexpected target")));
    }
    if inst.op == Op::Call && inst.callee.is_none() && !f.pending_callees.contains_key(&inst.id) {
        return Err(err(f, Some(b), format!("{inst}: unresolved call")));
    }
    for r in inst.src_regs().chain(inst.dst) {
        if r.0 >= f.reg_count {
            return Err(err(
                f,
                Some(b),
                format!(
                    "{inst}: register {r} out of range (reg_count={})",
                    f.reg_count
                ),
            ));
        }
    }
    for p in inst.pred_uses().chain(inst.pred_defs()) {
        if p.0 >= f.pred_count {
            return Err(err(
                f,
                Some(b),
                format!(
                    "{inst}: predicate {p} out of range (pred_count={})",
                    f.pred_count
                ),
            ));
        }
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
/// Returns the first structural problem found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.layout.is_empty() {
        return Err(err(f, None, "empty layout".into()));
    }
    let mut seen = vec![false; f.blocks.len()];
    for &b in &f.layout {
        if b.index() >= f.blocks.len() {
            return Err(err(f, Some(b), "layout references missing block".into()));
        }
        if std::mem::replace(&mut seen[b.index()], true) {
            return Err(err(f, Some(b), "block appears twice in layout".into()));
        }
    }
    for &b in &f.layout {
        let insts = &f.block(b).insts;
        for (i, inst) in insts.iter().enumerate() {
            verify_inst(f, b, inst)?;
            if inst.ends_block() && i + 1 != insts.len() {
                return Err(err(
                    f,
                    Some(b),
                    format!("{inst}: unreachable code after block ender"),
                ));
            }
        }
    }
    // The final laid-out block must not fall off the end of the function.
    let last = *f.layout.last().expect("nonempty layout");
    if !f.block(last).ends_explicitly() {
        return Err(err(
            f,
            Some(last),
            "final block falls through past the end of the function".into(),
        ));
    }
    Ok(())
}

impl Module {
    /// Verifies every function plus cross-function invariants (unique
    /// names, resolved callees).
    ///
    /// # Errors
    /// Returns the first structural problem found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for (i, f) in self.funcs.iter().enumerate() {
            if self
                .funcs
                .iter()
                .skip(i + 1)
                .any(|other| other.name == f.name)
            {
                return Err(VerifyError {
                    func: Some(f.name.clone()),
                    block: None,
                    message: "duplicate function name".into(),
                });
            }
            verify_function(f)?;
            for (b, _, inst) in f.insts() {
                if inst.op == Op::Call {
                    match inst.callee {
                        Some(FuncId(c)) if (c as usize) < self.funcs.len() => {
                            let callee = &self.funcs[c as usize];
                            if inst.srcs.len() != callee.params.len() {
                                return Err(err(
                                    f,
                                    Some(b),
                                    format!(
                                        "{inst}: {} args but {} takes {}",
                                        inst.srcs.len(),
                                        callee.name,
                                        callee.params.len()
                                    ),
                                ));
                            }
                        }
                        Some(c) => return Err(err(f, Some(b), format!("{inst}: bad callee {c}"))),
                        None => return Err(err(f, Some(b), format!("{inst}: unresolved call"))),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CmpOp, Operand, Reg};
    use crate::FuncBuilder;

    fn ok_func() -> Function {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        b.finish()
    }

    #[test]
    fn accepts_well_formed() {
        assert!(verify_function(&ok_func()).is_ok());
    }

    #[test]
    fn rejects_wrong_src_count() {
        let mut f = ok_func();
        f.blocks[0].insts[0].srcs.pop();
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("expected 2 sources"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_reg() {
        let mut f = ok_func();
        f.blocks[0].insts[0].srcs[0] = Operand::Reg(Reg(999));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_missing_dst() {
        let mut f = ok_func();
        f.blocks[0].insts[0].dst = None;
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_dangling_target() {
        let mut b = FuncBuilder::new("f");
        let t = b.block();
        b.br(CmpOp::Eq, Operand::Imm(0), Operand::Imm(0), t);
        b.ret(None);
        b.switch_to(t);
        b.ret(None);
        let mut f = b.finish();
        // Hand-construct a dangling target.
        f.blocks[0].insts[0].target = Some(BlockId(77));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_fallthrough_off_function_end() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        b.add(x.into(), Operand::Imm(1));
        let f = b.finish();
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("falls through"), "{e}");
    }

    #[test]
    fn rejects_code_after_ender() {
        let mut b = FuncBuilder::new("f");
        b.ret(None);
        b.ret(None);
        let f = b.finish();
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn module_rejects_duplicate_names() {
        let mut m = Module::new();
        let mut b1 = FuncBuilder::new("f");
        b1.ret(None);
        m.push(b1.finish());
        let mut b2 = FuncBuilder::new("f");
        b2.ret(None);
        m.push(b2.finish());
        assert!(m.verify().is_err());
    }

    #[test]
    fn module_checks_call_arity() {
        let mut m = Module::new();
        let mut caller = FuncBuilder::new("caller");
        caller.call("callee", vec![Operand::Imm(1)]);
        caller.ret(None);
        m.push(caller.finish());
        let mut callee = FuncBuilder::new("callee");
        let _a = callee.param();
        let _b = callee.param();
        callee.ret(None);
        m.push(callee.finish());
        m.link().unwrap();
        let e = m.verify().unwrap_err();
        assert!(e.message.contains("args"), "{e}");
    }
}
