//! Parser for the textual IR form produced by the printer.
//!
//! Together with [`crate::printer`] this makes the IR round-trippable:
//! functions can be written by hand in tests, dumped from one pipeline
//! stage and re-read in another, or diffed as text. The accepted grammar
//! is exactly what `Display` emits:
//!
//! ```text
//! func name(r0, r1) {
//! B0:
//!   [  0] add r2, r0, 1
//!   [  1] pred_eq p0<OR>, p1<!U>, r2, 0 (p3)
//!   [  1] ld.w r4, [r2 + 8]
//!   [  2] beq r4, 0 -> B1
//!   [  2] ret r2
//! B1:
//!   [  0] ret r4
//! }
//! ```
//!
//! The `[cycle]` column is optional on input; `(s)` before the mnemonic
//! marks the silent (speculative) form.

use crate::inst::{Inst, Op};
use crate::module::Function;
use crate::pred::{PredDst, PredType};
use crate::types::{BlockId, CmpOp, FuncId, MemWidth, Operand, PredReg, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A textual-IR parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn cmp_of(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn op_of(mnemonic: &str) -> Option<Op> {
    Some(match mnemonic {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "rem" => Op::Rem,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "and_not" => Op::AndNot,
        "or_not" => Op::OrNot,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "sra" => Op::Sra,
        "mov" => Op::Mov,
        "add_f" => Op::FAdd,
        "sub_f" => Op::FSub,
        "mul_f" => Op::FMul,
        "div_f" => Op::FDiv,
        "itof" => Op::IToF,
        "ftoi" => Op::FToI,
        "ld.b" => Op::Ld(MemWidth::Byte),
        "ld.w" => Op::Ld(MemWidth::Word),
        "st.b" => Op::St(MemWidth::Byte),
        "st.w" => Op::St(MemWidth::Word),
        "jump" => Op::Jump,
        "jsr" => Op::Call,
        "ret" => Op::Ret,
        "halt" => Op::Halt,
        "pred_clear" => Op::PredClear,
        "pred_set" => Op::PredSet,
        "cmov" => Op::Cmov,
        "cmov_com" => Op::CmovCom,
        "select" => Op::Select,
        "nop" => Op::Nop,
        _ => {
            // Families with comparison suffixes.
            if let Some(c) = cmp_of(mnemonic) {
                return Some(Op::Cmp(c));
            }
            if let Some(rest) = mnemonic.strip_prefix("pred_") {
                if let Some(base) = rest.strip_suffix("_f") {
                    return cmp_of(base).map(Op::FPredDef);
                }
                return cmp_of(rest).map(Op::PredDef);
            }
            if let Some(base) = mnemonic.strip_suffix("_f") {
                return cmp_of(base).map(Op::FCmp);
            }
            if let Some(rest) = mnemonic.strip_prefix('b') {
                return cmp_of(rest).map(Op::Br);
            }
            return None;
        }
    })
}

fn pred_type_of(s: &str) -> Option<PredType> {
    Some(match s {
        "U" => PredType::U,
        "!U" => PredType::UBar,
        "OR" => PredType::Or,
        "!OR" => PredType::OrBar,
        "AND" => PredType::And,
        "!AND" => PredType::AndBar,
        _ => return None,
    })
}

/// One operand token: `r4`, `p2`, `p2<OR>`, `-17`, `B3`, `@F1`.
#[derive(Debug, Clone, PartialEq)]
enum Tokened {
    Reg(Reg),
    Pred(PredReg),
    PredDst(PredDst),
    Imm(i64),
    Block(BlockId),
    Callee(FuncId),
}

fn parse_token(tok: &str, line: usize) -> Result<Tokened, ParseError> {
    if let Some(rest) = tok.strip_prefix('r') {
        if let Ok(n) = rest.parse::<u32>() {
            return Ok(Tokened::Reg(Reg(n)));
        }
    }
    if let Some(rest) = tok.strip_prefix('p') {
        if let Some((num, ty)) = rest.split_once('<') {
            let ty = ty
                .strip_suffix('>')
                .and_then(pred_type_of)
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("bad predicate type in {tok}"),
                })?;
            if let Ok(n) = num.parse::<u32>() {
                return Ok(Tokened::PredDst(PredDst::new(PredReg(n), ty)));
            }
        } else if let Ok(n) = rest.parse::<u32>() {
            return Ok(Tokened::Pred(PredReg(n)));
        }
    }
    if let Some(rest) = tok.strip_prefix('B') {
        if let Ok(n) = rest.parse::<u32>() {
            return Ok(Tokened::Block(BlockId(n)));
        }
    }
    if let Some(rest) = tok.strip_prefix("@F") {
        if let Ok(n) = rest.parse::<u32>() {
            return Ok(Tokened::Callee(FuncId(n)));
        }
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Tokened::Imm(v));
    }
    err(line, format!("unrecognized operand '{tok}'"))
}

/// Parses one function in printer syntax.
///
/// Blocks are created in order of appearance; `Bn` labels map to fresh
/// blocks, so sparse or renumbered labels round-trip (the printed ids need
/// not be dense).
///
/// # Errors
/// Returns the first malformed line. The result is verified before being
/// returned.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    // Header: func name(r0, r1) {
    let (hline, header) = loop {
        match lines.next() {
            Some((n, l)) if !l.trim().is_empty() => break (n + 1, l.trim()),
            Some(_) => continue,
            None => return err(0, "empty input"),
        }
    };
    let header = header
        .strip_prefix("func ")
        .and_then(|h| h.strip_suffix('{'))
        .map(str::trim)
        .ok_or_else(|| ParseError {
            line: hline,
            message: "expected `func name(...) {`".into(),
        })?;
    let (name, params) = header.split_once('(').ok_or_else(|| ParseError {
        line: hline,
        message: "expected parameter list".into(),
    })?;
    let params = params.trim_end_matches(')');
    let mut f = Function::new(name.trim());
    let mut max_reg: i64 = -1;
    let mut max_pred: i64 = -1;
    for p in params.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match parse_token(p, hline)? {
            Tokened::Reg(r) => {
                max_reg = max_reg.max(r.0 as i64);
                f.params.push(r);
            }
            _ => return err(hline, format!("bad parameter '{p}'")),
        }
    }

    // Body.
    let mut label_map: HashMap<u32, BlockId> = HashMap::new();
    let mut fixups: Vec<(BlockId, usize, u32)> = Vec::new(); // (block, idx, label)
    let mut cur: Option<BlockId> = None;
    let mut first = true;
    for (n, raw) in lines {
        let line_no = n + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            let id = label
                .strip_prefix('B')
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| ParseError {
                    line: line_no,
                    message: format!("bad block label '{label}'"),
                })?;
            let b = if first {
                first = false;
                f.entry()
            } else {
                f.add_block()
            };
            if label_map.insert(id, b).is_some() {
                return err(line_no, format!("duplicate block label B{id}"));
            }
            cur = Some(b);
            continue;
        }
        let Some(b) = cur else {
            return err(line_no, "instruction before first block label");
        };
        let (inst, pending_label, regs, preds) = parse_inst(&mut f, line, line_no)?;
        max_reg = max_reg.max(regs);
        max_pred = max_pred.max(preds);
        let idx = f.block(b).insts.len();
        if let Some(label) = pending_label {
            fixups.push((b, idx, label));
        }
        f.block_mut(b).insts.push(inst);
    }
    // Resolve branch labels.
    for (b, idx, label) in fixups {
        let target = *label_map.get(&label).ok_or_else(|| ParseError {
            line: 0,
            message: format!("branch to undefined block B{label}"),
        })?;
        f.block_mut(b).insts[idx].target = Some(target);
    }
    f.reg_count = (max_reg + 1) as u32;
    f.pred_count = (max_pred + 1) as u32;
    crate::verify::verify_function(&f).map_err(|e| ParseError {
        line: 0,
        message: format!("verification failed: {e}"),
    })?;
    Ok(f)
}

/// Parses one instruction line; returns the instruction, an unresolved
/// branch label (if any), and the highest register/predicate mentioned.
fn parse_inst(
    f: &mut Function,
    line: &str,
    line_no: usize,
) -> Result<(Inst, Option<u32>, i64, i64), ParseError> {
    let mut rest = line;
    // Optional "[cycle]" column.
    if let Some(r) = rest.strip_prefix('[') {
        let (cyc, tail) = r.split_once(']').ok_or_else(|| ParseError {
            line: line_no,
            message: "unterminated [cycle]".into(),
        })?;
        let _cycle: u32 = cyc.trim().parse().map_err(|_| ParseError {
            line: line_no,
            message: format!("bad cycle '{cyc}'"),
        })?;
        rest = tail.trim_start();
    }
    let mut speculative = false;
    if let Some(r) = rest.strip_prefix("(s)") {
        speculative = true;
        rest = r.trim_start();
    }
    // Split off "-> Bx", "@Fx", "(pN)" suffixes.
    let mut pending_label = None;
    let mut guard = None;
    let mut callee = None;
    if let Some(pos) = rest.rfind('(') {
        // Guard suffix must be the final parenthesized pN.
        let suffix = rest[pos..].trim();
        if let Some(p) = suffix
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .filter(|s| s.starts_with('p'))
        {
            if let Ok(Tokened::Pred(pr)) = parse_token(p, line_no) {
                guard = Some(pr);
                rest = rest[..pos].trim_end();
            }
        }
    }
    if let Some(pos) = rest.find("@F") {
        let tok = rest[pos..].trim();
        match parse_token(tok, line_no)? {
            Tokened::Callee(c) => callee = Some(c),
            _ => return err(line_no, "bad callee"),
        }
        rest = rest[..pos].trim_end();
    }
    if let Some(pos) = rest.find("->") {
        let tok = rest[pos + 2..].trim();
        let label = tok
            .strip_prefix('B')
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| ParseError {
                line: line_no,
                message: format!("bad branch target '{tok}'"),
            })?;
        pending_label = Some(label);
        rest = rest[..pos].trim_end();
    }

    let (mnemonic, operands) = match rest.split_once(' ') {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let op = op_of(mnemonic).ok_or_else(|| ParseError {
        line: line_no,
        message: format!("unknown mnemonic '{mnemonic}'"),
    })?;
    let mut inst = Inst::new(f.fresh_inst_id(), op);
    inst.speculative = speculative;
    inst.guard = guard;
    inst.callee = callee;

    // Memory forms have bracketed address syntax.
    let mut toks: Vec<Tokened> = Vec::new();
    if op.is_load() || op.is_store() {
        let (pre, addr_and_rest) = operands.split_once('[').ok_or_else(|| ParseError {
            line: line_no,
            message: "expected [base + off]".into(),
        })?;
        let (addr, post) = addr_and_rest.split_once(']').ok_or_else(|| ParseError {
            line: line_no,
            message: "unterminated [base + off]".into(),
        })?;
        let (base, off) = addr.split_once('+').ok_or_else(|| ParseError {
            line: line_no,
            message: "expected base + off".into(),
        })?;
        for t in pre.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            toks.push(parse_token(t, line_no)?);
        }
        toks.push(parse_token(base.trim(), line_no)?);
        toks.push(parse_token(off.trim(), line_no)?);
        for t in post.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            toks.push(parse_token(t, line_no)?);
        }
    } else {
        for t in operands.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            toks.push(parse_token(t, line_no)?);
        }
    }

    // Distribute: predicate destinations, then (for value-producing ops)
    // the destination register, then sources.
    let mut max_reg: i64 = -1;
    let mut max_pred: i64 = -1;
    let mut it = toks.into_iter().peekable();
    while let Some(Tokened::PredDst(_)) = it.peek() {
        let Some(Tokened::PredDst(pd)) = it.next() else {
            unreachable!()
        };
        max_pred = max_pred.max(pd.reg.0 as i64);
        inst.pdsts.push(pd);
    }
    let wants_dst = matches!(
        op,
        Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::AndNot
            | Op::OrNot
            | Op::Shl
            | Op::Shr
            | Op::Sra
            | Op::Cmp(_)
            | Op::Mov
            | Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FDiv
            | Op::FCmp(_)
            | Op::IToF
            | Op::FToI
            | Op::Ld(_)
            | Op::Cmov
            | Op::CmovCom
            | Op::Select
            | Op::Call
    );
    if wants_dst {
        match it.next() {
            Some(Tokened::Reg(r)) => {
                max_reg = max_reg.max(r.0 as i64);
                inst.dst = Some(r);
            }
            other => {
                return err(
                    line_no,
                    format!("{mnemonic}: expected destination register, got {other:?}"),
                )
            }
        }
    }
    for t in it {
        match t {
            Tokened::Reg(r) => {
                max_reg = max_reg.max(r.0 as i64);
                inst.srcs.push(Operand::Reg(r));
            }
            Tokened::Imm(v) => inst.srcs.push(Operand::Imm(v)),
            other => return err(line_no, format!("{mnemonic}: unexpected operand {other:?}")),
        }
    }
    if let Some(g) = inst.guard {
        max_pred = max_pred.max(g.0 as i64);
    }
    Ok((inst, pending_label, max_reg, max_pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FuncBuilder;

    #[test]
    fn parses_simple_function() {
        let f = parse_function(
            "func main(r0) {
             B0:
               add r1, r0, 1
               ret r1
             }",
        )
        .unwrap();
        assert_eq!(f.name, "main");
        assert_eq!(f.params, vec![Reg(0)]);
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert_eq!(f.blocks[0].insts[0].op, Op::Add);
        assert_eq!(f.reg_count, 2);
    }

    #[test]
    fn parses_branches_and_guards() {
        let f = parse_function(
            "func main(r0) {
             B0:
               pred_eq p0<U>, p1<!U>, r0, 0
               mov r1, 1 (p0)
               mov r1, 2 (p1)
               beq r0, 5 -> B1
               ret r1
             B1:
               ret 0
             }",
        )
        .unwrap();
        let insts = &f.blocks[0].insts;
        assert_eq!(insts[0].pdsts.len(), 2);
        assert_eq!(insts[1].guard, Some(PredReg(0)));
        assert_eq!(insts[3].op, Op::Br(CmpOp::Eq));
        assert_eq!(insts[3].target, Some(BlockId(1)));
    }

    #[test]
    fn parses_memory_and_speculative_forms() {
        let f = parse_function(
            "func main(r0) {
             B0:
               (s) ld.w r1, [r0 + 8]
               st.b [r0 + 0], r1
               ret r1
             }",
        )
        .unwrap();
        let insts = &f.blocks[0].insts;
        assert!(insts[0].speculative);
        assert_eq!(insts[0].op, Op::Ld(MemWidth::Word));
        assert_eq!(insts[0].srcs, vec![Operand::Reg(Reg(0)), Operand::Imm(8)]);
        assert_eq!(insts[1].op, Op::St(MemWidth::Byte));
        assert_eq!(
            insts[1].srcs,
            vec![Operand::Reg(Reg(0)), Operand::Imm(0), Operand::Reg(Reg(1))]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_function("nonsense").is_err());
        assert!(parse_function("func f() {\nB0:\n  frobnicate r1\n}").is_err());
        assert!(parse_function("func f() {\nB0:\n  jump -> B9\n}").is_err());
        // Dangling fall-through fails verification.
        assert!(parse_function("func f(r0) {\nB0:\n  add r1, r0, 1\n}").is_err());
    }

    #[test]
    fn round_trips_builder_output() {
        let mut b = FuncBuilder::new("demo");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        let other = b.block();
        b.pred_def(
            CmpOp::Lt,
            &[(p, PredType::Or), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(10),
            None,
        );
        let y = b.add(x.into(), Operand::Imm(3));
        b.guard_last(q);
        b.br(CmpOp::Ne, y.into(), Operand::Imm(0), other);
        b.ret(Some(x.into()));
        b.switch_to(other);
        let v = b.load(MemWidth::Word, x.into(), Operand::Imm(16));
        b.store(MemWidth::Word, x.into(), Operand::Imm(24), v.into());
        b.ret(Some(v.into()));
        let f = b.finish();

        let text = f.to_string();
        let parsed = parse_function(&text).unwrap();
        assert_eq!(
            parsed.to_string(),
            text,
            "print -> parse -> print must be a fixpoint"
        );
    }
}
