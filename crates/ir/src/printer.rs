//! Textual form of the IR, styled after the paper's assembly listings.

use crate::inst::{Inst, Op};
use crate::module::{Function, Module};
use std::fmt;

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: String = match self {
            Op::Add => "add".into(),
            Op::Sub => "sub".into(),
            Op::Mul => "mul".into(),
            Op::Div => "div".into(),
            Op::Rem => "rem".into(),
            Op::And => "and".into(),
            Op::Or => "or".into(),
            Op::Xor => "xor".into(),
            Op::AndNot => "and_not".into(),
            Op::OrNot => "or_not".into(),
            Op::Shl => "shl".into(),
            Op::Shr => "shr".into(),
            Op::Sra => "sra".into(),
            Op::Cmp(c) => c.mnemonic().into(),
            Op::Mov => "mov".into(),
            Op::FAdd => "add_f".into(),
            Op::FSub => "sub_f".into(),
            Op::FMul => "mul_f".into(),
            Op::FDiv => "div_f".into(),
            Op::FCmp(c) => format!("{}_f", c.mnemonic()),
            Op::IToF => "itof".into(),
            Op::FToI => "ftoi".into(),
            Op::Ld(w) => format!("ld.{}", if w.bytes() == 1 { "b" } else { "w" }),
            Op::St(w) => format!("st.{}", if w.bytes() == 1 { "b" } else { "w" }),
            Op::Br(c) => format!("b{}", c.mnemonic()),
            Op::Jump => "jump".into(),
            Op::Call => "jsr".into(),
            Op::Ret => "ret".into(),
            Op::Halt => "halt".into(),
            Op::PredDef(c) => format!("pred_{}", c.mnemonic()),
            Op::FPredDef(c) => format!("pred_{}_f", c.mnemonic()),
            Op::PredClear => "pred_clear".into(),
            Op::PredSet => "pred_set".into(),
            Op::Cmov => "cmov".into(),
            Op::CmovCom => "cmov_com".into(),
            Op::Select => "select".into(),
            Op::Nop => "nop".into(),
        };
        f.write_str(&s)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.speculative {
            write!(f, "(s) ")?;
        }
        write!(f, "{}", self.op)?;
        let mut sep = " ";
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
            sep = ", ";
        }
        for pd in &self.pdsts {
            write!(f, "{sep}{pd}")?;
            sep = ", ";
        }
        match self.op {
            Op::Ld(_) => {
                write!(f, "{sep}[{} + {}]", self.srcs[0], self.srcs[1])?;
            }
            Op::St(_) => {
                write!(
                    f,
                    "{sep}[{} + {}], {}",
                    self.srcs[0], self.srcs[1], self.srcs[2]
                )?;
            }
            _ => {
                for s in &self.srcs {
                    write!(f, "{sep}{s}")?;
                    sep = ", ";
                }
            }
        }
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        if let Some(c) = self.callee {
            write!(f, " @{c}")?;
        }
        if let Some(g) = self.guard {
            write!(f, " ({g})")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for &b in &self.layout {
            writeln!(f, "{b}:")?;
            for inst in &self.block(b).insts {
                writeln!(f, "  [{:>3}] {inst}", inst.cycle)?;
            }
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} @{:#x} [{} bytes]", g.name, g.addr, g.size)?;
        }
        for (i, func) in self.funcs.iter().enumerate() {
            writeln!(f, "; F{i}")?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::types::{CmpOp, MemWidth, Operand, Reg};
    use crate::{FuncBuilder, PredType};

    #[test]
    fn inst_display_matches_paper_style() {
        let mut b = FuncBuilder::new("t");
        let p1 = b.fresh_pred();
        let p2 = b.fresh_pred();
        let p3 = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p1, PredType::Or), (p3, PredType::UBar)],
            Operand::Reg(Reg(0)),
            Operand::Imm(0),
            Some(p2),
        );
        let f = b.finish();
        let s = f.blocks[0].insts[0].to_string();
        assert_eq!(s, "pred_eq p0<OR>, p2<!U>, r0, 0 (p1)");
    }

    #[test]
    fn memory_display() {
        let mut b = FuncBuilder::new("t");
        let base = b.param();
        let v = b.load(MemWidth::Word, base.into(), Operand::Imm(8));
        b.store(MemWidth::Byte, base.into(), Operand::Imm(0), v.into());
        let f = b.finish();
        let insts = &f.blocks[0].insts;
        assert_eq!(insts[0].to_string(), "ld.w r1, [r0 + 8]");
        assert_eq!(insts[1].to_string(), "st.b [r0 + 0], r1");
    }

    #[test]
    fn guarded_and_speculative_display() {
        let mut b = FuncBuilder::new("t");
        let p = b.fresh_pred();
        let x = b.param();
        b.add(x.into(), Operand::Imm(1));
        b.guard_last(p);
        let mut f = b.finish();
        f.blocks[0].insts[0].speculative = true;
        let s = f.blocks[0].insts[0].to_string();
        assert_eq!(s, "(s) add r1, r0, 1 (p0)");
    }

    #[test]
    fn function_display_contains_blocks() {
        let mut b = FuncBuilder::new("t");
        b.ret(None);
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("func t("));
        assert!(s.contains("B0:"));
        assert!(s.contains("ret"));
    }
}
