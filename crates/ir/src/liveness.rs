//! Predicate-aware liveness analysis.
//!
//! Liveness over both register files (general registers and predicate
//! registers). The analysis understands *partial definitions*: a guarded
//! instruction, a `cmov`/`cmov_com`, or an OR/AND-type predicate destination
//! may leave the previous value in place, so such definitions do **not**
//! kill their destination and additionally count as upward-exposed uses.

use crate::cfg::Cfg;
use crate::inst::{Inst, Op};
use crate::module::Function;
use crate::types::{BlockId, PredReg, Reg};
use std::marker::PhantomData;

/// An id addressable by [`DenseIdSet`] (a `u32`-indexed register file id).
pub trait LiveId: Copy {
    /// The id's dense index.
    fn live_index(self) -> usize;
}

impl LiveId for Reg {
    fn live_index(self) -> usize {
        self.index()
    }
}

impl LiveId for PredReg {
    fn live_index(self) -> usize {
        self.index()
    }
}

/// A grow-on-insert bit set over one register file.
///
/// Liveness sets are the inner loop of every global pass (DCE recomputes
/// them each round, the scheduler and promoter query them per candidate),
/// so membership is a word index instead of a hash probe. Word vectors
/// grow lazily; equality and union treat missing high words as zero, so
/// sets over the same function compare consistently regardless of their
/// high-water marks.
#[derive(Debug, Clone)]
pub struct DenseIdSet<T> {
    words: Vec<u64>,
    _ids: PhantomData<T>,
}

impl<T> Default for DenseIdSet<T> {
    fn default() -> DenseIdSet<T> {
        DenseIdSet {
            words: Vec::new(),
            _ids: PhantomData,
        }
    }
}

impl<T: LiveId> DenseIdSet<T> {
    /// Empty set.
    pub fn new() -> DenseIdSet<T> {
        DenseIdSet {
            words: Vec::new(),
            _ids: PhantomData,
        }
    }

    /// True if `id` is present.
    #[inline]
    pub fn contains(&self, id: &T) -> bool {
        let i = id.live_index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Inserts `id`.
    #[inline]
    pub fn insert(&mut self, id: T) {
        let i = id.live_index();
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Removes `id`.
    #[inline]
    pub fn remove(&mut self, id: &T) {
        let i = id.live_index();
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Removes every id.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Inserts every id `iter` yields.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }

    /// Unions `other` into `self`; true if anything was added.
    pub fn union_with(&mut self, other: &DenseIdSet<T>) -> bool {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }
}

impl<T: LiveId> PartialEq for DenseIdSet<T> {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl<T: LiveId> Eq for DenseIdSet<T> {}

/// A set of live registers and predicates.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LiveSet {
    /// Live general registers.
    pub regs: DenseIdSet<Reg>,
    /// Live predicate registers.
    pub preds: DenseIdSet<PredReg>,
}

impl LiveSet {
    /// Empty set.
    pub fn new() -> LiveSet {
        LiveSet::default()
    }

    /// Unions `other` into `self`; true if anything was added.
    pub fn union_with(&mut self, other: &LiveSet) -> bool {
        let r = self.regs.union_with(&other.regs);
        self.preds.union_with(&other.preds) || r
    }
}

/// Registers read by `inst`, including the implicit destination read of a
/// partial definition.
pub fn uses_of(inst: &Inst) -> (Vec<Reg>, Vec<PredReg>) {
    let mut regs: Vec<Reg> = inst.src_regs().collect();
    if inst.is_partial_reg_def() {
        if let Some(d) = inst.dst {
            regs.push(d);
        }
    }
    let preds: Vec<PredReg> = inst.pred_uses().collect();
    (regs, preds)
}

/// Applies `inst` backwards to a live set: removes killed definitions, adds
/// uses.
pub fn step_backwards(inst: &Inst, live: &mut LiveSet) {
    // Kills: only full definitions.
    if let Some(d) = inst.dst {
        if !inst.is_partial_reg_def() {
            live.regs.remove(&d);
        }
    }
    if inst.defines_all_preds() {
        live.preds.clear();
    }
    for pd in &inst.pdsts {
        if !pd.ty.is_partial() && inst.guard.is_none() {
            // An unguarded U-type define always writes: full kill.
            live.preds.remove(&pd.reg);
        } else if !pd.ty.is_partial() {
            // Guarded U-type also always writes (Pin=0 writes 0): full kill.
            live.preds.remove(&pd.reg);
        }
        // OR/AND types are partial: no kill (their use was added by
        // pred_uses()).
    }
    // Uses.
    let (regs, preds) = uses_of(inst);
    live.regs.extend(regs);
    live.preds.extend(preds);
}

/// Per-block liveness results.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live-in set per block (indexed by block id).
    pub live_in: Vec<LiveSet>,
    /// Live-out set per block (indexed by block id).
    pub live_out: Vec<LiveSet>,
}

impl Liveness {
    /// Computes liveness for `f` over `cfg`.
    ///
    /// Blocks may contain *mid-block* exit branches (superblocks,
    /// hyperblocks); at each branch, the target's live-in set is injected
    /// into the backward walk so values needed only on the taken path stay
    /// live across later kills on the fall-through path.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let n = f.blocks.len();
        let mut live_in = vec![LiveSet::new(); n];
        let mut live_out = vec![LiveSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Postorder (reverse of RPO) converges fastest for backward
            // problems.
            for &b in cfg.rpo.iter().rev() {
                let mut out = LiveSet::new();
                for &s in &cfg.succs[b.index()] {
                    out.union_with(&live_in[s.index()]);
                }
                let mut live = out.clone();
                for inst in f.block(b).insts.iter().rev() {
                    if let Some(t) = branch_target(inst) {
                        live.union_with(&live_in[t.index()]);
                    }
                    step_backwards(inst, &mut live);
                }
                if out != live_out[b.index()] {
                    live_out[b.index()] = out;
                    changed = true;
                }
                if live != live_in[b.index()] {
                    live_in[b.index()] = live;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Live set immediately *before* instruction `index` of `block`
    /// (recomputed by walking backwards from the block's live-out,
    /// injecting branch-target live-ins).
    pub fn before(&self, f: &Function, block: BlockId, index: usize) -> LiveSet {
        let mut live = self.live_out[block.index()].clone();
        let insts = &f.block(block).insts;
        for inst in insts[index..].iter().rev() {
            if let Some(t) = branch_target(inst) {
                live.union_with(&self.live_in[t.index()]);
            }
            step_backwards(inst, &mut live);
        }
        live
    }

    /// True if register `r` is live on entry to `block`.
    pub fn reg_live_in(&self, block: BlockId, r: Reg) -> bool {
        self.live_in[block.index()].regs.contains(&r)
    }
}

/// The control-transfer target of `inst`, if it is a branch or jump.
pub fn branch_target(inst: &Inst) -> Option<BlockId> {
    if inst.op.is_branch() {
        inst.target
    } else {
        None
    }
}

/// Returns true if `inst` is removable when its outputs are dead: it has no
/// side effects and does not transfer control.
pub fn is_removable(inst: &Inst) -> bool {
    !inst.op.has_side_effects() && !matches!(inst.op, Op::PredClear | Op::PredSet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CmpOp, Operand};
    use crate::FuncBuilder;

    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(1)); // y = x+1
        let z = b.add(y.into(), Operand::Imm(2)); // z = y+2
        b.ret(Some(z.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        let entry = f.entry();
        assert!(lv.reg_live_in(entry, x));
        assert!(!lv.reg_live_in(entry, y));
        // before the ret, z is live
        let before_ret = lv.before(&f, entry, 2);
        assert!(before_ret.regs.contains(&z));
        assert!(!before_ret.regs.contains(&x));
    }

    #[test]
    fn loop_keeps_accumulator_live() {
        let mut b = FuncBuilder::new("f");
        let n = b.param();
        let acc = b.mov(Operand::Imm(0));
        let i = b.mov(Operand::Imm(0));
        let body = b.block();
        let exit = b.block();
        b.jump(body);
        b.switch_to(body);
        let acc2 = b.add(acc.into(), i.into());
        b.mov_to(acc, acc2.into());
        let i2 = b.add(i.into(), Operand::Imm(1));
        b.mov_to(i, i2.into());
        b.br(CmpOp::Lt, i.into(), n.into(), body);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.reg_live_in(body, acc));
        assert!(lv.reg_live_in(body, i));
        assert!(lv.reg_live_in(body, n));
        assert!(lv.live_out[body.index()].regs.contains(&acc));
    }

    #[test]
    fn cmov_dst_is_upward_exposed() {
        let mut b = FuncBuilder::new("f");
        let c = b.param();
        let out = b.mov(Operand::Imm(1)); // full def of out
        b.cmov(out, Operand::Imm(2), c.into()); // partial def reads out
        b.ret(Some(out.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        // Before the cmov, `out` must be live (its old value can survive).
        let before = lv.before(&f, f.entry(), 1);
        assert!(before.regs.contains(&out));
        // Before the mov, `out` must be dead (mov fully defines it).
        let before0 = lv.before(&f, f.entry(), 0);
        assert!(!before0.regs.contains(&out));
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let mut b = FuncBuilder::new("f");
        let p = b.fresh_pred();
        let out = b.mov(Operand::Imm(1));
        b.mov_to(out, Operand::Imm(2));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        let before = lv.before(&f, f.entry(), 1);
        assert!(before.regs.contains(&out), "guarded def must not kill");
        assert!(before.preds.contains(&p));
    }

    #[test]
    fn pred_kill_rules() {
        use crate::PredType;
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let p = b.fresh_pred();
        // U-type fully defines p.
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let y = b.add(x.into(), Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(y.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in[f.entry().index()].preds.contains(&p));

        // OR-type is a partial def: p stays live above it.
        let mut b = FuncBuilder::new("g");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::Or)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let y = b.add(x.into(), Operand::Imm(1));
        b.guard_last(p);
        b.ret(Some(y.into()));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in[f.entry().index()].preds.contains(&p));
    }
}
