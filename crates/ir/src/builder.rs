//! Convenience builder for constructing functions instruction by
//! instruction.

use crate::inst::{Inst, Op};
use crate::module::{Block, Function};
use crate::pred::{PredDst, PredType};
use crate::types::{BlockId, CmpOp, MemWidth, Operand, PredReg, Reg};

/// Incrementally builds a [`Function`].
///
/// The builder maintains a *current block*; emit methods append to it.
/// Blocks are created with [`FuncBuilder::block`] and selected with
/// [`FuncBuilder::switch_to`].
///
/// # Example
///
/// ```
/// use hyperpred_ir::{FuncBuilder, Operand, CmpOp};
///
/// // fn max(a, b) { if a < b { return b } return a }
/// let mut b = FuncBuilder::new("max");
/// let (x, y) = (b.param(), b.param());
/// let then = b.block();
/// b.br(CmpOp::Lt, x.into(), y.into(), then);
/// b.ret(Some(x.into()));
/// b.switch_to(then);
/// b.ret(Some(y.into()));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 2);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    f: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Starts building a function with an empty entry block.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        let f = Function::new(name);
        let cur = f.entry();
        FuncBuilder { f, cur }
    }

    /// Declares the next parameter, returning its register.
    pub fn param(&mut self) -> Reg {
        let r = self.f.fresh_reg();
        self.f.params.push(r);
        r
    }

    /// Allocates a fresh virtual register.
    pub fn fresh(&mut self) -> Reg {
        self.f.fresh_reg()
    }

    /// Allocates a fresh predicate register.
    pub fn fresh_pred(&mut self) -> PredReg {
        self.f.fresh_pred()
    }

    /// Creates a new block (appended to the layout after all existing
    /// blocks) without switching to it.
    pub fn block(&mut self) -> BlockId {
        self.f.add_block()
    }

    /// Makes `b` the current block for subsequent emits.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The block currently being appended to.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.f
    }

    fn push(&mut self, inst: Inst) {
        self.f.block_mut(self.cur).insts.push(inst);
    }

    /// Emits a raw instruction built by `build` (advanced uses/tests).
    pub fn emit_with(&mut self, op: Op, build: impl FnOnce(&mut Inst)) {
        let mut i = self.f.make_inst(op);
        build(&mut i);
        self.push(i);
    }

    /// Emits a two-source ALU operation into a fresh register.
    pub fn op2(&mut self, op: Op, a: Operand, b: Operand) -> Reg {
        let dst = self.f.fresh_reg();
        self.op2_to(op, dst, a, b);
        dst
    }

    /// Emits a two-source ALU operation into `dst`.
    pub fn op2_to(&mut self, op: Op, dst: Reg, a: Operand, b: Operand) {
        let mut i = self.f.make_inst(op);
        i.dst = Some(dst);
        i.srcs = vec![a, b];
        self.push(i);
    }

    /// `dst = a + b`.
    pub fn add(&mut self, a: Operand, b: Operand) -> Reg {
        self.op2(Op::Add, a, b)
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Reg {
        self.op2(Op::Sub, a, b)
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Reg {
        self.op2(Op::Mul, a, b)
    }

    /// `dst = (a cmp b) as i64`.
    pub fn cmp(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> Reg {
        self.op2(Op::Cmp(cmp), a, b)
    }

    /// `dst = a` into a fresh register.
    pub fn mov(&mut self, a: Operand) -> Reg {
        let dst = self.f.fresh_reg();
        self.mov_to(dst, a);
        dst
    }

    /// `dst = a`.
    pub fn mov_to(&mut self, dst: Reg, a: Operand) {
        let mut i = self.f.make_inst(Op::Mov);
        i.dst = Some(dst);
        i.srcs = vec![a];
        self.push(i);
    }

    /// `dst = mem[base + off]`.
    pub fn load(&mut self, w: MemWidth, base: Operand, off: Operand) -> Reg {
        let dst = self.f.fresh_reg();
        self.load_to(w, dst, base, off);
        dst
    }

    /// `dst = mem[base + off]` into an existing register.
    pub fn load_to(&mut self, w: MemWidth, dst: Reg, base: Operand, off: Operand) {
        let mut i = self.f.make_inst(Op::Ld(w));
        i.dst = Some(dst);
        i.srcs = vec![base, off];
        self.push(i);
    }

    /// `mem[base + off] = value`.
    pub fn store(&mut self, w: MemWidth, base: Operand, off: Operand, value: Operand) {
        let mut i = self.f.make_inst(Op::St(w));
        i.srcs = vec![base, off, value];
        self.push(i);
    }

    /// Branch to `target` when `a cmp b`.
    pub fn br(&mut self, cmp: CmpOp, a: Operand, b: Operand, target: BlockId) {
        let mut i = self.f.make_inst(Op::Br(cmp));
        i.srcs = vec![a, b];
        i.target = Some(target);
        self.push(i);
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: BlockId) {
        let mut i = self.f.make_inst(Op::Jump);
        i.target = Some(target);
        self.push(i);
    }

    /// Calls `callee` (resolved by name at [`crate::Module::link`] time).
    pub fn call(&mut self, callee: &str, args: Vec<Operand>) -> Reg {
        let dst = self.f.fresh_reg();
        let mut i = self.f.make_inst(Op::Call);
        i.dst = Some(dst);
        i.srcs = args;
        self.f.pending_callees.insert(i.id, callee.to_string());
        self.push(i);
        dst
    }

    /// Returns from the function.
    pub fn ret(&mut self, value: Option<Operand>) {
        let mut i = self.f.make_inst(Op::Ret);
        i.srcs = value.into_iter().collect();
        self.push(i);
    }

    /// Stops the program.
    pub fn halt(&mut self) {
        let i = self.f.make_inst(Op::Halt);
        self.push(i);
    }

    /// Emits a predicate define `pred_<cmp> dsts..., a, b (guard)`.
    pub fn pred_def(
        &mut self,
        cmp: CmpOp,
        dsts: &[(PredReg, PredType)],
        a: Operand,
        b: Operand,
        guard: Option<PredReg>,
    ) {
        assert!(!dsts.is_empty() && dsts.len() <= 2, "1-2 predicate dests");
        let mut i = self.f.make_inst(Op::PredDef(cmp));
        i.srcs = vec![a, b];
        i.pdsts = dsts.iter().map(|&(r, t)| PredDst::new(r, t)).collect();
        i.guard = guard;
        self.push(i);
    }

    /// Emits `pred_clear`.
    pub fn pred_clear(&mut self) {
        let i = self.f.make_inst(Op::PredClear);
        self.push(i);
    }

    /// `if cond != 0 { dst = value }`.
    pub fn cmov(&mut self, dst: Reg, value: Operand, cond: Operand) {
        let mut i = self.f.make_inst(Op::Cmov);
        i.dst = Some(dst);
        i.srcs = vec![value, cond];
        self.push(i);
    }

    /// `if cond == 0 { dst = value }`.
    pub fn cmov_com(&mut self, dst: Reg, value: Operand, cond: Operand) {
        let mut i = self.f.make_inst(Op::CmovCom);
        i.dst = Some(dst);
        i.srcs = vec![value, cond];
        self.push(i);
    }

    /// `dst = if cond != 0 { tval } else { fval }` into a fresh register.
    pub fn select(&mut self, tval: Operand, fval: Operand, cond: Operand) -> Reg {
        let dst = self.f.fresh_reg();
        let mut i = self.f.make_inst(Op::Select);
        i.dst = Some(dst);
        i.srcs = vec![tval, fval, cond];
        self.push(i);
        dst
    }

    /// Applies `guard` to the most recently emitted instruction.
    ///
    /// # Panics
    /// Panics if the current block is empty.
    pub fn guard_last(&mut self, guard: PredReg) {
        let cur = self.cur;
        let inst = self
            .f
            .block_mut(cur)
            .insts
            .last_mut()
            .expect("guard_last on empty block");
        inst.guard = Some(guard);
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.f
    }

    /// Current block contents (test helper).
    pub fn cur_block(&self) -> &Block {
        self.f.block(self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let y = b.add(x.into(), Operand::Imm(1));
        let z = b.mul(y.into(), Operand::Imm(2));
        b.ret(Some(z.into()));
        let f = b.finish();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.block(f.entry()).insts.len(), 3);
        assert!(f.is_basic());
    }

    #[test]
    fn guard_last_sets_guard() {
        let mut b = FuncBuilder::new("f");
        let p = b.fresh_pred();
        let x = b.param();
        b.op2(Op::Add, x.into(), Operand::Imm(1));
        b.guard_last(p);
        let f = b.finish();
        assert_eq!(f.block(f.entry()).insts[0].guard, Some(p));
    }

    #[test]
    fn call_records_pending_name() {
        let mut b = FuncBuilder::new("f");
        b.call("g", vec![Operand::Imm(1)]);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.pending_callees.len(), 1);
    }

    #[test]
    fn pred_def_shape() {
        let mut b = FuncBuilder::new("f");
        let p1 = b.fresh_pred();
        let p2 = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p1, PredType::Or), (p2, PredType::UBar)],
            Operand::Imm(0),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        let f = b.finish();
        let i = &f.block(f.entry()).insts[0];
        assert_eq!(i.pdsts.len(), 2);
        assert_eq!(i.pdsts[0].ty, PredType::Or);
    }

    #[test]
    #[should_panic(expected = "1-2 predicate dests")]
    fn pred_def_rejects_empty_dests() {
        let mut b = FuncBuilder::new("f");
        b.pred_def(CmpOp::Eq, &[], Operand::Imm(0), Operand::Imm(0), None);
    }
}
