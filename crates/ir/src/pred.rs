//! Predicate-define destination types — the paper's Table 1.
//!
//! A predicate define instruction (`pred_<cmp> Pout1<type>, Pout2<type>,
//! src1, src2 (Pin)`) assigns up to two destination predicate registers
//! based on the comparison result and the *input predicate* `Pin`. Each
//! destination carries a [`PredType`] that selects what is written:
//!
//! | `Pin` | cmp | U | U̅ | OR | OR̅ | AND | AND̅ |
//! |-------|-----|---|----|----|----|-----|-----|
//! | 0     | 0   | 0 | 0  | –  | –  | –   | –   |
//! | 0     | 1   | 0 | 0  | –  | –  | –   | –   |
//! | 1     | 0   | 0 | 1  | –  | 1  | 0   | –   |
//! | 1     | 1   | 1 | 0  | 1  | –  | –   | 0   |
//!
//! (`–` leaves the destination unchanged.) These are the six useful types of
//! the HPL PlayDoh semantics out of the 3⁴ = 81 possible ones.

use crate::types::PredReg;
use std::fmt;

/// Destination-predicate semantics of a predicate define (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredType {
    /// Unconditional: always written; `Pin && cmp`.
    U,
    /// Unconditional complement: always written; `Pin && !cmp`.
    UBar,
    /// OR-type: set to 1 when `Pin && cmp`, otherwise unchanged.
    Or,
    /// OR complement: set to 1 when `Pin && !cmp`, otherwise unchanged.
    OrBar,
    /// AND-type: cleared when `Pin && !cmp`, otherwise unchanged.
    And,
    /// AND complement: cleared when `Pin && cmp`, otherwise unchanged.
    AndBar,
}

impl PredType {
    /// All six types.
    pub const ALL: [PredType; 6] = [
        PredType::U,
        PredType::UBar,
        PredType::Or,
        PredType::OrBar,
        PredType::And,
        PredType::AndBar,
    ];

    /// Applies the truth table: given the input predicate, the comparison
    /// result and the previous destination value, returns the new
    /// destination value.
    #[inline]
    pub fn eval(self, pin: bool, cmp: bool, old: bool) -> bool {
        match self {
            PredType::U => pin && cmp,
            PredType::UBar => pin && !cmp,
            PredType::Or => {
                if pin && cmp {
                    true
                } else {
                    old
                }
            }
            PredType::OrBar => {
                if pin && !cmp {
                    true
                } else {
                    old
                }
            }
            PredType::And => {
                if pin && !cmp {
                    false
                } else {
                    old
                }
            }
            PredType::AndBar => {
                if pin && cmp {
                    false
                } else {
                    old
                }
            }
        }
    }

    /// The complementary type (swaps the sense of the comparison).
    #[inline]
    pub fn complement(self) -> PredType {
        match self {
            PredType::U => PredType::UBar,
            PredType::UBar => PredType::U,
            PredType::Or => PredType::OrBar,
            PredType::OrBar => PredType::Or,
            PredType::And => PredType::AndBar,
            PredType::AndBar => PredType::And,
        }
    }

    /// True for types that may leave the destination unchanged (OR/AND
    /// families). Such destinations must be initialized before use and are
    /// *partial* definitions for liveness purposes.
    #[inline]
    pub fn is_partial(self) -> bool {
        !matches!(self, PredType::U | PredType::UBar)
    }

    /// True for the OR family.
    #[inline]
    pub fn is_or_family(self) -> bool {
        matches!(self, PredType::Or | PredType::OrBar)
    }

    /// True for the AND family.
    #[inline]
    pub fn is_and_family(self) -> bool {
        matches!(self, PredType::And | PredType::AndBar)
    }

    /// True for the complemented variants (U̅, OR̅, AND̅).
    #[inline]
    pub fn is_complemented(self) -> bool {
        matches!(self, PredType::UBar | PredType::OrBar | PredType::AndBar)
    }
}

impl fmt::Display for PredType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredType::U => "U",
            PredType::UBar => "!U",
            PredType::Or => "OR",
            PredType::OrBar => "!OR",
            PredType::And => "AND",
            PredType::AndBar => "!AND",
        };
        f.write_str(s)
    }
}

/// One destination of a predicate define: a predicate register plus the
/// [`PredType`] that governs how it is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredDst {
    /// Destination predicate register.
    pub reg: PredReg,
    /// Write semantics.
    pub ty: PredType,
}

impl PredDst {
    /// Convenience constructor.
    pub fn new(reg: PredReg, ty: PredType) -> PredDst {
        PredDst { reg, ty }
    }
}

impl fmt::Display for PredDst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>", self.reg, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1, row by row. `None` means "unchanged".
    #[test]
    fn table_1() {
        // (pin, cmp, U, UBar, Or, OrBar, And, AndBar)
        let rows: [(bool, bool, [Option<bool>; 6]); 4] = [
            (
                false,
                false,
                [Some(false), Some(false), None, None, None, None],
            ),
            (
                false,
                true,
                [Some(false), Some(false), None, None, None, None],
            ),
            (
                true,
                false,
                [Some(false), Some(true), None, Some(true), Some(false), None],
            ),
            (
                true,
                true,
                [Some(true), Some(false), Some(true), None, None, Some(false)],
            ),
        ];
        for (pin, cmp, outs) in rows {
            for (ty, want) in PredType::ALL.iter().zip(outs) {
                for old in [false, true] {
                    let got = ty.eval(pin, cmp, old);
                    match want {
                        Some(v) => assert_eq!(got, v, "{ty:?} pin={pin} cmp={cmp}"),
                        None => assert_eq!(got, old, "{ty:?} pin={pin} cmp={cmp} should hold"),
                    }
                }
            }
        }
    }

    #[test]
    fn complement_flips_cmp_sense() {
        for ty in PredType::ALL {
            for pin in [false, true] {
                for cmp in [false, true] {
                    for old in [false, true] {
                        assert_eq!(
                            ty.eval(pin, cmp, old),
                            ty.complement().eval(pin, !cmp, old),
                            "{ty:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn complement_is_involution() {
        for ty in PredType::ALL {
            assert_eq!(ty.complement().complement(), ty);
        }
    }

    #[test]
    fn or_type_never_clears() {
        // Wired-OR property: an OR-type define either writes 1 or leaves the
        // register unchanged, so defines to the same register commute.
        for pin in [false, true] {
            for cmp in [false, true] {
                assert!(PredType::Or.eval(pin, cmp, true));
                assert!(PredType::OrBar.eval(pin, cmp, true));
            }
        }
    }

    #[test]
    fn and_type_never_sets() {
        for pin in [false, true] {
            for cmp in [false, true] {
                assert!(!PredType::And.eval(pin, cmp, false));
                assert!(!PredType::AndBar.eval(pin, cmp, false));
            }
        }
    }

    #[test]
    fn or_defines_commute() {
        // Any two OR-family writes to the same register produce the same
        // final value in either order.
        let cases = [(true, true), (true, false), (false, true), (false, false)];
        for &(p1, c1) in &cases {
            for &(p2, c2) in &cases {
                for old in [false, true] {
                    let ab = PredType::Or.eval(p2, c2, PredType::Or.eval(p1, c1, old));
                    let ba = PredType::Or.eval(p1, c1, PredType::Or.eval(p2, c2, old));
                    assert_eq!(ab, ba);
                }
            }
        }
    }

    #[test]
    fn partial_classification() {
        assert!(!PredType::U.is_partial());
        assert!(!PredType::UBar.is_partial());
        assert!(PredType::Or.is_partial());
        assert!(PredType::OrBar.is_partial());
        assert!(PredType::And.is_partial());
        assert!(PredType::AndBar.is_partial());
    }

    #[test]
    fn display() {
        assert_eq!(PredType::OrBar.to_string(), "!OR");
        assert_eq!(PredDst::new(PredReg(1), PredType::U).to_string(), "p1<U>");
    }
}
