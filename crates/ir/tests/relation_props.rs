//! Property-based tests for the predicate relation analysis: random
//! straight-line define sequences must yield states whose structural
//! laws hold (disjointness symmetry, subset reflexivity/transitivity,
//! complement symmetry and involution, checker cleanliness) and whose
//! claims are *sound* — refuted by no concrete execution of the same
//! sequence over random comparison outcomes.

use hyperpred_ir::analysis::relations::TOP;
use hyperpred_ir::analysis::{check_relation_soundness, forward, ForwardAnalysis, RelAnalysis};
use hyperpred_ir::{
    Cfg, CmpOp, FuncBuilder, Function, Op, Operand, PredReg, PredType, RelState, RelationDb,
};
use proptest::prelude::*;
use proptest::TestRng;

/// One step of a generated predicate program.
#[derive(Debug, Clone)]
enum Step {
    /// `p,p̄ = (x_cmp != 0) <U,U̅>` under an optional guard — the dual
    /// define shape if-conversion emits, and the partition source.
    Dual {
        pair: usize,
        cmp: usize,
        guard: Option<usize>,
    },
    /// A single-destination define of any Table 1 type.
    Single {
        pred: usize,
        ty: usize,
        cmp: usize,
        guard: Option<usize>,
    },
    /// `pred_clear` / `pred_set`, optionally guarded (the guarded form
    /// must drop every fact: it may or may not have executed).
    Clear {
        guard: Option<usize>,
    },
    Set {
        guard: Option<usize>,
    },
}

/// A generated program plus the random comparison-outcome vectors it is
/// concretely executed over.
#[derive(Debug, Clone)]
struct Prog {
    pairs: usize,
    cmps: usize,
    steps: Vec<Step>,
    inputs: Vec<Vec<bool>>,
}

struct Progs;

impl Strategy for Progs {
    type Value = Prog;

    fn generate(&self, rng: &mut TestRng) -> Prog {
        let pairs = 2 + (rng.next_u64() % 2) as usize; // 4 or 6 predicates
        let np = pairs * 2;
        let cmps = 2 + (rng.next_u64() % 3) as usize;
        let n = 1 + (rng.next_u64() % 10) as usize;
        let guard = |rng: &mut TestRng| -> Option<usize> {
            if rng.next_u64().is_multiple_of(3) {
                Some((rng.next_u64() as usize) % np)
            } else {
                None
            }
        };
        let steps = (0..n)
            .map(|_| match rng.next_u64() % 8 {
                0..=4 => Step::Dual {
                    pair: (rng.next_u64() as usize) % pairs,
                    cmp: (rng.next_u64() as usize) % cmps,
                    guard: guard(rng),
                },
                5..=6 => Step::Single {
                    pred: (rng.next_u64() as usize) % np,
                    ty: (rng.next_u64() as usize) % PredType::ALL.len(),
                    cmp: (rng.next_u64() as usize) % cmps,
                    guard: guard(rng),
                },
                7 if rng.next_u64() & 1 == 0 => Step::Clear { guard: guard(rng) },
                _ => Step::Set { guard: guard(rng) },
            })
            .collect();
        let inputs = (0..8)
            .map(|_| (0..cmps).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        Prog {
            pairs,
            cmps,
            steps,
            inputs,
        }
    }
}

fn progs() -> Progs {
    Progs
}

/// Lowers the step list to a single-block function (comparison outcome
/// `c` is parameter register `c` tested `!= 0`).
fn build(prog: &Prog) -> Function {
    let mut b = FuncBuilder::new("prop");
    let params: Vec<_> = (0..prog.cmps).map(|_| b.param()).collect();
    let preds: Vec<PredReg> = (0..prog.pairs * 2).map(|_| b.fresh_pred()).collect();
    for step in &prog.steps {
        match *step {
            Step::Dual { pair, cmp, guard } => b.pred_def(
                CmpOp::Ne,
                &[
                    (preds[pair * 2], PredType::U),
                    (preds[pair * 2 + 1], PredType::UBar),
                ],
                params[cmp].into(),
                Operand::Imm(0),
                guard.map(|g| preds[g]),
            ),
            Step::Single {
                pred,
                ty,
                cmp,
                guard,
            } => b.pred_def(
                CmpOp::Ne,
                &[(preds[pred], PredType::ALL[ty])],
                params[cmp].into(),
                Operand::Imm(0),
                guard.map(|g| preds[g]),
            ),
            Step::Clear { guard } => {
                b.pred_clear();
                if let Some(g) = guard {
                    b.guard_last(preds[g]);
                }
            }
            Step::Set { guard } => {
                b.emit_with(Op::PredSet, |_| {});
                if let Some(g) = guard {
                    b.guard_last(preds[g]);
                }
            }
        }
    }
    b.ret(None);
    b.finish()
}

/// Reference-emulator predicate semantics for the generated shape: pred
/// defines always execute with Pin = guard value; everything else is
/// nullified by a false guard.
fn exec_step(inst: &hyperpred_ir::Inst, inputs: &[bool], preds: &mut [bool]) {
    let guard_val = inst.guard.is_none_or(|p| preds[p.index()]);
    match inst.op {
        Op::PredDef(_) => {
            let cmp = match inst.srcs[0] {
                Operand::Reg(r) => inputs[r.index()],
                Operand::Imm(v) => v != 0,
            };
            for pd in &inst.pdsts {
                let old = preds[pd.reg.index()];
                preds[pd.reg.index()] = pd.ty.eval(guard_val, cmp, old);
            }
        }
        Op::PredClear if guard_val => preds.fill(false),
        Op::PredSet if guard_val => preds.fill(true),
        _ => {}
    }
}

/// Returns the first claim in `st` the concrete file `preds` refutes.
fn refuted(st: &RelState, preds: &[bool]) -> Option<String> {
    for i in 0..preds.len() {
        let p = PredReg(i as u32);
        if st.known_true(p) && !preds[i] {
            return Some(format!("p{i} claimed true, observed false"));
        }
        if st.known_false(p) && preds[i] {
            return Some(format!("p{i} claimed false, observed true"));
        }
        if !preds[i] {
            continue;
        }
        for q in st.disjoint_of(p) {
            if preds[q.index()] {
                return Some(format!("p{i} ⟂ p{} refuted", q.0));
            }
        }
        for q in st.subset_of(p) {
            if !preds[q.index()] {
                return Some(format!("p{i} ⊆ p{} refuted", q.0));
            }
        }
    }
    for &[a, b, t] in st.partitions() {
        if (t == TOP || preds[t as usize]) && !(preds[a as usize] || preds[b as usize]) {
            return Some(format!("p{a} ∨ p{b} ⊇ {t} refuted"));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Soundness: no claim at any program point is refuted by any
    /// concrete execution of the block.
    #[test]
    fn claims_hold_on_every_execution(prog in progs()) {
        let f = build(&prog);
        let flow = forward(&f, &Cfg::new(&f), &RelAnalysis);
        let entry = flow.entry[f.entry().index()].clone().expect("entry reachable");
        for inputs in &prog.inputs {
            let mut st = entry.clone();
            let mut preds = vec![false; f.pred_count as usize];
            for inst in &f.blocks[f.entry().index()].insts {
                exec_step(inst, inputs, &mut preds);
                RelAnalysis.transfer(inst, &mut st);
                if let Some(v) = refuted(&st, &preds) {
                    prop_assert!(false, "after {inst:?}: {v} (inputs {inputs:?})");
                }
            }
        }
    }

    /// Structural laws of every intermediate state: disjointness is
    /// symmetric, subset is reflexive and transitive, complement is
    /// symmetric, and `implied_true` agrees with its definition.
    #[test]
    fn states_obey_the_relation_algebra(prog in progs()) {
        let f = build(&prog);
        let flow = forward(&f, &Cfg::new(&f), &RelAnalysis);
        let mut st = flow.entry[f.entry().index()].clone().expect("entry reachable");
        let np = f.pred_count as usize;
        for inst in &f.blocks[f.entry().index()].insts {
            RelAnalysis.transfer(inst, &mut st);
            for i in 0..np {
                let p = PredReg(i as u32);
                prop_assert!(st.subset(p, p), "⊆ must be reflexive");
                prop_assert!(
                    !st.disjoint(p, p) || st.known_false(p),
                    "p ⟂ p only for known-false p"
                );
                prop_assert_eq!(st.implied_true(p, None), st.known_true(p));
                for j in 0..np {
                    let q = PredReg(j as u32);
                    prop_assert_eq!(st.disjoint(p, q), st.disjoint(q, p), "⟂ symmetry");
                    prop_assert_eq!(st.complement(p, q), st.complement(q, p), "complement symmetry");
                    prop_assert_eq!(
                        st.implied_true(p, Some(q)),
                        st.known_true(p) || st.subset(q, p)
                    );
                    for k in 0..np {
                        let r = PredReg(k as u32);
                        if st.subset(p, q) && st.subset(q, r) {
                            prop_assert!(st.subset(p, r), "⊆ transitivity p{i} p{j} p{k}");
                        }
                    }
                }
            }
        }
    }

    /// The shipped relation-soundness checker accepts every analysis
    /// result the generator can produce (it must only ever fire on
    /// genuinely corrupted graphs).
    #[test]
    fn checker_accepts_generated_graphs(prog in progs()) {
        let f = build(&prog);
        let db = RelationDb::build(&f, &Cfg::new(&f));
        let mut violations = Vec::new();
        check_relation_soundness(&f, &db, &mut violations);
        prop_assert!(violations.is_empty(), "spurious violations: {violations:?}");
    }

    /// Dual U/U̅ defines under a true guard partition the guard: the
    /// state must prove complementarity, and a concrete run must agree.
    #[test]
    fn dual_defines_prove_complement(cmp in any::<bool>()) {
        let mut b = FuncBuilder::new("dual");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U), (q, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(None);
        let f = b.finish();
        let flow = forward(&f, &Cfg::new(&f), &RelAnalysis);
        let mut st = flow.entry[f.entry().index()].clone().unwrap();
        RelAnalysis.transfer(&f.blocks[f.entry().index()].insts[0], &mut st);
        prop_assert!(st.disjoint(p, q));
        prop_assert!(st.complement(p, q), "unguarded dual define spans ⊤");
        let mut preds = vec![false; 2];
        exec_step(&f.blocks[f.entry().index()].insts[0], &[cmp], &mut preds);
        prop_assert!(preds[0] ^ preds[1]);
    }
}
