//! Property-based tests for the predicate-define semantics (paper
//! Table 1): random define sequences must respect the algebraic laws the
//! compiler relies on — wired-OR order independence, monotonicity of the
//! OR/AND families, complement symmetry, and nullification under a false
//! input predicate.

use hyperpred_ir::PredType;
use proptest::prelude::*;
use proptest::TestRng;

/// A random (Pin, cmp) event stream for one destination register.
struct Events;

impl Strategy for Events {
    type Value = Vec<(bool, bool)>;

    fn generate(&self, rng: &mut TestRng) -> Vec<(bool, bool)> {
        let n = (rng.next_u64() % 12) as usize;
        (0..n)
            .map(|_| (rng.next_u64() & 1 == 1, rng.next_u64() & 1 == 1))
            .collect()
    }
}

fn events() -> Events {
    Events
}

fn ty(idx: usize) -> PredType {
    PredType::ALL[idx % PredType::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// A false input predicate nullifies OR/AND defines entirely (they
    /// leave the destination untouched) and makes U-types write 0 — no
    /// type may ever *set* a predicate from a squashed define.
    #[test]
    fn false_pin_never_sets(idx in 0usize..6, cmp in any::<bool>(), old in any::<bool>()) {
        let t = ty(idx);
        let got = t.eval(false, cmp, old);
        if t.is_partial() {
            prop_assert_eq!(got, old, "{:?} must hold under Pin=0", t);
        } else {
            prop_assert!(!got, "{:?} must write 0 under Pin=0", t);
        }
    }

    /// OR-family defines only ever raise the destination; AND-family
    /// defines only ever lower it (monotone in both directions).
    #[test]
    fn or_raises_and_lowers(idx in 0usize..6, pin in any::<bool>(), cmp in any::<bool>(), old in any::<bool>()) {
        let t = ty(idx);
        let got = t.eval(pin, cmp, old);
        if t.is_or_family() {
            prop_assert!(got >= old, "{:?} cleared a set predicate", t);
        }
        if t.is_and_family() {
            prop_assert!(got <= old, "{:?} set a cleared predicate", t);
        }
    }

    /// The complement type computes the same function with the
    /// comparison sense flipped, for every input combination.
    #[test]
    fn complement_flips_sense(idx in 0usize..6, pin in any::<bool>(), cmp in any::<bool>(), old in any::<bool>()) {
        let t = ty(idx);
        prop_assert_eq!(t.eval(pin, cmp, old), t.complement().eval(pin, !cmp, old));
        prop_assert_eq!(t.complement().complement(), t);
    }

    /// Wired-OR: a sequence of OR-type defines to one register computes
    /// `old ∨ ⋁(Pinᵢ ∧ cmpᵢ)` — so the result is order-independent, which
    /// is what lets the converter's OR-tree reassociate accumulations.
    #[test]
    fn or_sequence_is_a_disjunction(seq in events(), old in any::<bool>()) {
        let folded = seq.iter().fold(old, |acc, &(pin, cmp)| PredType::Or.eval(pin, cmp, acc));
        let expect = old || seq.iter().any(|&(pin, cmp)| pin && cmp);
        prop_assert_eq!(folded, expect);
        let mut rev = seq.clone();
        rev.reverse();
        let backwards = rev.iter().fold(old, |acc, &(pin, cmp)| PredType::Or.eval(pin, cmp, acc));
        prop_assert_eq!(folded, backwards, "OR accumulation must commute");
    }

    /// Dually, a sequence of AND-type defines computes
    /// `old ∧ ⋀¬(Pinᵢ ∧ ¬cmpᵢ)` and commutes.
    #[test]
    fn and_sequence_is_a_conjunction(seq in events(), old in any::<bool>()) {
        let folded = seq.iter().fold(old, |acc, &(pin, cmp)| PredType::And.eval(pin, cmp, acc));
        let expect = old && !seq.iter().any(|&(pin, cmp)| pin && !cmp);
        prop_assert_eq!(folded, expect);
        let mut rev = seq.clone();
        rev.reverse();
        let backwards = rev.iter().fold(old, |acc, &(pin, cmp)| PredType::And.eval(pin, cmp, acc));
        prop_assert_eq!(folded, backwards, "AND accumulation must commute");
    }

    /// Every define is idempotent: re-executing the same define (same
    /// Pin, cmp) cannot change the result — re-evaluation inside an
    /// unrolled loop body is safe.
    #[test]
    fn defines_are_idempotent(idx in 0usize..6, pin in any::<bool>(), cmp in any::<bool>(), old in any::<bool>()) {
        let t = ty(idx);
        let once = t.eval(pin, cmp, old);
        prop_assert_eq!(t.eval(pin, cmp, once), once);
    }

    /// A dual define with opposite senses under a true input predicate
    /// partitions it: exactly one of the U/U̅ pair ends up true. This is
    /// the invariant the semantic checker's partition facts rest on.
    #[test]
    fn opposite_u_defines_partition(cmp in any::<bool>(), old_a in any::<bool>(), old_c in any::<bool>()) {
        let a = PredType::U.eval(true, cmp, old_a);
        let c = PredType::UBar.eval(true, cmp, old_c);
        prop_assert!(a ^ c, "exactly one side of a U/U̅ pair holds");
    }
}
