//! Property test: printing and parsing the IR is a fixpoint for randomly
//! built functions.

use hyperpred_ir::{parse_function, CmpOp, FuncBuilder, MemWidth, Op, Operand, PredType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_function(seed: u64) -> hyperpred_ir::Function {
    let mut r = StdRng::seed_from_u64(seed);
    let mut b = FuncBuilder::new("fuzz");
    let nparams = r.gen_range(1..4);
    let mut regs: Vec<hyperpred_ir::Reg> = (0..nparams).map(|_| b.param()).collect();
    let p = b.fresh_pred();
    let q = b.fresh_pred();
    let tail = b.block();
    let pick = |r: &mut StdRng, regs: &[hyperpred_ir::Reg]| -> Operand {
        if r.gen_bool(0.3) {
            Operand::Imm(r.gen_range(-100..100))
        } else {
            Operand::Reg(regs[r.gen_range(0..regs.len())])
        }
    };
    for _ in 0..r.gen_range(2..16) {
        match r.gen_range(0..8) {
            0 => {
                let d = b.op2(Op::Add, pick(&mut r, &regs), pick(&mut r, &regs));
                regs.push(d);
            }
            1 => {
                let d = b.op2(Op::Xor, pick(&mut r, &regs), pick(&mut r, &regs));
                regs.push(d);
            }
            2 => {
                let d = b.cmp(CmpOp::Lt, pick(&mut r, &regs), pick(&mut r, &regs));
                regs.push(d);
            }
            3 => {
                let d = b.load(MemWidth::Word, pick(&mut r, &regs), Operand::Imm(8));
                regs.push(d);
            }
            4 => {
                b.store(
                    MemWidth::Byte,
                    pick(&mut r, &regs),
                    Operand::Imm(0),
                    pick(&mut r, &regs),
                );
            }
            5 => {
                b.pred_def(
                    CmpOp::Ne,
                    &[(p, PredType::Or), (q, PredType::UBar)],
                    pick(&mut r, &regs),
                    Operand::Imm(0),
                    None,
                );
            }
            6 => {
                let d = b.mov(pick(&mut r, &regs));
                b.guard_last(q);
                regs.push(d);
            }
            _ => {
                let dst = regs[r.gen_range(0..regs.len())];
                b.cmov(dst, pick(&mut r, &regs), pick(&mut r, &regs));
            }
        }
    }
    b.br(CmpOp::Ge, pick(&mut r, &regs), Operand::Imm(0), tail);
    b.ret(Some(pick(&mut r, &regs)));
    b.switch_to(tail);
    b.ret(None);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_print_is_fixpoint(seed in any::<u64>()) {
        let f = random_function(seed);
        let text = f.to_string();
        let parsed = parse_function(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(parsed.to_string(), text);
    }
}
