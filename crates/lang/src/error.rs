//! Compilation errors with source positions.

use std::error::Error;
use std::fmt;

/// A MiniC compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at a position.
    pub fn new(line: u32, col: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for CompileError {}
