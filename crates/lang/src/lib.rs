//! MiniC: a small C-like language that compiles to the predicated IR.
//!
//! The paper evaluates C programs (SPEC-92 plus Unix utilities) compiled by
//! the IMPACT compiler. This crate is the workspace's substitute frontend:
//! a deliberately small C dialect that is nevertheless rich enough to
//! express the paper's benchmark kernels — scalar `int`/`float`/`char`
//! variables, global and local arrays, functions with recursion,
//! `if`/`while`/`for`/`break`/`continue`, short-circuit `&&`/`||` (which
//! lower to the *branchy* control flow that if-conversion later removes),
//! and the usual C operators.
//!
//! # Grammar sketch
//!
//! ```text
//! program := (global | func)*
//! global  := type ident ("[" int "]")? ("=" init)? ";"
//! func    := type ident "(" params? ")" block
//! stmt    := if | while | for | return | break | continue | block
//!          | decl ";" | expr ";" | ";"
//! expr    := assignment with ?:, ||, &&, |, ^, &, ==/!=, relational,
//!            shifts, additive, multiplicative, unary (- ! ~), calls,
//!            indexing
//! ```
//!
//! # Example
//!
//! ```
//! use hyperpred_lang::compile;
//!
//! let module = compile(
//!     "int main() {
//!          int i; int s;
//!          s = 0;
//!          for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) s = s + i; }
//!          return s;
//!      }",
//! )
//! .unwrap();
//! assert!(module.verify().is_ok());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::CompileError;
pub use lower::compile;

/// Name of the hidden stack-pointer parameter added to every function.
pub const SP_PARAM: &str = "__sp";
