//! Lowering from the MiniC AST to the predicated IR.
//!
//! Lowering performs semantic checking (symbol resolution, type checking)
//! and code generation in one pass. Control flow is lowered the way a
//! classic C compiler would before if-conversion: `if`/`while`/`for` and
//! short-circuit `&&`/`||` all become conditional branches, producing the
//! branchy code that superblock and hyperblock formation later transform.
//!
//! # Calling convention
//!
//! Every function receives a hidden first parameter `__sp`, the stack
//! pointer. Local arrays live in the frame `[__sp - frame_size, __sp)`;
//! callees are passed `__sp - frame_size`. Use [`entry_args`] to build the
//! argument list for the emulator.

use crate::ast::*;
use crate::error::CompileError;
use crate::parser::parse;
use hyperpred_ir::module::STACK_BASE;
use hyperpred_ir::{BlockId, CmpOp, FuncBuilder, MemWidth, Module, Op, Operand, Reg};
use std::collections::HashMap;

/// Compiles MiniC source into a linked, verified [`Module`].
///
/// # Errors
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let prog = parse(src)?;
    lower_program(&prog)
}

/// Prepends the initial stack pointer to a user argument list, matching the
/// hidden `__sp` parameter convention.
pub fn entry_args(user: &[i64]) -> Vec<i64> {
    let mut v = Vec::with_capacity(user.len() + 1);
    v.push(STACK_BASE as i64);
    v.extend_from_slice(user);
    v
}

/// Value type of a lowered expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// Integer (includes char values, which are 0..=255 in registers).
    I,
    /// Float (f64 bit pattern in a register).
    F,
    /// Base address of an array of the given element type. Only valid as a
    /// call argument or indexing base.
    Addr(Scalar),
}

#[derive(Debug, Clone, Copy)]
struct Val {
    op: Operand,
    ty: Ty,
}

#[derive(Debug, Clone, Copy)]
enum Local {
    Scalar { ty: Scalar, reg: Reg },
    Array { ty: Scalar, offset: u64 },
    ArrayParam { ty: Scalar, reg: Reg },
}

#[derive(Debug, Clone)]
enum GSym {
    Scalar { ty: Scalar, addr: u64 },
    Array { ty: Scalar, addr: u64 },
}

#[derive(Debug, Clone)]
struct FnSig {
    ret: Type,
    params: Vec<Type>,
}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError::new(line, 0, msg))
}

/// Lowers a parsed [`Program`].
///
/// # Errors
/// Returns the first semantic error.
pub fn lower_program(prog: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut gsyms: HashMap<String, GSym> = HashMap::new();
    for g in &prog.globals {
        if gsyms.contains_key(&g.name) {
            return err(g.line, format!("duplicate global {}", g.name));
        }
        let Some(size) = g.len.unwrap_or(1).checked_mul(g.ty.size()) else {
            return err(g.line, format!("global {} is too large", g.name));
        };
        if (g.init.len() as u64) > size {
            return err(g.line, format!("initializer too long for {}", g.name));
        }
        let Some(addr) = module.try_add_global(g.name.clone(), size, g.init.clone()) else {
            return err(
                g.line,
                format!(
                    "global {} of {size} bytes overflows the data segment",
                    g.name
                ),
            );
        };
        let sym = if g.len.is_some() {
            GSym::Array { ty: g.ty, addr }
        } else {
            GSym::Scalar { ty: g.ty, addr }
        };
        gsyms.insert(g.name.clone(), sym);
    }
    let mut sigs: HashMap<String, FnSig> = HashMap::new();
    for f in &prog.funcs {
        if sigs.contains_key(&f.name) || gsyms.contains_key(&f.name) {
            return err(f.line, format!("duplicate definition of {}", f.name));
        }
        sigs.insert(
            f.name.clone(),
            FnSig {
                ret: f.ret,
                params: f.params.iter().map(|(t, _)| *t).collect(),
            },
        );
    }
    for f in &prog.funcs {
        let lowered = FnLower::new(f, &gsyms, &sigs)?.lower(f)?;
        module.push(lowered);
    }
    module
        .link()
        .map_err(|name| CompileError::new(0, 0, format!("call to undefined function {name}")))?;
    module
        .verify()
        .map_err(|e| CompileError::new(0, 0, format!("internal lowering error: {e}")))?;
    Ok(module)
}

struct FnLower<'a> {
    b: FuncBuilder,
    gsyms: &'a HashMap<String, GSym>,
    sigs: &'a HashMap<String, FnSig>,
    scopes: Vec<HashMap<String, Local>>,
    ret: Type,
    /// Frame pointer (`__sp - frame_size`); equals `__sp` for leaf frames
    /// without arrays.
    fp: Operand,
    /// Byte offset of the next array slot, assigned during the pre-scan.
    array_offsets: Vec<u64>,
    array_next: usize,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
}

fn collect_arrays(stmts: &[Stmt], sizes: &mut Vec<u64>) {
    for s in stmts {
        match s {
            Stmt::Decl {
                ty, len: Some(n), ..
            } => sizes.push(
                n.checked_mul(ty.size())
                    .and_then(|b| b.checked_add(7))
                    .map_or(u64::MAX, |b| b & !7),
            ),
            Stmt::If(_, a, b) => {
                collect_arrays(std::slice::from_ref(a), sizes);
                if let Some(b) = b {
                    collect_arrays(std::slice::from_ref(b), sizes);
                }
            }
            Stmt::While(_, body) | Stmt::For(_, _, _, body) => {
                collect_arrays(std::slice::from_ref(body), sizes)
            }
            Stmt::Block(inner) => collect_arrays(inner, sizes),
            _ => {}
        }
    }
}

impl<'a> FnLower<'a> {
    fn new(
        f: &FuncDecl,
        gsyms: &'a HashMap<String, GSym>,
        sigs: &'a HashMap<String, FnSig>,
    ) -> Result<FnLower<'a>, CompileError> {
        let mut b = FuncBuilder::new(f.name.clone());
        let sp = b.param();
        let mut scope = HashMap::new();
        for (ty, name) in &f.params {
            if scope.contains_key(name) {
                return err(f.line, format!("duplicate parameter {name}"));
            }
            let reg = b.param();
            let local = match ty {
                Type::Scalar(s) => Local::Scalar { ty: *s, reg },
                Type::Array(s, _) => Local::ArrayParam { ty: *s, reg },
                Type::Void => unreachable!("parser rejects void params"),
            };
            scope.insert(name.clone(), local);
        }
        let mut sizes = Vec::new();
        collect_arrays(&f.body, &mut sizes);
        let frame_size: u64 = sizes.iter().fold(0u64, |a, s| a.saturating_add(*s));
        if frame_size >= hyperpred_ir::module::MEM_SIZE / 2 {
            return err(
                f.line,
                format!("stack frame of {} needs {frame_size} bytes", f.name),
            );
        }
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let fp = if frame_size > 0 {
            Operand::Reg(b.sub(sp.into(), Operand::Imm(frame_size as i64)))
        } else {
            Operand::Reg(sp)
        };
        Ok(FnLower {
            b,
            gsyms,
            sigs,
            scopes: vec![scope],
            ret: f.ret,
            fp,
            array_offsets: offsets,
            array_next: 0,
            loops: Vec::new(),
        })
    }

    fn lower(mut self, f: &FuncDecl) -> Result<hyperpred_ir::Function, CompileError> {
        for s in &f.body {
            self.stmt(s)?;
        }
        // Implicit return at the end of the body.
        if !self.b.func().block(self.b.current()).ends_explicitly() {
            match self.ret {
                Type::Void => self.b.ret(None),
                _ => self.b.ret(Some(Operand::Imm(0))),
            }
        }
        let mut func = self.b.finish();
        // Dangling blocks created for joins that are never reached still
        // need terminators for the verifier; they are unreachable.
        for &bid in &func.layout.clone() {
            if !func.block(bid).ends_explicitly() && func.layout_next(bid).is_none() {
                let ret = func.make_inst(Op::Ret);
                func.block_mut(bid).insts.push(ret);
            }
        }
        func.remove_unreachable();
        Ok(func)
    }

    fn lookup(&self, name: &str) -> Option<Local> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Some(*l);
            }
        }
        None
    }

    fn declare(&mut self, line: u32, name: &str, local: Local) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack nonempty");
        if scope.contains_key(name) {
            return err(line, format!("duplicate declaration of {name}"));
        }
        scope.insert(name.to_string(), local);
        Ok(())
    }

    // ---- type helpers -------------------------------------------------

    fn coerce_int(&mut self, v: Val, line: u32) -> Result<Operand, CompileError> {
        match v.ty {
            Ty::I => Ok(v.op),
            Ty::F => {
                let dst = self.b.fresh();
                self.b.emit_with(Op::FToI, |i| {
                    i.dst = Some(dst);
                    i.srcs = vec![v.op];
                });
                Ok(dst.into())
            }
            Ty::Addr(_) => err(line, "array used as a value"),
        }
    }

    fn coerce_float(&mut self, v: Val, line: u32) -> Result<Operand, CompileError> {
        match v.ty {
            Ty::F => Ok(v.op),
            Ty::I => {
                if let Operand::Imm(k) = v.op {
                    return Ok(Operand::fimm(k as f64));
                }
                let dst = self.b.fresh();
                self.b.emit_with(Op::IToF, |i| {
                    i.dst = Some(dst);
                    i.srcs = vec![v.op];
                });
                Ok(dst.into())
            }
            Ty::Addr(_) => err(line, "array used as a value"),
        }
    }

    fn coerce_to(&mut self, v: Val, ty: Scalar, line: u32) -> Result<Operand, CompileError> {
        match ty {
            Scalar::Float => self.coerce_float(v, line),
            Scalar::Int => self.coerce_int(v, line),
            Scalar::Char => {
                let i = self.coerce_int(v, line)?;
                // Char registers hold 0..=255; mask on conversion.
                Ok(self.b.op2(Op::And, i, Operand::Imm(0xFF)).into())
            }
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<Val, CompileError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Val {
                op: Operand::Imm(*v),
                ty: Ty::I,
            }),
            ExprKind::Float(v) => Ok(Val {
                op: Operand::fimm(*v),
                ty: Ty::F,
            }),
            ExprKind::Ident(name) => self.ident(name, e.line),
            ExprKind::Index(name, idx) => {
                let (base, scalar) = self.array_base(name, e.line)?;
                let addr_off = self.element_offset(idx, scalar)?;
                let w = width_of(scalar);
                let dst = self.b.load(w, base, addr_off);
                Ok(Val {
                    op: dst.into(),
                    ty: reg_ty(scalar),
                })
            }
            ExprKind::Call(name, args) => self.call(name, args, e.line),
            ExprKind::Unary(op, inner) => self.unary(*op, inner, e.line),
            ExprKind::Binary(op, a, bx) => {
                if op.is_logical() {
                    return self.logical_value(e);
                }
                self.binary(*op, a, bx, e.line)
            }
            ExprKind::Ternary(c, a, bx) => {
                let tb = self.b.block();
                let fb = self.b.block();
                let join = self.b.block();
                let out = self.b.fresh();
                self.cond(c, tb, fb)?;
                self.b.switch_to(tb);
                let va = self.expr(a)?;
                let vb_probe_ty = va.ty; // unify on the then-branch type
                let a_op = match vb_probe_ty {
                    Ty::F => self.coerce_float(va, e.line)?,
                    _ => self.coerce_int(va, e.line)?,
                };
                self.b.mov_to(out, a_op);
                self.b.jump(join);
                self.b.switch_to(fb);
                let vb = self.expr(bx)?;
                let b_op = match vb_probe_ty {
                    Ty::F => self.coerce_float(vb, e.line)?,
                    _ => self.coerce_int(vb, e.line)?,
                };
                self.b.mov_to(out, b_op);
                self.b.jump(join);
                self.b.switch_to(join);
                Ok(Val {
                    op: out.into(),
                    ty: if vb_probe_ty == Ty::F { Ty::F } else { Ty::I },
                })
            }
            ExprKind::Assign(lv, op, rhs) => self.assign(lv, *op, rhs, e.line),
        }
    }

    fn ident(&mut self, name: &str, line: u32) -> Result<Val, CompileError> {
        if let Some(local) = self.lookup(name) {
            return Ok(match local {
                Local::Scalar { ty, reg } => Val {
                    op: reg.into(),
                    ty: reg_ty(ty),
                },
                Local::Array { ty, offset } => {
                    let addr = self.b.add(self.fp, Operand::Imm(offset as i64));
                    Val {
                        op: addr.into(),
                        ty: Ty::Addr(ty),
                    }
                }
                Local::ArrayParam { ty, reg } => Val {
                    op: reg.into(),
                    ty: Ty::Addr(ty),
                },
            });
        }
        match self.gsyms.get(name) {
            Some(GSym::Scalar { ty, addr }) => {
                let w = width_of(*ty);
                let dst = self.b.load(w, Operand::Imm(*addr as i64), Operand::Imm(0));
                Ok(Val {
                    op: dst.into(),
                    ty: reg_ty(*ty),
                })
            }
            Some(GSym::Array { ty, addr }) => Ok(Val {
                op: Operand::Imm(*addr as i64),
                ty: Ty::Addr(*ty),
            }),
            None => err(line, format!("undefined variable {name}")),
        }
    }

    /// Resolves `name` as an array, returning (base operand, element type).
    fn array_base(&mut self, name: &str, line: u32) -> Result<(Operand, Scalar), CompileError> {
        if let Some(local) = self.lookup(name) {
            return match local {
                Local::Array { ty, offset } => {
                    let addr = self.b.add(self.fp, Operand::Imm(offset as i64));
                    Ok((addr.into(), ty))
                }
                Local::ArrayParam { ty, reg } => Ok((reg.into(), ty)),
                Local::Scalar { .. } => err(line, format!("{name} is not an array")),
            };
        }
        match self.gsyms.get(name) {
            Some(GSym::Array { ty, addr }) => Ok((Operand::Imm(*addr as i64), *ty)),
            Some(GSym::Scalar { .. }) => err(line, format!("{name} is not an array")),
            None => err(line, format!("undefined variable {name}")),
        }
    }

    /// Lowers `idx * elem_size` as the byte offset operand.
    fn element_offset(&mut self, idx: &Expr, scalar: Scalar) -> Result<Operand, CompileError> {
        let line = idx.line;
        let v = self.expr(idx)?;
        let i = self.coerce_int(v, line)?;
        Ok(match scalar.size() {
            1 => i,
            8 => match i {
                Operand::Imm(k) => Operand::Imm(k * 8),
                _ => self.b.op2(Op::Shl, i, Operand::Imm(3)).into(),
            },
            _ => unreachable!(),
        })
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Val, CompileError> {
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::new(line, 0, format!("undefined function {name}")))?
            .clone();
        if args.len() != sig.params.len() {
            return err(
                line,
                format!(
                    "{name} expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        // Hidden stack pointer: callee frame starts below ours.
        let mut ops = vec![self.fp];
        for (a, pty) in args.iter().zip(&sig.params) {
            let v = self.expr(a)?;
            let op = match pty {
                Type::Scalar(s) => self.coerce_to(v, *s, a.line)?,
                Type::Array(s, _) => match v.ty {
                    Ty::Addr(have) if have == *s => v.op,
                    Ty::Addr(_) => return err(a.line, "array element type mismatch"),
                    _ => return err(a.line, "expected an array argument"),
                },
                Type::Void => unreachable!(),
            };
            ops.push(op);
        }
        let dst = self.b.call(name, ops);
        Ok(Val {
            op: dst.into(),
            ty: match sig.ret {
                Type::Scalar(Scalar::Float) => Ty::F,
                _ => Ty::I, // void results are never read (checked below)
            },
        })
    }

    fn unary(&mut self, op: UnOp, inner: &Expr, line: u32) -> Result<Val, CompileError> {
        let v = self.expr(inner)?;
        match op {
            UnOp::Neg => match v.ty {
                Ty::F => {
                    let f = self.coerce_float(v, line)?;
                    let dst = self.b.op2(Op::FSub, Operand::fimm(0.0), f);
                    Ok(Val {
                        op: dst.into(),
                        ty: Ty::F,
                    })
                }
                _ => {
                    let i = self.coerce_int(v, line)?;
                    if let Operand::Imm(k) = i {
                        return Ok(Val {
                            op: Operand::Imm(k.wrapping_neg()),
                            ty: Ty::I,
                        });
                    }
                    let dst = self.b.sub(Operand::Imm(0), i);
                    Ok(Val {
                        op: dst.into(),
                        ty: Ty::I,
                    })
                }
            },
            UnOp::Not => {
                let i = match v.ty {
                    Ty::F => {
                        let f = self.coerce_float(v, line)?;
                        self.b
                            .op2(Op::FCmp(CmpOp::Eq), f, Operand::fimm(0.0))
                            .into()
                    }
                    _ => {
                        let i = self.coerce_int(v, line)?;
                        self.b.cmp(CmpOp::Eq, i, Operand::Imm(0)).into()
                    }
                };
                Ok(Val { op: i, ty: Ty::I })
            }
            UnOp::BitNot => {
                let i = self.coerce_int(v, line)?;
                let dst = self.b.op2(Op::Xor, i, Operand::Imm(-1));
                Ok(Val {
                    op: dst.into(),
                    ty: Ty::I,
                })
            }
        }
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr, line: u32) -> Result<Val, CompileError> {
        let va = self.expr(a)?;
        let vb = self.expr(b)?;
        let float = va.ty == Ty::F || vb.ty == Ty::F;
        if float {
            let fa = self.coerce_float(va, line)?;
            let fb = self.coerce_float(vb, line)?;
            let (irop, ty) = match op {
                BinOp::Add => (Op::FAdd, Ty::F),
                BinOp::Sub => (Op::FSub, Ty::F),
                BinOp::Mul => (Op::FMul, Ty::F),
                BinOp::Div => (Op::FDiv, Ty::F),
                BinOp::Lt => (Op::FCmp(CmpOp::Lt), Ty::I),
                BinOp::Le => (Op::FCmp(CmpOp::Le), Ty::I),
                BinOp::Gt => (Op::FCmp(CmpOp::Gt), Ty::I),
                BinOp::Ge => (Op::FCmp(CmpOp::Ge), Ty::I),
                BinOp::Eq => (Op::FCmp(CmpOp::Eq), Ty::I),
                BinOp::Ne => (Op::FCmp(CmpOp::Ne), Ty::I),
                _ => return err(line, "operator requires integer operands"),
            };
            let dst = self.b.op2(irop, fa, fb);
            return Ok(Val { op: dst.into(), ty });
        }
        let ia = self.coerce_int(va, line)?;
        let ib = self.coerce_int(vb, line)?;
        let irop = match op {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            BinOp::Rem => Op::Rem,
            BinOp::And => Op::And,
            BinOp::Or => Op::Or,
            BinOp::Xor => Op::Xor,
            BinOp::Shl => Op::Shl,
            BinOp::Shr => Op::Sra,
            BinOp::Lt => Op::Cmp(CmpOp::Lt),
            BinOp::Le => Op::Cmp(CmpOp::Le),
            BinOp::Gt => Op::Cmp(CmpOp::Gt),
            BinOp::Ge => Op::Cmp(CmpOp::Ge),
            BinOp::Eq => Op::Cmp(CmpOp::Eq),
            BinOp::Ne => Op::Cmp(CmpOp::Ne),
            BinOp::LAnd | BinOp::LOr => unreachable!("handled by logical_value"),
        };
        let dst = self.b.op2(irop, ia, ib);
        Ok(Val {
            op: dst.into(),
            ty: Ty::I,
        })
    }

    /// Materializes a short-circuit `&&`/`||` as a 0/1 value using branches.
    fn logical_value(&mut self, e: &Expr) -> Result<Val, CompileError> {
        let tb = self.b.block();
        let fb = self.b.block();
        let join = self.b.block();
        let out = self.b.fresh();
        self.cond(e, tb, fb)?;
        self.b.switch_to(tb);
        self.b.mov_to(out, Operand::Imm(1));
        self.b.jump(join);
        self.b.switch_to(fb);
        self.b.mov_to(out, Operand::Imm(0));
        self.b.jump(join);
        self.b.switch_to(join);
        Ok(Val {
            op: out.into(),
            ty: Ty::I,
        })
    }

    fn assign(
        &mut self,
        lv: &LValue,
        op: Option<BinOp>,
        rhs: &Expr,
        line: u32,
    ) -> Result<Val, CompileError> {
        // Compose compound assignment as read-modify-write.
        let rhs_val = if let Some(binop) = op {
            let cur = Expr {
                kind: match &lv.index {
                    None => ExprKind::Ident(lv.name.clone()),
                    Some(i) => ExprKind::Index(lv.name.clone(), i.clone()),
                },
                line,
            };
            let combined = Expr {
                kind: ExprKind::Binary(binop, Box::new(cur), Box::new(rhs.clone())),
                line,
            };
            self.expr(&combined)?
        } else {
            self.expr(rhs)?
        };

        match &lv.index {
            None => {
                // Scalar variable or global scalar.
                if let Some(local) = self.lookup(&lv.name) {
                    match local {
                        Local::Scalar { ty, reg } => {
                            let v = self.coerce_to(rhs_val, ty, line)?;
                            self.b.mov_to(reg, v);
                            return Ok(Val {
                                op: reg.into(),
                                ty: reg_ty(ty),
                            });
                        }
                        _ => return err(line, format!("cannot assign to array {}", lv.name)),
                    }
                }
                match self.gsyms.get(&lv.name) {
                    Some(GSym::Scalar { ty, addr }) => {
                        let (ty, addr) = (*ty, *addr);
                        let v = self.coerce_to(rhs_val, ty, line)?;
                        let w = width_of(ty);
                        self.b
                            .store(w, Operand::Imm(addr as i64), Operand::Imm(0), v);
                        Ok(Val {
                            op: v,
                            ty: reg_ty(ty),
                        })
                    }
                    Some(GSym::Array { .. }) => {
                        err(line, format!("cannot assign to array {}", lv.name))
                    }
                    None => err(line, format!("undefined variable {}", lv.name)),
                }
            }
            Some(idx) => {
                let (base, scalar) = self.array_base(&lv.name, line)?;
                let off = self.element_offset(idx, scalar)?;
                let v = match scalar {
                    Scalar::Float => self.coerce_float(rhs_val, line)?,
                    // Byte stores truncate; no mask needed.
                    Scalar::Char | Scalar::Int => self.coerce_int(rhs_val, line)?,
                };
                self.b.store(width_of(scalar), base, off, v);
                Ok(Val {
                    op: v,
                    ty: reg_ty(scalar),
                })
            }
        }
    }

    /// Lowers `e` as control flow: branch to `tb` when true, `fb` when
    /// false. This is where `&&`/`||`/`!` become branch chains.
    fn cond(&mut self, e: &Expr, tb: BlockId, fb: BlockId) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Binary(BinOp::LAnd, a, b) => {
                let mid = self.b.block();
                self.cond(a, mid, fb)?;
                self.b.switch_to(mid);
                self.cond(b, tb, fb)
            }
            ExprKind::Binary(BinOp::LOr, a, b) => {
                let mid = self.b.block();
                self.cond(a, tb, mid)?;
                self.b.switch_to(mid);
                self.cond(b, tb, fb)
            }
            ExprKind::Unary(UnOp::Not, inner) => self.cond(inner, fb, tb),
            ExprKind::Binary(op, a, b) if op.is_comparison() => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                let cmp = match op {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    _ => unreachable!(),
                };
                if va.ty == Ty::F || vb.ty == Ty::F {
                    let fa = self.coerce_float(va, e.line)?;
                    let fb2 = self.coerce_float(vb, e.line)?;
                    let c = self.b.op2(Op::FCmp(cmp), fa, fb2);
                    self.b.br(CmpOp::Ne, c.into(), Operand::Imm(0), tb);
                } else {
                    let ia = self.coerce_int(va, e.line)?;
                    let ib = self.coerce_int(vb, e.line)?;
                    self.b.br(cmp, ia, ib, tb);
                }
                self.b.jump(fb);
                Ok(())
            }
            _ => {
                let v = self.expr(e)?;
                match v.ty {
                    Ty::F => {
                        let f = self.coerce_float(v, e.line)?;
                        let c = self.b.op2(Op::FCmp(CmpOp::Ne), f, Operand::fimm(0.0));
                        self.b.br(CmpOp::Ne, c.into(), Operand::Imm(0), tb);
                    }
                    Ty::I => {
                        let i = self.coerce_int(v, e.line)?;
                        self.b.br(CmpOp::Ne, i, Operand::Imm(0), tb);
                    }
                    Ty::Addr(_) => return err(e.line, "array used as a condition"),
                }
                self.b.jump(fb);
                Ok(())
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Block(inner) => {
                self.scopes.push(HashMap::new());
                for s in inner {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl {
                ty,
                name,
                len,
                init,
                line,
            } => {
                match len {
                    Some(_) => {
                        if init.is_some() {
                            return err(*line, "local arrays cannot have initializers");
                        }
                        let offset = self.array_offsets[self.array_next];
                        self.array_next += 1;
                        self.declare(*line, name, Local::Array { ty: *ty, offset })?;
                    }
                    None => {
                        let reg = self.b.fresh();
                        let v = match init {
                            Some(e) => {
                                let val = self.expr(e)?;
                                self.coerce_to(val, *ty, *line)?
                            }
                            None => match ty {
                                Scalar::Float => Operand::fimm(0.0),
                                _ => Operand::Imm(0),
                            },
                        };
                        self.b.mov_to(reg, v);
                        self.declare(*line, name, Local::Scalar { ty: *ty, reg })?;
                    }
                }
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let tb = self.b.block();
                let fb = self.b.block();
                let join = if els.is_some() { self.b.block() } else { fb };
                self.cond(cond, tb, fb)?;
                self.b.switch_to(tb);
                self.stmt(then)?;
                if !self.b.cur_block().ends_explicitly() {
                    self.b.jump(join);
                }
                if let Some(els) = els {
                    self.b.switch_to(fb);
                    self.stmt(els)?;
                    if !self.b.cur_block().ends_explicitly() {
                        self.b.jump(join);
                    }
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let header = self.b.block();
                let body_b = self.b.block();
                let exit = self.b.block();
                self.b.jump(header);
                self.b.switch_to(header);
                self.cond(cond, body_b, exit)?;
                self.b.switch_to(body_b);
                self.loops.push((header, exit));
                self.stmt(body)?;
                self.loops.pop();
                if !self.b.cur_block().ends_explicitly() {
                    self.b.jump(header);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.expr(init)?;
                }
                let header = self.b.block();
                let body_b = self.b.block();
                let step_b = self.b.block();
                let exit = self.b.block();
                self.b.jump(header);
                self.b.switch_to(header);
                match cond {
                    Some(c) => self.cond(c, body_b, exit)?,
                    None => self.b.jump(body_b),
                }
                self.b.switch_to(body_b);
                self.loops.push((step_b, exit));
                self.stmt(body)?;
                self.loops.pop();
                if !self.b.cur_block().ends_explicitly() {
                    self.b.jump(step_b);
                }
                self.b.switch_to(step_b);
                if let Some(step) = step {
                    self.expr(step)?;
                }
                self.b.jump(header);
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::Return(v, line) => {
                match (self.ret, v) {
                    (Type::Void, None) => self.b.ret(None),
                    (Type::Void, Some(_)) => return err(*line, "void function returns a value"),
                    (Type::Scalar(s), Some(e)) => {
                        let val = self.expr(e)?;
                        let op = self.coerce_to(val, s, *line)?;
                        self.b.ret(Some(op));
                    }
                    (Type::Scalar(_), None) => {
                        return err(*line, "non-void function returns no value")
                    }
                    (Type::Array(..), _) => unreachable!(),
                }
                // Code after return in the same statement list is dead;
                // give it a fresh (unreachable) block.
                let dead = self.b.block();
                self.b.switch_to(dead);
                Ok(())
            }
            Stmt::Break(line) => {
                let Some(&(_, exit)) = self.loops.last() else {
                    return err(*line, "break outside a loop");
                };
                self.b.jump(exit);
                let dead = self.b.block();
                self.b.switch_to(dead);
                Ok(())
            }
            Stmt::Continue(line) => {
                let Some(&(cont, _)) = self.loops.last() else {
                    return err(*line, "continue outside a loop");
                };
                self.b.jump(cont);
                let dead = self.b.block();
                self.b.switch_to(dead);
                Ok(())
            }
        }
    }
}

fn width_of(s: Scalar) -> MemWidth {
    match s {
        Scalar::Char => MemWidth::Byte,
        _ => MemWidth::Word,
    }
}

fn reg_ty(s: Scalar) -> Ty {
    match s {
        Scalar::Float => Ty::F,
        _ => Ty::I,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_size_ignores_unused_scalars() {
        let m = compile("int main() { int a; a = 1; return a; }").unwrap();
        assert!(m.verify().is_ok());
    }

    #[test]
    fn duplicate_globals_rejected() {
        assert!(compile("int x; int x; int main() { return 0; }").is_err());
    }

    #[test]
    fn undefined_variable_rejected() {
        let e = compile("int main() { return y; }").unwrap_err();
        assert!(e.message.contains("undefined variable"), "{e}");
    }

    #[test]
    fn undefined_function_rejected() {
        let e = compile("int main() { return f(); }").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = compile("int f(int a) { return a; } int main() { return f(); }").unwrap_err();
        assert!(e.message.contains("arguments"), "{e}");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile("int main() { break; return 0; }").unwrap_err();
        assert!(e.message.contains("break"), "{e}");
    }

    #[test]
    fn array_as_value_rejected() {
        let e = compile("int a[4]; int main() { return a + 1; }").unwrap_err();
        assert!(e.message.contains("array"), "{e}");
    }

    #[test]
    fn void_return_value_rejected() {
        let e = compile("void f() { return 1; } int main() { return 0; }").unwrap_err();
        assert!(e.message.contains("void"), "{e}");
    }

    #[test]
    fn bitwise_on_float_rejected() {
        let e = compile("int main() { float f; f = 1.0; return f & 1; }").unwrap_err();
        assert!(e.message.contains("integer"), "{e}");
    }

    #[test]
    fn produces_basic_blocks() {
        let m = compile(
            "int main() {
                int i; int s; s = 0;
                for (i = 0; i < 8; i += 1) if (i % 2 == 0 && i != 4) s += i;
                return s;
            }",
        )
        .unwrap();
        for f in &m.funcs {
            assert!(f.is_basic(), "lowered code must be basic blocks:\n{f}");
        }
    }
}
