//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{lex, Tok, Token};

/// Parses MiniC source into a [`Program`].
///
/// # Errors
/// Returns the first lexical or syntactic error.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().tok, Tok::Punct(q) if *q == p)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(q) if q == s)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        let t = self.peek();
        Err(CompileError::new(t.line, t.col, msg))
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<Token, CompileError> {
        if self.at_punct(p) {
            Ok(self.bump())
        } else {
            self.err(format!("expected '{p}', found {}", self.peek().tok))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), CompileError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok((s, t.line))
            }
            _ => self.err(format!("expected identifier, found {}", t.tok)),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while !matches!(self.peek().tok, Tok::Eof) {
            let ret = self.parse_type()?;
            let (name, line) = self.expect_ident()?;
            if self.at_punct("(") {
                prog.funcs.push(self.func(ret, name, line)?);
            } else {
                let scalar = match ret {
                    Type::Scalar(s) => s,
                    _ => return self.err("global variables cannot be void"),
                };
                prog.globals.push(self.global(scalar, name, line)?);
            }
        }
        Ok(prog)
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let t = self.peek().clone();
        let ty = match &t.tok {
            Tok::Ident(s) if s == "int" => Type::Scalar(Scalar::Int),
            Tok::Ident(s) if s == "float" => Type::Scalar(Scalar::Float),
            Tok::Ident(s) if s == "char" => Type::Scalar(Scalar::Char),
            Tok::Ident(s) if s == "void" => Type::Void,
            other => return self.err(format!("expected a type, found {other}")),
        };
        self.bump();
        Ok(ty)
    }

    fn global(&mut self, ty: Scalar, name: String, line: u32) -> Result<GlobalDecl, CompileError> {
        let mut len = None;
        if self.at_punct("[") {
            self.bump();
            let t = self.bump();
            match t.tok {
                Tok::Int(v) if v > 0 => len = Some(v as u64),
                _ => return Err(CompileError::new(t.line, t.col, "expected array length")),
            }
            self.expect_punct("]")?;
        }
        let mut init = Vec::new();
        if self.at_punct("=") {
            self.bump();
            init = self.global_init(ty, &mut len)?;
        }
        self.expect_punct(";")?;
        Ok(GlobalDecl {
            ty,
            name,
            len,
            init,
            line,
        })
    }

    fn global_init(&mut self, ty: Scalar, len: &mut Option<u64>) -> Result<Vec<u8>, CompileError> {
        let encode = |v: &Tok, neg: bool, line: u32, col: u32| -> Result<Vec<u8>, CompileError> {
            let sign = if neg { -1.0 } else { 1.0 };
            match (ty, v) {
                (Scalar::Char, Tok::Int(x)) => {
                    Ok(vec![if neg { x.wrapping_neg() } else { *x } as u8])
                }
                (Scalar::Int, Tok::Int(x)) => Ok(if neg { x.wrapping_neg() } else { *x }
                    .to_le_bytes()
                    .to_vec()),
                (Scalar::Float, Tok::Float(x)) => Ok((sign * x).to_bits().to_le_bytes().to_vec()),
                (Scalar::Float, Tok::Int(x)) => {
                    Ok((sign * *x as f64).to_bits().to_le_bytes().to_vec())
                }
                _ => Err(CompileError::new(line, col, "initializer type mismatch")),
            }
        };
        let t = self.peek().clone();
        match &t.tok {
            Tok::Str(s) => {
                if ty != Scalar::Char {
                    return self.err("string initializer requires char array");
                }
                self.bump();
                let mut bytes = s.clone();
                bytes.push(0);
                if len.is_none() {
                    *len = Some(bytes.len() as u64);
                }
                Ok(bytes)
            }
            Tok::Punct("{") => {
                self.bump();
                let mut bytes = Vec::new();
                let mut count = 0u64;
                loop {
                    let neg = if self.at_punct("-") {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let t = self.bump();
                    bytes.extend(encode(&t.tok, neg, t.line, t.col)?);
                    count += 1;
                    if self.at_punct(",") {
                        self.bump();
                        continue;
                    }
                    break;
                }
                self.expect_punct("}")?;
                if len.is_none() {
                    *len = Some(count);
                }
                Ok(bytes)
            }
            _ => {
                if len.is_some() {
                    return self.err("array initializer must be a string or {list}");
                }
                let neg = if self.at_punct("-") {
                    self.bump();
                    true
                } else {
                    false
                };
                let t = self.bump();
                encode(&t.tok, neg, t.line, t.col)
            }
        }
    }

    fn func(&mut self, ret: Type, name: String, line: u32) -> Result<FuncDecl, CompileError> {
        if matches!(ret, Type::Array(..)) {
            return self.err("functions cannot return arrays");
        }
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let ty = self.parse_type()?;
                let scalar = match ty {
                    Type::Scalar(s) => s,
                    _ => return self.err("parameters cannot be void"),
                };
                let (pname, _) = self.expect_ident()?;
                let pty = if self.at_punct("[") {
                    self.bump();
                    self.expect_punct("]")?;
                    Type::Array(scalar, None)
                } else {
                    Type::Scalar(scalar)
                };
                params.push((pty, pname));
                if self.at_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(FuncDecl {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().tok, Tok::Eof) {
                return self.err("unexpected end of input inside block");
            }
            out.push(self.stmt()?);
        }
        self.bump();
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Punct("{") => Ok(Stmt::Block(self.block()?)),
            Tok::Punct(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Ident(s) if s == "if" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then = Box::new(self.stmt()?);
                let els = if self.at_ident("else") {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Ident(s) if s == "while" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Tok::Ident(s) if s == "for" => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.at_punct(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                let cond = if self.at_punct(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                let step = if self.at_punct(")") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(")")?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
            }
            Tok::Ident(s) if s == "return" => {
                self.bump();
                let v = if self.at_punct(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(";")?;
                Ok(Stmt::Return(v, t.line))
            }
            Tok::Ident(s) if s == "break" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break(t.line))
            }
            Tok::Ident(s) if s == "continue" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue(t.line))
            }
            Tok::Ident(s) if s == "int" || s == "float" || s == "char" => {
                let ty = match s.as_str() {
                    "int" => Scalar::Int,
                    "float" => Scalar::Float,
                    _ => Scalar::Char,
                };
                self.bump();
                let (name, line) = self.expect_ident()?;
                let mut len = None;
                if self.at_punct("[") {
                    self.bump();
                    let t = self.bump();
                    match t.tok {
                        Tok::Int(v) if v > 0 => len = Some(v as u64),
                        _ => return Err(CompileError::new(t.line, t.col, "expected array length")),
                    }
                    self.expect_punct("]")?;
                }
                let init = if self.at_punct("=") {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    len,
                    init,
                    line,
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assign()
    }

    fn assign(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary()?;
        let op = match &self.peek().tok {
            Tok::Punct("=") => Some(None),
            Tok::Punct("+=") => Some(Some(BinOp::Add)),
            Tok::Punct("-=") => Some(Some(BinOp::Sub)),
            Tok::Punct("*=") => Some(Some(BinOp::Mul)),
            Tok::Punct("/=") => Some(Some(BinOp::Div)),
            Tok::Punct("%=") => Some(Some(BinOp::Rem)),
            Tok::Punct("&=") => Some(Some(BinOp::And)),
            Tok::Punct("|=") => Some(Some(BinOp::Or)),
            Tok::Punct("^=") => Some(Some(BinOp::Xor)),
            Tok::Punct("<<=") => Some(Some(BinOp::Shl)),
            Tok::Punct(">>=") => Some(Some(BinOp::Shr)),
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        let line = self.peek().line;
        let lv = match lhs.kind {
            ExprKind::Ident(name) => LValue { name, index: None },
            ExprKind::Index(name, idx) => LValue {
                name,
                index: Some(idx),
            },
            _ => return self.err("left side of assignment is not assignable"),
        };
        self.bump();
        let rhs = self.assign()?;
        Ok(Expr {
            kind: ExprKind::Assign(lv, op, Box::new(rhs)),
            line,
        })
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.at_punct("?") {
            let line = self.peek().line;
            self.bump();
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.ternary()?;
            return Ok(Expr {
                kind: ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
                line,
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing over binary operators; `min_prec` 0 is `||`.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match &self.peek().tok {
                Tok::Punct("||") => (BinOp::LOr, 0),
                Tok::Punct("&&") => (BinOp::LAnd, 1),
                Tok::Punct("|") => (BinOp::Or, 2),
                Tok::Punct("^") => (BinOp::Xor, 3),
                Tok::Punct("&") => (BinOp::And, 4),
                Tok::Punct("==") => (BinOp::Eq, 5),
                Tok::Punct("!=") => (BinOp::Ne, 5),
                Tok::Punct("<") => (BinOp::Lt, 6),
                Tok::Punct("<=") => (BinOp::Le, 6),
                Tok::Punct(">") => (BinOp::Gt, 6),
                Tok::Punct(">=") => (BinOp::Ge, 6),
                Tok::Punct("<<") => (BinOp::Shl, 7),
                Tok::Punct(">>") => (BinOp::Shr, 7),
                Tok::Punct("+") => (BinOp::Add, 8),
                Tok::Punct("-") => (BinOp::Sub, 8),
                Tok::Punct("*") => (BinOp::Mul, 9),
                Tok::Punct("/") => (BinOp::Div, 9),
                Tok::Punct("%") => (BinOp::Rem, 9),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.peek().line;
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek().clone();
        let op = match &t.tok {
            Tok::Punct("-") => Some(UnOp::Neg),
            Tok::Punct("!") => Some(UnOp::Not),
            Tok::Punct("~") => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(e)),
                line: t.line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    line: t.line,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Float(v),
                    line: t.line,
                })
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) if !is_keyword(&name) => {
                self.bump();
                if self.at_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line: t.line,
                    })
                } else if self.at_punct("[") {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr {
                        kind: ExprKind::Index(name, Box::new(idx)),
                        line: t.line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Ident(name),
                        line: t.line,
                    })
                }
            }
            _ => self.err(format!("expected expression, found {}", t.tok)),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "int"
            | "float"
            | "char"
            | "void"
            | "if"
            | "else"
            | "while"
            | "for"
            | "return"
            | "break"
            | "continue"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_global() {
        let p = parse(
            "int n = 5;
             char msg[8] = \"hi\";
             int main() { return n; }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].init, 5i64.to_le_bytes().to_vec());
        assert_eq!(p.globals[1].init, b"hi\0".to_vec());
        assert_eq!(p.globals[1].len, Some(8));
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn string_init_sets_length() {
        let p = parse("char s[] = \"abc\"; int main() { return 0; }");
        // "char s[]" at global scope is not valid (length required unless
        // inferred from init) — our grammar requires [len] or = "str".
        // Without brackets it's a scalar char with string init → error.
        assert!(p.is_err());
        let p = parse("char s[4] = \"abc\"; int main() { return 0; }").unwrap();
        assert_eq!(p.globals[0].init.len(), 4);
    }

    #[test]
    fn precedence() {
        let p = parse("int main() { return 1 + 2 * 3 < 4 && 5 == 5; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!()
        };
        // top node must be &&
        match &e.kind {
            ExprKind::Binary(BinOp::LAnd, l, _) => match &l.kind {
                ExprKind::Binary(BinOp::Lt, a, _) => match &a.kind {
                    ExprKind::Binary(BinOp::Add, _, m) => {
                        assert!(matches!(m.kind, ExprKind::Binary(BinOp::Mul, _, _)));
                    }
                    _ => panic!("expected +"),
                },
                _ => panic!("expected <"),
            },
            _ => panic!("expected &&"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse("int main() { int a; int b; a = b = 1; return a; }").unwrap();
        let Stmt::Expr(e) = &p.funcs[0].body[2] else {
            panic!()
        };
        match &e.kind {
            ExprKind::Assign(lv, None, rhs) => {
                assert_eq!(lv.name, "a");
                assert!(matches!(rhs.kind, ExprKind::Assign(..)));
            }
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn compound_assign_to_array_element() {
        let p = parse("int a[4]; int main() { a[1] += 2; return 0; }").unwrap();
        let Stmt::Expr(e) = &p.funcs[0].body[0] else {
            panic!()
        };
        match &e.kind {
            ExprKind::Assign(lv, Some(BinOp::Add), _) => {
                assert_eq!(lv.name, "a");
                assert!(lv.index.is_some());
            }
            _ => panic!("expected compound assignment"),
        }
    }

    #[test]
    fn control_flow_statements() {
        let p = parse(
            "int main() {
                int i;
                for (i = 0; i < 10; i += 1) {
                    if (i == 5) break; else continue;
                }
                while (i > 0) i -= 1;
                return i;
            }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].body.len(), 4);
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        assert!(parse("int main() { 1 = 2; return 0; }").is_err());
    }

    #[test]
    fn rejects_keyword_as_identifier() {
        assert!(parse("int if() { return 0; }").is_err());
    }

    #[test]
    fn array_params() {
        let p = parse("int f(int a[], char b[]) { return a[0] + b[0]; } int main(){ return 0; }")
            .unwrap();
        assert_eq!(p.funcs[0].params.len(), 2);
        assert!(matches!(
            p.funcs[0].params[0].0,
            Type::Array(Scalar::Int, None)
        ));
    }

    #[test]
    fn ternary_parses() {
        let p = parse("int main() { int a; a = 1 < 2 ? 3 : 4; return a; }").unwrap();
        let Stmt::Expr(e) = &p.funcs[0].body[1] else {
            panic!()
        };
        match &e.kind {
            ExprKind::Assign(_, None, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Ternary(..)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn global_list_initializer() {
        let p = parse("int tab[3] = {1, 2, 3}; int main() { return 0; }").unwrap();
        assert_eq!(p.globals[0].init.len(), 24);
        let p2 = parse("float f[2] = {1.5, 2}; int main() { return 0; }").unwrap();
        assert_eq!(p2.globals[0].init.len(), 16);
    }
}
