//! Handwritten lexer for MiniC.

use crate::error::CompileError;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal (also produced for character literals).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (raw bytes, escapes resolved).
    Str(Vec<u8>),
    /// Identifier or keyword.
    Ident(String),
    /// A punctuation or operator token, e.g. `"+"`, `"<<"`, `"&&"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "'{p}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "%", "<", ">",
    "=", "!", "&", "|", "^", "~", "?", ":",
];

/// Tokenizes MiniC source.
///
/// # Errors
/// Fails on unterminated literals, bad escapes, or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                bump!();
            }
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let (sl, sc) = (line, col);
            bump!();
            bump!();
            loop {
                if i + 1 >= bytes.len() {
                    return Err(CompileError::new(sl, sc, "unterminated block comment"));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        let (tl, tc) = (line, col);
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
            {
                is_float = true;
                bump!();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            let text = &src[start..i];
            if is_float {
                let v: f64 = text
                    .parse()
                    .map_err(|_| CompileError::new(tl, tc, format!("bad float literal {text}")))?;
                out.push(Token {
                    tok: Tok::Float(v),
                    line: tl,
                    col: tc,
                });
            } else {
                let v = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                }
                .map_err(|_| CompileError::new(tl, tc, format!("bad integer literal {text}")))?;
                out.push(Token {
                    tok: Tok::Int(v),
                    line: tl,
                    col: tc,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                line: tl,
                col: tc,
            });
            continue;
        }
        // Character literal.
        if c == b'\'' {
            bump!();
            if i >= bytes.len() {
                return Err(CompileError::new(tl, tc, "unterminated char literal"));
            }
            let v = if bytes[i] == b'\\' {
                bump!();
                let e = escape(bytes.get(i).copied(), tl, tc)?;
                bump!();
                e
            } else {
                let v = bytes[i];
                bump!();
                v
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(CompileError::new(tl, tc, "unterminated char literal"));
            }
            bump!();
            out.push(Token {
                tok: Tok::Int(v as i64),
                line: tl,
                col: tc,
            });
            continue;
        }
        // String literal.
        if c == b'"' {
            bump!();
            let mut s = Vec::new();
            loop {
                if i >= bytes.len() {
                    return Err(CompileError::new(tl, tc, "unterminated string literal"));
                }
                match bytes[i] {
                    b'"' => {
                        bump!();
                        break;
                    }
                    b'\\' => {
                        bump!();
                        s.push(escape(bytes.get(i).copied(), tl, tc)?);
                        bump!();
                    }
                    b => {
                        s.push(b);
                        bump!();
                    }
                }
            }
            out.push(Token {
                tok: Tok::Str(s),
                line: tl,
                col: tc,
            });
            continue;
        }
        // Punctuation (maximal munch).
        let rest = &src[i..];
        let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
            return Err(CompileError::new(
                tl,
                tc,
                format!("unexpected character '{}'", c as char),
            ));
        };
        for _ in 0..p.len() {
            bump!();
        }
        out.push(Token {
            tok: Tok::Punct(p),
            line: tl,
            col: tc,
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

fn escape(c: Option<u8>, line: u32, col: u32) -> Result<u8, CompileError> {
    match c {
        Some(b'n') => Ok(b'\n'),
        Some(b't') => Ok(b'\t'),
        Some(b'r') => Ok(b'\r'),
        Some(b'0') => Ok(0),
        Some(b'\\') => Ok(b'\\'),
        Some(b'\'') => Ok(b'\''),
        Some(b'"') => Ok(b'"'),
        _ => Err(CompileError::new(line, col, "bad escape sequence")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            kinds("a<<=b<<c<=d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\t""#),
            vec![
                Tok::Int(97),
                Tok::Int(10),
                Tok::Str(b"hi\t".to_vec()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn float_and_hex() {
        assert_eq!(
            kinds("1.5 0xff"),
            vec![Tok::Float(1.5), Tok::Int(255), Tok::Eof]
        );
    }

    #[test]
    fn dot_without_digits_is_error_free_integer() {
        // "1." is lexed as 1 then '.' is unknown -> error
        assert!(lex("1.").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("'a").is_err());
    }
}
