//! Abstract syntax tree for MiniC.

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Unsigned byte (promoted to `int` in expressions).
    Char,
}

impl Scalar {
    /// Size of one element in memory.
    pub fn size(self) -> u64 {
        match self {
            Scalar::Char => 1,
            Scalar::Int | Scalar::Float => 8,
        }
    }
}

/// A MiniC type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// No value (function returns only).
    Void,
    /// A scalar value.
    Scalar(Scalar),
    /// An array of scalars; `None` length for unsized array parameters.
    Array(Scalar, Option<u64>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

impl BinOp {
    /// True for `< <= > >= == !=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// An assignable location: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Variable or array name.
    pub name: String,
    /// Element index for array accesses.
    pub index: Option<Box<Expr>>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Payload.
    pub kind: ExprKind,
    /// 1-based source line (for diagnostics).
    pub line: u32,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer (or char) literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference (an array name evaluates to its base address).
    Ident(String),
    /// Array element read.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound assignments (`+=` etc.).
    /// Evaluates to the stored value.
    Assign(LValue, Option<BinOp>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration. Arrays take stack space; scalars live in
    /// registers.
    Decl {
        /// Element type.
        ty: Scalar,
        /// Variable name.
        name: String,
        /// Array length (scalar when `None`).
        len: Option<u64>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then [else els]`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`.
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) body` — all three parts optional.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return expr?;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Element type.
    pub ty: Scalar,
    /// Name.
    pub name: String,
    /// Array length (scalar global when `None`).
    pub len: Option<u64>,
    /// Initializer bytes (already encoded little-endian per element).
    pub init: Vec<u8>,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Return type ([`Type::Void`] or scalar).
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters: scalars by value, arrays by base address.
    pub params: Vec<(Type, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A whole MiniC translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in declaration order.
    pub funcs: Vec<FuncDecl>,
}
