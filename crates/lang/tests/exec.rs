//! End-to-end: compile MiniC, run on the emulator, check results.

use hyperpred_emu::{Emulator, NullSink};
use hyperpred_lang::compile;
use hyperpred_lang::lower::entry_args;

fn run(src: &str, args: &[i64]) -> i64 {
    let m = compile(src).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
    let mut emu = Emulator::new(&m);
    emu.run("main", &entry_args(args), &mut NullSink)
        .unwrap_or_else(|e| panic!("runtime error: {e}"))
        .ret
}

#[test]
fn arithmetic() {
    assert_eq!(run("int main() { return (2 + 3) * 4 - 10 / 2; }", &[]), 15);
    assert_eq!(run("int main() { return 17 % 5; }", &[]), 2);
    assert_eq!(run("int main() { return -7 + 3; }", &[]), -4);
    assert_eq!(run("int main() { return 1 << 5 | 3; }", &[]), 35);
    assert_eq!(run("int main() { return ~0; }", &[]), -1);
    assert_eq!(run("int main() { return 100 >> 2; }", &[]), 25);
    assert_eq!(run("int main() { return 6 ^ 3; }", &[]), 5);
}

#[test]
fn comparisons_yield_01() {
    assert_eq!(run("int main() { return 3 < 4; }", &[]), 1);
    assert_eq!(run("int main() { return 4 <= 3; }", &[]), 0);
    assert_eq!(run("int main() { return !5; }", &[]), 0);
    assert_eq!(run("int main() { return !0; }", &[]), 1);
}

#[test]
fn short_circuit_evaluation() {
    // Division by zero on the right side must not execute.
    assert_eq!(
        run(
            "int main() { int z; z = 0; if (z != 0 && 10 / z > 1) return 1; return 2; }",
            &[]
        ),
        2
    );
    assert_eq!(
        run(
            "int main() { int z; z = 0; if (z == 0 || 10 / z > 1) return 1; return 2; }",
            &[]
        ),
        1
    );
}

#[test]
fn logical_as_value() {
    assert_eq!(
        run("int main() { return (1 && 2) + (0 || 0) * 10; }", &[]),
        1
    );
    assert_eq!(run("int main() { return (3 > 2) && (2 > 1); }", &[]), 1);
}

#[test]
fn ternary() {
    assert_eq!(
        run("int main() { int a; a = 7; return a > 5 ? 1 : 2; }", &[]),
        1
    );
    assert_eq!(
        run("int main() { int a; a = 3; return a > 5 ? 1 : 2; }", &[]),
        2
    );
}

#[test]
fn while_loop_sums() {
    let src = "int main() {
        int i; int s;
        i = 0; s = 0;
        while (i < 100) { s += i; i += 1; }
        return s;
    }";
    assert_eq!(run(src, &[]), 4950);
}

#[test]
fn for_with_break_continue() {
    let src = "int main() {
        int i; int s; s = 0;
        for (i = 0; i < 100; i += 1) {
            if (i % 2 == 1) continue;
            if (i == 20) break;
            s += i;
        }
        return s;
    }";
    // evens < 20: 0+2+...+18 = 90
    assert_eq!(run(src, &[]), 90);
}

#[test]
fn nested_loops() {
    let src = "int main() {
        int i; int j; int s; s = 0;
        for (i = 0; i < 10; i += 1)
            for (j = 0; j <= i; j += 1)
                s += 1;
        return s;
    }";
    assert_eq!(run(src, &[]), 55);
}

#[test]
fn recursion_fibonacci() {
    let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
               int main() { return fib(15); }";
    assert_eq!(run(src, &[]), 610);
}

#[test]
fn global_scalars_and_arrays() {
    let src = "int counter = 10;
               int table[5] = {3, 1, 4, 1, 5};
               int main() {
                   int i; int s; s = counter;
                   for (i = 0; i < 5; i += 1) s += table[i];
                   counter = s;
                   return counter;
               }";
    assert_eq!(run(src, &[]), 24);
}

#[test]
fn local_arrays_and_functions() {
    let src = "int sum(int a[], int n) {
                   int i; int s; s = 0;
                   for (i = 0; i < n; i += 1) s += a[i];
                   return s;
               }
               int main() {
                   int buf[8];
                   int i;
                   for (i = 0; i < 8; i += 1) buf[i] = i * i;
                   return sum(buf, 8);
               }";
    assert_eq!(run(src, &[]), 140);
}

#[test]
fn recursion_with_local_arrays_gets_fresh_frames() {
    // Each recursion level writes its own frame; values must not alias.
    let src = "int go(int depth) {
                   int a[4];
                   int i;
                   for (i = 0; i < 4; i += 1) a[i] = depth * 10 + i;
                   if (depth > 0) { int ignore; ignore = go(depth - 1); }
                   return a[3];
               }
               int main() { return go(5); }";
    assert_eq!(run(src, &[]), 53);
}

#[test]
fn char_arrays_and_string_globals() {
    let src = "char msg[16] = \"hello\";
               int main() {
                   int i; int s; s = 0;
                   for (i = 0; msg[i] != 0; i += 1) s += msg[i];
                   return s;
               }";
    let want: i64 = b"hello".iter().map(|&b| b as i64).sum();
    assert_eq!(run(src, &[]), want);
}

#[test]
fn char_scalars_are_masked() {
    let src = "int main() { char c; c = 300; return c; }";
    assert_eq!(run(src, &[]), 300 & 0xFF);
}

#[test]
fn float_arithmetic() {
    let src = "int main() {
        float a; float b;
        a = 1.5; b = 2.25;
        return (a * b + 0.625) * 2.0;
    }";
    // 3.375 + 0.625 = 4.0 * 2 = 8
    assert_eq!(run(src, &[]), 8);
}

#[test]
fn float_comparisons_and_mixed_arith() {
    let src = "int main() {
        float x; int n;
        x = 0.0; n = 0;
        while (x < 2.0) { x = x + 0.25; n += 1; }
        return n;
    }";
    assert_eq!(run(src, &[]), 8);
    assert_eq!(run("int main() { float f; f = 3; return f / 2; }", &[]), 1);
}

#[test]
fn float_arrays() {
    let src = "float w[4] = {0.5, 1.5, 2.5, 3.5};
               int main() {
                   int i; float s; s = 0.0;
                   for (i = 0; i < 4; i += 1) s = s + w[i];
                   return s;
               }";
    assert_eq!(run(src, &[]), 8);
}

#[test]
fn params_are_by_value() {
    let src = "int f(int x) { x = 99; return x; }
               int main() { int a; a = 1; int ignore; ignore = f(a); return a; }";
    assert_eq!(run(src, &[]), 1);
}

#[test]
fn arrays_are_by_reference() {
    let src = "void f(int a[]) { a[0] = 42; }
               int main() { int b[2]; b[0] = 1; f(b); return b[0]; }";
    assert_eq!(run(src, &[]), 42);
}

#[test]
fn main_with_user_args() {
    let src = "int main(int n) { return n * 2; }";
    assert_eq!(run(src, &[21]), 42);
}

#[test]
fn compound_assignments() {
    let src = "int main() {
        int a; a = 10;
        a += 5; a -= 3; a *= 2; a /= 4; a %= 4;
        a <<= 3; a >>= 1; a |= 1; a ^= 3; a &= 6;
        return a;
    }";
    // a: 10,15,12,24,6,2,16,8,9,10,2
    assert_eq!(run(src, &[]), 2);
}

#[test]
fn qsort_partition_style() {
    let src = "
    int a[16];
    void swap(int i, int j) { int t; t = a[i]; a[i] = a[j]; a[j] = t; }
    void qsort(int lo, int hi) {
        int p; int i; int j;
        if (lo >= hi) return;
        p = a[(lo + hi) / 2];
        i = lo; j = hi;
        while (i <= j) {
            while (a[i] < p) i += 1;
            while (a[j] > p) j -= 1;
            if (i <= j) { swap(i, j); i += 1; j -= 1; }
        }
        qsort(lo, j);
        qsort(i, hi);
    }
    int main() {
        int i; int seed; seed = 7;
        for (i = 0; i < 16; i += 1) { seed = (seed * 1103515245 + 12345) % 1000; if (seed < 0) seed = -seed; a[i] = seed; }
        qsort(0, 15);
        for (i = 1; i < 16; i += 1) if (a[i-1] > a[i]) return -i;
        return a[0] + a[15];
    }";
    let v = run(src, &[]);
    assert!(v > 0, "array not sorted: first bad index {}", -v);
}

#[test]
fn figure1_shape_compiles_and_runs() {
    // The paper's Figure 1 source.
    let src = "int main(int a, int b, int c) {
        int i; int j; int k; i = 0; j = 0; k = 0;
        if (a != 0 && b != 0) j += 1;
        else if (c != 0) k += 1;
        else k -= 1;
        i += 1;
        return i * 100 + j * 10 + k;
    }";
    assert_eq!(run(src, &[1, 1, 0]), 110);
    assert_eq!(run(src, &[0, 1, 1]), 101);
    assert_eq!(run(src, &[1, 0, 0]), 100 - 1);
}
