//! Differential testing: optimized code must behave identically to the
//! original on the emulator.

use hyperpred_emu::{DynStats, Emulator, NullSink};
use hyperpred_lang::compile;
use hyperpred_lang::lower::entry_args;
use hyperpred_opt::optimize_module;

/// MiniC programs exercising every language construct plus arguments.
const PROGRAMS: &[(&str, &[i64])] = &[
    (
        "int main(int n) {
            int i; int s; s = 0;
            for (i = 0; i < n; i += 1) { if (i % 3 == 0 || i % 5 == 0) s += i; }
            return s;
        }",
        &[50],
    ),
    (
        "int collatz(int n) {
            int steps; steps = 0;
            while (n != 1) { if (n % 2 == 0) n = n / 2; else n = 3 * n + 1; steps += 1; }
            return steps;
        }
        int main() { int i; int s; s = 0; for (i = 1; i < 30; i += 1) s += collatz(i); return s; }",
        &[],
    ),
    (
        "int a[32];
        int main(int seed) {
            int i; int h; h = seed;
            for (i = 0; i < 32; i += 1) { h = h * 1103515245 + 12345; a[i] = (h >> 16) & 1023; }
            h = 0;
            for (i = 0; i < 32; i += 1) { h = h * 31 + a[i]; }
            return h;
        }",
        &[7],
    ),
    (
        "char buf[64] = \"the quick brown fox jumps over the lazy dog\";
        int main() {
            int i; int words; int inword; words = 0; inword = 0;
            for (i = 0; buf[i] != 0; i += 1) {
                if (buf[i] == ' ') inword = 0;
                else { if (!inword) words += 1; inword = 1; }
            }
            return words;
        }",
        &[],
    ),
    (
        "float w[8] = {0.5, -1.25, 2.0, 3.5, -0.75, 1.0, 4.25, -2.5};
        int main() {
            int i; float s; float p; s = 0.0; p = 1.0;
            for (i = 0; i < 8; i += 1) { s = s + w[i]; if (w[i] > 0.0) p = p * w[i]; }
            return s * 100.0 + p;
        }",
        &[],
    ),
    (
        "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
         int main() { return fib(12); }",
        &[],
    ),
    (
        "int main(int x, int y) {
            int r; r = 0;
            if (x > 0 && (y > 0 || x > 10)) r = 1;
            if (!(x == y)) r += 2;
            r += x > y ? 10 : 20;
            return r;
        }",
        &[5, -3],
    ),
];

#[test]
fn optimization_preserves_behaviour() {
    for (src, args) in PROGRAMS {
        let m0 = compile(src).expect("compile");
        let mut m1 = m0.clone();
        optimize_module(&mut m1);
        m1.verify()
            .unwrap_or_else(|e| panic!("verify after opt: {e}\n{m1}"));

        let mut e0 = Emulator::new(&m0);
        let r0 = e0.run("main", &entry_args(args), &mut NullSink).unwrap();
        let mut e1 = Emulator::new(&m1);
        let r1 = e1.run("main", &entry_args(args), &mut NullSink).unwrap();
        assert_eq!(r0.ret, r1.ret, "result changed by optimization:\n{src}");
    }
}

#[test]
fn optimization_reduces_dynamic_instructions() {
    let mut total0 = 0u64;
    let mut total1 = 0u64;
    for (src, args) in PROGRAMS {
        let m0 = compile(src).expect("compile");
        let mut m1 = m0.clone();
        optimize_module(&mut m1);
        let mut s0 = DynStats::new();
        Emulator::new(&m0)
            .run("main", &entry_args(args), &mut s0)
            .unwrap();
        let mut s1 = DynStats::new();
        Emulator::new(&m1)
            .run("main", &entry_args(args), &mut s1)
            .unwrap();
        total0 += s0.insts;
        total1 += s1.insts;
    }
    assert!(
        total1 < total0,
        "optimizer should shrink dynamic instruction count ({total1} !< {total0})"
    );
}

#[test]
fn optimization_reduces_branches() {
    // CFG cleanup must remove the frontend's redundant jumps.
    let (src, args) = PROGRAMS[0];
    let m0 = compile(src).unwrap();
    let mut m1 = m0.clone();
    optimize_module(&mut m1);
    let mut s0 = DynStats::new();
    Emulator::new(&m0)
        .run("main", &entry_args(args), &mut s0)
        .unwrap();
    let mut s1 = DynStats::new();
    Emulator::new(&m1)
        .run("main", &entry_args(args), &mut s1)
        .unwrap();
    assert!(
        s1.branches < s0.branches,
        "jump cleanup should reduce dynamic branches ({} !< {})",
        s1.branches,
        s0.branches
    );
}
