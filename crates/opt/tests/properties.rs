//! Property-based tests for the optimizer: folding must agree with the
//! emulator's arithmetic on random operands, and the full pipeline must be
//! meaning-preserving on randomly built straight-line functions.

use hyperpred_emu::{Emulator, NullSink};
use hyperpred_ir::{CmpOp, FuncBuilder, Module, Op, Operand};
use proptest::prelude::*;

/// Pure binary integer ops the folder handles.
const OPS: [Op; 13] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Rem,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::AndNot,
    Op::OrNot,
    Op::Shl,
    Op::Shr,
    Op::Sra,
];

fn run_ret(m: &Module, args: &[i64]) -> i64 {
    Emulator::new(m)
        .run("main", args, &mut NullSink)
        .unwrap()
        .ret
}

/// Builds `main(x, y) = x op y` (literals folded when `lit` set).
fn binop_module(op: Op, a: i64, b: i64, literal: bool) -> Module {
    let mut bld = FuncBuilder::new("main");
    let x = bld.param();
    let y = bld.param();
    let (oa, ob) = if literal {
        (Operand::Imm(a), Operand::Imm(b))
    } else {
        (Operand::Reg(x), Operand::Reg(y))
    };
    let r = bld.op2(op, oa, ob);
    bld.ret(Some(r.into()));
    let mut m = Module::new();
    m.push(bld.finish());
    m.link().unwrap();
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Constant folding computes exactly what the emulator computes.
    #[test]
    fn fold_matches_emulator(op_idx in 0usize..OPS.len(), a in any::<i64>(), b in any::<i64>()) {
        let op = OPS[op_idx];
        // Division by zero traps at runtime and is never folded; skip.
        prop_assume!(!(matches!(op, Op::Div | Op::Rem) && b == 0));
        let m_runtime = binop_module(op, a, b, false);
        let mut m_folded = binop_module(op, a, b, true);
        hyperpred_opt::optimize_module(&mut m_folded);
        // After folding, main should be reduced to a constant return.
        prop_assert_eq!(run_ret(&m_runtime, &[a, b]), run_ret(&m_folded, &[a, b]));
    }

    /// Comparisons fold identically too.
    #[test]
    fn cmp_fold_matches_emulator(cmp_idx in 0usize..6, a in any::<i64>(), b in any::<i64>()) {
        let cmp = CmpOp::ALL[cmp_idx];
        let m_runtime = binop_module(Op::Cmp(cmp), a, b, false);
        let mut m_folded = binop_module(Op::Cmp(cmp), a, b, true);
        hyperpred_opt::optimize_module(&mut m_folded);
        prop_assert_eq!(run_ret(&m_runtime, &[a, b]), run_ret(&m_folded, &[a, b]));
    }

    /// The whole classic pipeline preserves a random expression DAG over
    /// the two parameters.
    #[test]
    fn optimizer_preserves_random_dags(
        seed in any::<u64>(),
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bld = FuncBuilder::new("main");
        let x = bld.param();
        let y = bld.param();
        let mut values: Vec<hyperpred_ir::Reg> = vec![x, y];
        for _ in 0..r.gen_range(3..24) {
            let pick = |r: &mut rand::rngs::StdRng, vs: &[hyperpred_ir::Reg]| {
                if r.gen_bool(0.2) {
                    Operand::Imm(r.gen_range(-8..8))
                } else {
                    Operand::Reg(vs[r.gen_range(0..vs.len())])
                }
            };
            // Avoid div/rem (random divisors can be zero).
            let safe = [Op::Add, Op::Sub, Op::Mul, Op::And, Op::Or, Op::Xor, Op::Shl, Op::Sra];
            let op = safe[r.gen_range(0..safe.len())];
            let oa = pick(&mut r, &values);
            let ob = pick(&mut r, &values);
            let d = bld.op2(op, oa, ob);
            values.push(d);
        }
        let last = *values.last().unwrap();
        bld.ret(Some(last.into()));
        let mut m = Module::new();
        m.push(bld.finish());
        m.link().unwrap();
        let want = run_ret(&m, &[a, b]);
        hyperpred_opt::optimize_module(&mut m);
        m.verify().unwrap();
        prop_assert_eq!(run_ret(&m, &[a, b]), want);
    }
}
