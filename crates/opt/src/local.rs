//! In-block copy/constant propagation and common subexpression elimination.
//!
//! Both transformations are local (within one block). Blocks are long after
//! superblock/hyperblock formation, so local scope captures most of the
//! opportunity — the same choice the paper's peephole framework makes.

use hyperpred_ir::{Function, Inst, Op, Operand, PredReg, Reg};
use std::collections::HashMap;

/// Runs copy propagation then CSE on every block. Returns true on change.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for &b in &f.layout.clone() {
        changed |= block_pass(&mut f.block_mut(b).insts);
    }
    changed
}

/// Expression key for CSE. `epoch` serializes loads against stores/calls.
/// `guard` lets *identically guarded* pairs merge: when the second copy
/// fires, so did the first, with the same operand values (the guard's
/// redefinition drops the entry). Cross-guard merging is the job of the
/// relation-aware pass (`crate::relopt`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    op: OpKey,
    srcs: Vec<Operand>,
    speculative: bool,
    epoch: u64,
    guard: Option<PredReg>,
}

/// Hashable stand-in for `Op` (which contains enums already `Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OpKey(Op);

fn commutative(op: Op) -> bool {
    matches!(
        op,
        Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor | Op::FAdd | Op::FMul
    )
}

fn cse_candidate(inst: &Inst) -> bool {
    // Pure value-producing ops. Loads participate with an epoch.
    inst.dst.is_some()
        && !inst.op.has_side_effects()
        && !inst.op.is_pred_def()
        && !matches!(
            inst.op,
            Op::Call | Op::Cmov | Op::CmovCom | Op::Nop | Op::PredClear | Op::PredSet
        )
    // Trapping ops are not safely removable duplicates unless silent;
    // identical non-speculative loads/divs are still fine to CSE (same
    // operands, same trap behaviour), so allow them.
}

fn block_pass(insts: &mut [Inst]) -> bool {
    let mut changed = false;
    // reg -> known copy source (register or immediate)
    let mut copies: HashMap<Reg, Operand> = HashMap::new();
    // expression -> register holding its value
    let mut avail: HashMap<Key, Reg> = HashMap::new();
    let mut epoch: u64 = 0;

    for inst in insts.iter_mut() {
        // 1. Substitute known copies into sources.
        for s in &mut inst.srcs {
            if let Operand::Reg(r) = *s {
                if let Some(&rep) = copies.get(&r) {
                    if *s != rep {
                        *s = rep;
                        changed = true;
                    }
                }
            }
        }

        // 2. CSE: replace a recomputation with a move from the prior value.
        let mut cse_key = None;
        if cse_candidate(inst) {
            let e = if inst.op.is_load() { epoch } else { 0 };
            let mut srcs = inst.srcs.clone();
            if commutative(inst.op) {
                srcs.sort_by_key(|o| match o {
                    Operand::Reg(r) => (0u8, r.0 as i64),
                    Operand::Imm(v) => (1u8, *v),
                });
            }
            let key = Key {
                op: OpKey(inst.op),
                srcs,
                speculative: inst.speculative,
                epoch: e,
                guard: inst.guard,
            };
            if let Some(&prev) = avail.get(&key) {
                if Some(prev) != inst.dst {
                    inst.op = Op::Mov;
                    inst.srcs = vec![Operand::Reg(prev)];
                    inst.speculative = false;
                    changed = true;
                }
            } else {
                cse_key = Some(key);
            }
        }

        // 3. Memory/calls advance the load epoch.
        if inst.op.is_store() || inst.op == Op::Call {
            epoch += 1;
        }

        // 3b. Redefining a predicate invalidates expressions guarded by
        //     it — including OR/AND-type growth: the new guard value
        //     firing says nothing about whether the old one did.
        if inst.defines_all_preds() {
            avail.retain(|k, _| k.guard.is_none());
        } else {
            for p in inst.pred_defs() {
                avail.retain(|k, _| k.guard != Some(p));
            }
        }

        // 4. Invalidate facts mentioning the defined register, then record
        //    the new facts this instruction establishes.
        if let Some(d) = inst.dst {
            copies.remove(&d);
            copies.retain(|_, v| v.as_reg() != Some(d));
            avail.retain(|k, v| *v != d && !k.srcs.iter().any(|s| s.as_reg() == Some(d)));
            if let Some(key) = cse_key {
                // A key mentioning d itself (e.g. `add d, d, 1`) must not
                // be recorded: the input value is gone.
                if !key.srcs.iter().any(|s| s.as_reg() == Some(d)) {
                    avail.insert(key, d);
                }
            }
            if inst.op == Op::Mov && inst.guard.is_none() {
                // Don't record self-referential copies.
                if inst.srcs[0].as_reg() != Some(d) {
                    copies.insert(d, inst.srcs[0]);
                }
            }
        }
        // Calls clobber nothing else (registers are function-local), but a
        // call's unknown execution should not invalidate register facts.
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, MemWidth};

    #[test]
    fn copy_propagation_rewrites_uses() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let c = b.mov(x.into());
        let y = b.add(c.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        // The add now reads x directly.
        let add = &f.blocks[0].insts[1];
        assert_eq!(add.srcs[0], Operand::Reg(x));
    }

    #[test]
    fn constant_propagation() {
        let mut b = FuncBuilder::new("t");
        let k = b.mov(Operand::Imm(7));
        let y = b.add(k.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts[1].srcs[0], Operand::Imm(7));
    }

    #[test]
    fn cse_removes_duplicate_expression() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let a = b.add(x.into(), Operand::Imm(3));
        let c = b.add(x.into(), Operand::Imm(3));
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        let second = &f.blocks[0].insts[1];
        assert_eq!(second.op, Op::Mov);
        assert_eq!(second.srcs, vec![Operand::Reg(a)]);
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let a = b.add(x.into(), y.into());
        let c = b.add(y.into(), x.into());
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts[1].op, Op::Mov);
    }

    #[test]
    fn loads_are_not_cse_across_stores() {
        let mut b = FuncBuilder::new("t");
        let p = b.param();
        let a = b.load(MemWidth::Word, p.into(), Operand::Imm(0));
        b.store(MemWidth::Word, p.into(), Operand::Imm(0), Operand::Imm(9));
        let c = b.load(MemWidth::Word, p.into(), Operand::Imm(0));
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        run(&mut f);
        // The second load must survive.
        let loads = f.blocks[0].insts.iter().filter(|i| i.op.is_load()).count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn loads_are_cse_without_intervening_stores() {
        let mut b = FuncBuilder::new("t");
        let p = b.param();
        let a = b.load(MemWidth::Word, p.into(), Operand::Imm(0));
        let c = b.load(MemWidth::Word, p.into(), Operand::Imm(0));
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        let loads = f.blocks[0].insts.iter().filter(|i| i.op.is_load()).count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn guarded_mov_is_not_a_copy_source() {
        let mut b = FuncBuilder::new("t");
        let p = b.fresh_pred();
        let x = b.param();
        let c = b.mov(Operand::Imm(1));
        b.mov_to(c, x.into());
        b.guard_last(p);
        let y = b.add(c.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        let mut f = b.finish();
        run(&mut f);
        // The add must still read c (the guarded mov may not fire).
        assert_eq!(f.blocks[0].insts[2].srcs[0], Operand::Reg(c));
    }

    #[test]
    fn redefinition_invalidates_copy() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let c = b.mov(x.into());
        // redefine x
        b.mov_to(x, Operand::Imm(5));
        let y = b.add(c.into(), Operand::Imm(1));
        b.ret(Some(y.into()));
        let mut f = b.finish();
        run(&mut f);
        // y must not read the redefined x.
        assert_eq!(f.blocks[0].insts[2].srcs[0], Operand::Reg(c));
    }

    #[test]
    fn guarded_use_still_gets_substitution() {
        let mut b = FuncBuilder::new("t");
        let p = b.fresh_pred();
        let x = b.param();
        let c = b.mov(x.into());
        let y = b.mov(Operand::Imm(0));
        b.mov_to(y, c.into());
        b.guard_last(p);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts[2].srcs[0], Operand::Reg(x));
    }

    #[test]
    fn cse_merges_identically_guarded_pair() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let p = b.fresh_pred();
        let a = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, a, x.into(), Operand::Imm(3));
        b.guard_last(p);
        let c = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, c, x.into(), Operand::Imm(3));
        b.guard_last(p);
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        let second = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.dst == Some(c) && i.guard == Some(p))
            .unwrap();
        assert_eq!(second.op, Op::Mov, "same guard, same operands: merged");
        assert_eq!(second.srcs, vec![Operand::Reg(a)]);
    }

    #[test]
    fn cse_does_not_merge_differently_guarded_pair() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let p = b.fresh_pred();
        let q = b.fresh_pred();
        let a = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, a, x.into(), Operand::Imm(3));
        b.guard_last(p);
        let c = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, c, x.into(), Operand::Imm(3));
        b.guard_last(q);
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        run(&mut f);
        let second = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.dst == Some(c) && i.guard == Some(q))
            .unwrap();
        assert_eq!(second.op, Op::Add, "guard tokens differ: local CSE skips");
    }

    #[test]
    fn guard_redefinition_splits_guarded_cse() {
        use hyperpred_ir::PredType;
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let p = b.fresh_pred();
        let a = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, a, x.into(), Operand::Imm(3));
        b.guard_last(p);
        // p changes value between the twins.
        b.pred_def(
            CmpOp::Lt,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(9),
            None,
        );
        let c = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, c, x.into(), Operand::Imm(3));
        b.guard_last(p);
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        run(&mut f);
        let second = f.blocks[0]
            .insts
            .iter()
            .find(|i| i.dst == Some(c) && i.guard == Some(p))
            .unwrap();
        assert_eq!(second.op, Op::Add, "the first add ran under the old p");
    }

    #[test]
    fn cmp_is_cse_candidate() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let a = b.cmp(CmpOp::Lt, x.into(), Operand::Imm(5));
        let c = b.cmp(CmpOp::Lt, x.into(), Operand::Imm(5));
        let s = b.add(a.into(), c.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts[1].op, Op::Mov);
    }
}
