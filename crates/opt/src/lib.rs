//! Predicate-aware classic optimizations.
//!
//! The paper's compiler applies "a comprehensive set of peephole
//! optimizations ... both before and after conversion" plus the usual
//! clean-up passes (common subexpression elimination, copy propagation,
//! dead code removal — §3.2). This crate provides those passes for all
//! three compilation models:
//!
//! * [`fold`] — constant folding and algebraic simplification.
//! * [`local`] — in-block copy/constant propagation and CSE (memory-aware).
//! * [`dce`] — global liveness-based dead code elimination.
//! * [`cfgopt`] — branch folding, jump threading, block merging,
//!   unreachable-code removal.
//! * [`relopt`] — relation-driven guarded CSE, copy propagation and
//!   dead-define removal, powered by the predicate partition graph
//!   ([`hyperpred_ir::RelationDb`]).
//!
//! All passes understand predication: guarded definitions are *partial*
//! (they do not kill their destination), OR/AND-type predicate destinations
//! are read-modify-write, and guarded instructions are never used as
//! propagation sources.
//!
//! [`inline`] provides pre-formation function inlining (IMPACT-style).
//!
//! [`optimize`] runs the pipeline to a (bounded) fixpoint.

pub mod cfgopt;
pub mod dce;
pub mod fold;
pub mod inline;
pub mod local;
pub mod relopt;

use hyperpred_ir::{Function, Module};

/// Runs the full optimization pipeline on one function until no pass makes
/// progress (bounded number of rounds).
pub fn optimize(f: &mut Function) {
    const MAX_ROUNDS: usize = 8;
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        changed |= fold::run(f);
        changed |= local::run(f);
        changed |= relopt::run(f);
        changed |= dce::run(f);
        changed |= cfgopt::run(f);
        if !changed {
            break;
        }
    }
    debug_assert!(
        hyperpred_ir::verify::verify_function(f).is_ok(),
        "optimizer broke {}: {:?}",
        f.name,
        hyperpred_ir::verify::verify_function(f).err()
    );
    // In debug builds, also hold the output to the semantic rules under
    // the weakest model class (the optimizer runs both on fully
    // predicated IR and on converted partial code, so it may not assume
    // either conformance profile — but it must never manufacture an
    // undefined read or a malformed predicate define).
    #[cfg(debug_assertions)]
    {
        use hyperpred_ir::analysis::{check_function, ModelClass};
        let vs = check_function(f, ModelClass::FullPred);
        assert!(vs.is_empty(), "optimizer broke {}: {vs:#?}", f.name);
    }
}

/// Optimizes every function in a module.
pub fn optimize_module(m: &mut Module) {
    for f in &mut m.funcs {
        optimize(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{FuncBuilder, Operand};

    #[test]
    fn pipeline_shrinks_redundant_code() {
        let mut b = FuncBuilder::new("f");
        let x = b.param();
        let a = b.add(x.into(), Operand::Imm(0)); // a = x (identity)
        let c = b.add(a.into(), a.into()); // c = x + x
        let d = b.add(x.into(), x.into()); // d = x + x (CSE with c)
        let e = b.add(c.into(), d.into());
        b.ret(Some(e.into()));
        let mut f = b.finish();
        let before = f.size();
        optimize(&mut f);
        assert!(f.size() < before, "pipeline should remove redundancy");
    }
}
