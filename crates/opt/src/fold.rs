//! Constant folding and algebraic simplification.

use hyperpred_ir::{CmpOp, Function, Inst, Op, Operand};

/// Folds constants and simplifies algebraic identities in place.
/// Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for &b in &f.layout.clone() {
        for inst in &mut f.block_mut(b).insts {
            changed |= fold_inst(inst);
        }
        // Nops left by simplification are dropped immediately.
        let before = f.block(b).insts.len();
        f.block_mut(b).insts.retain(|i| i.op != Op::Nop);
        changed |= f.block(b).insts.len() != before;
    }
    changed
}

fn to_mov(inst: &mut Inst, src: Operand) {
    inst.op = Op::Mov;
    inst.srcs = vec![src];
    inst.speculative = false;
}

fn to_nop(inst: &mut Inst) {
    inst.op = Op::Nop;
    inst.srcs.clear();
    inst.dst = None;
    inst.guard = None;
    inst.speculative = false;
}

/// Folds one instruction; returns true if it changed.
pub fn fold_inst(inst: &mut Inst) -> bool {
    let imm = |o: Operand| o.as_imm();
    match inst.op {
        // ---- integer binops -------------------------------------------
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::AndNot
        | Op::OrNot
        | Op::Shl
        | Op::Shr
        | Op::Sra => {
            let (a, b) = (inst.srcs[0], inst.srcs[1]);
            if let (Some(x), Some(y)) = (imm(a), imm(b)) {
                let v = match inst.op {
                    Op::Add => Some(x.wrapping_add(y)),
                    Op::Sub => Some(x.wrapping_sub(y)),
                    Op::Mul => Some(x.wrapping_mul(y)),
                    Op::Div if y != 0 => Some(x.wrapping_div(y)),
                    Op::Rem if y != 0 => Some(x.wrapping_rem(y)),
                    Op::Div | Op::Rem if inst.speculative => Some(0),
                    Op::Div | Op::Rem => None, // keep the trap
                    Op::And => Some(x & y),
                    Op::Or => Some(x | y),
                    Op::Xor => Some(x ^ y),
                    Op::AndNot => Some(x & !y),
                    Op::OrNot => Some(x | !y),
                    Op::Shl => Some(x.wrapping_shl(y as u32 & 63)),
                    Op::Shr => Some(((x as u64).wrapping_shr(y as u32 & 63)) as i64),
                    Op::Sra => Some(x.wrapping_shr(y as u32 & 63)),
                    _ => unreachable!(),
                };
                if let Some(v) = v {
                    to_mov(inst, Operand::Imm(v));
                    return true;
                }
                return false;
            }
            // Algebraic identities.
            match (inst.op, imm(a), imm(b)) {
                (Op::Add, Some(0), _) => to_mov(inst, b),
                (Op::Add | Op::Sub, _, Some(0)) => to_mov(inst, a),
                (Op::Mul, _, Some(1)) => to_mov(inst, a),
                (Op::Mul, Some(1), _) => to_mov(inst, b),
                (Op::Mul, _, Some(0)) | (Op::Mul, Some(0), _) => to_mov(inst, Operand::Imm(0)),
                (Op::Div, _, Some(1)) => to_mov(inst, a),
                (Op::And, _, Some(-1)) => to_mov(inst, a),
                (Op::And, Some(-1), _) => to_mov(inst, b),
                (Op::And, _, Some(0)) | (Op::And, Some(0), _) => to_mov(inst, Operand::Imm(0)),
                (Op::Or | Op::Xor, _, Some(0)) => to_mov(inst, a),
                (Op::Or | Op::Xor, Some(0), _) => to_mov(inst, b),
                (Op::Shl | Op::Shr | Op::Sra, _, Some(0)) => to_mov(inst, a),
                _ => return false,
            }
            true
        }
        // ---- comparisons ----------------------------------------------
        Op::Cmp(c) => {
            let (a, b) = (inst.srcs[0], inst.srcs[1]);
            if let (Some(x), Some(y)) = (imm(a), imm(b)) {
                to_mov(inst, Operand::Imm(c.eval(x, y) as i64));
                return true;
            }
            if a == b {
                // r cmp r is statically known.
                let v = matches!(c, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
                to_mov(inst, Operand::Imm(v as i64));
                return true;
            }
            false
        }
        // ---- float ops --------------------------------------------------
        Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
            let (a, b) = (inst.srcs[0], inst.srcs[1]);
            if let (Some(x), Some(y)) = (imm(a), imm(b)) {
                let (x, y) = (f64::from_bits(x as u64), f64::from_bits(y as u64));
                let v = match inst.op {
                    Op::FAdd => Some(x + y),
                    Op::FSub => Some(x - y),
                    Op::FMul => Some(x * y),
                    Op::FDiv if y != 0.0 => Some(x / y),
                    Op::FDiv if inst.speculative => Some(0.0),
                    _ => None,
                };
                if let Some(v) = v {
                    to_mov(inst, Operand::fimm(v));
                    return true;
                }
            }
            false
        }
        Op::FCmp(c) => {
            let (a, b) = (inst.srcs[0], inst.srcs[1]);
            if let (Some(x), Some(y)) = (imm(a), imm(b)) {
                let v = c.eval_f(f64::from_bits(x as u64), f64::from_bits(y as u64));
                to_mov(inst, Operand::Imm(v as i64));
                return true;
            }
            false
        }
        Op::IToF => {
            if let Some(x) = imm(inst.srcs[0]) {
                to_mov(inst, Operand::fimm(x as f64));
                return true;
            }
            false
        }
        Op::FToI => {
            if let Some(x) = imm(inst.srcs[0]) {
                to_mov(inst, Operand::Imm(f64::from_bits(x as u64) as i64));
                return true;
            }
            false
        }
        // ---- conditional moves ------------------------------------------
        Op::Cmov | Op::CmovCom => {
            let cond = imm(inst.srcs[1]);
            let fire_on = inst.op == Op::Cmov;
            match cond {
                Some(c) if (c != 0) == fire_on => {
                    let v = inst.srcs[0];
                    to_mov(inst, v);
                    true
                }
                Some(_) => {
                    to_nop(inst);
                    true
                }
                None => {
                    // cmov r, r, c is a no-op.
                    if inst.srcs[0].as_reg() == inst.dst {
                        to_nop(inst);
                        return true;
                    }
                    false
                }
            }
        }
        Op::Select => {
            let cond = imm(inst.srcs[2]);
            match cond {
                Some(c) => {
                    let v = if c != 0 { inst.srcs[0] } else { inst.srcs[1] };
                    to_mov(inst, v);
                    true
                }
                None if inst.srcs[0] == inst.srcs[1] => {
                    let v = inst.srcs[0];
                    to_mov(inst, v);
                    true
                }
                None => false,
            }
        }
        Op::Mov => {
            // mov r, r (unguarded) is a no-op.
            if inst.guard.is_none() && inst.srcs[0].as_reg() == inst.dst {
                to_nop(inst);
                return true;
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{FuncBuilder, Reg};

    fn fold_one(op: Op, srcs: Vec<Operand>) -> Inst {
        let mut b = FuncBuilder::new("t");
        let _ = b.param();
        let mut i = Inst::new(hyperpred_ir::InstId(0), op);
        i.dst = Some(Reg(0));
        i.srcs = srcs;
        fold_inst(&mut i);
        i
    }

    #[test]
    fn folds_constants() {
        let i = fold_one(Op::Add, vec![Operand::Imm(2), Operand::Imm(3)]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.srcs, vec![Operand::Imm(5)]);
        let i = fold_one(Op::Cmp(CmpOp::Lt), vec![Operand::Imm(2), Operand::Imm(3)]);
        assert_eq!(i.srcs, vec![Operand::Imm(1)]);
    }

    #[test]
    fn keeps_trapping_div() {
        let i = fold_one(Op::Div, vec![Operand::Imm(2), Operand::Imm(0)]);
        assert_eq!(i.op, Op::Div, "div by zero must keep its trap");
    }

    #[test]
    fn folds_silent_div_by_zero_to_zero() {
        let mut i = Inst::new(hyperpred_ir::InstId(0), Op::Div);
        i.dst = Some(Reg(0));
        i.srcs = vec![Operand::Imm(2), Operand::Imm(0)];
        i.speculative = true;
        fold_inst(&mut i);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.srcs, vec![Operand::Imm(0)]);
    }

    #[test]
    fn identities() {
        let i = fold_one(Op::Add, vec![Operand::Reg(Reg(0)), Operand::Imm(0)]);
        assert_eq!(i.op, Op::Mov);
        let i = fold_one(Op::Mul, vec![Operand::Reg(Reg(0)), Operand::Imm(0)]);
        assert_eq!(i.srcs, vec![Operand::Imm(0)]);
        let i = fold_one(Op::Shl, vec![Operand::Reg(Reg(0)), Operand::Imm(0)]);
        assert_eq!(i.op, Op::Mov);
    }

    #[test]
    fn same_reg_compare() {
        let i = fold_one(
            Op::Cmp(CmpOp::Eq),
            vec![Operand::Reg(Reg(0)), Operand::Reg(Reg(0))],
        );
        assert_eq!(i.srcs, vec![Operand::Imm(1)]);
        let i = fold_one(
            Op::Cmp(CmpOp::Lt),
            vec![Operand::Reg(Reg(0)), Operand::Reg(Reg(0))],
        );
        assert_eq!(i.srcs, vec![Operand::Imm(0)]);
    }

    #[test]
    fn cmov_with_known_condition() {
        let i = fold_one(Op::Cmov, vec![Operand::Imm(5), Operand::Imm(1)]);
        assert_eq!(i.op, Op::Mov);
        let i = fold_one(Op::Cmov, vec![Operand::Imm(5), Operand::Imm(0)]);
        assert_eq!(i.op, Op::Nop);
        let i = fold_one(Op::CmovCom, vec![Operand::Imm(5), Operand::Imm(0)]);
        assert_eq!(i.op, Op::Mov);
    }

    #[test]
    fn select_with_equal_arms() {
        let i = fold_one(
            Op::Select,
            vec![
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(0)),
            ],
        );
        assert_eq!(i.op, Op::Mov);
    }

    #[test]
    fn float_folding() {
        let i = fold_one(Op::FMul, vec![Operand::fimm(2.0), Operand::fimm(3.5)]);
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.srcs, vec![Operand::fimm(7.0)]);
    }

    #[test]
    fn guarded_self_mov_is_kept() {
        // mov r0, r0 (p) is still a no-op (writes the same value), but we
        // only remove the unguarded form; check the guarded one survives.
        let mut b = FuncBuilder::new("t");
        let p = b.fresh_pred();
        let x = b.param();
        b.mov_to(x, x.into());
        b.guard_last(p);
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }
}
