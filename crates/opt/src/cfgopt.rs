//! Control-flow cleanup: constant-branch folding, jump threading, block
//! merging, and unreachable-code removal.

use hyperpred_ir::{BlockId, Function, Op};

/// Runs all CFG clean-ups once. Returns true on change.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    changed |= fold_constant_branches(f);
    changed |= thread_jumps(f);
    changed |= remove_jump_to_next(f);
    changed |= merge_blocks(f);
    let blocks_before = f.layout.len();
    f.remove_unreachable();
    changed |= f.layout.len() != blocks_before;
    changed
}

/// Folds conditional branches whose operands are both immediates: a
/// known-taken branch becomes a jump (truncating the now-unreachable tail),
/// a known-not-taken branch is deleted. Only unguarded branches fold.
pub fn fold_constant_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for &b in &f.layout.clone() {
        let insts = &mut f.block_mut(b).insts;
        let mut i = 0;
        while i < insts.len() {
            let inst = &insts[i];
            if inst.guard.is_none() {
                if let Op::Br(c) = inst.op {
                    if let (Some(x), Some(y)) = (inst.srcs[0].as_imm(), inst.srcs[1].as_imm()) {
                        if c.eval(x, y) {
                            let inst = &mut insts[i];
                            inst.op = Op::Jump;
                            inst.srcs.clear();
                            insts.truncate(i + 1);
                        } else {
                            insts.remove(i);
                        }
                        changed = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    changed
}

/// Retargets branches whose destination block is empty (falls straight
/// through) or consists of a single unconditional jump.
pub fn thread_jumps(f: &mut Function) -> bool {
    let mut changed = false;
    // Resolve the "final" destination of each block when used as a branch
    // target, with a fuel limit to survive (degenerate) jump cycles.
    let resolve = |f: &Function, mut t: BlockId| -> BlockId {
        for _ in 0..f.blocks.len() {
            let block = f.block(t);
            let next = match block.insts.as_slice() {
                [] => f.layout_next(t),
                [only] if only.op == Op::Jump && only.guard.is_none() => only.target,
                _ => None,
            };
            match next {
                Some(n) if n != t => t = n,
                _ => break,
            }
        }
        t
    };
    for &b in &f.layout.clone() {
        for i in 0..f.block(b).insts.len() {
            let inst = &f.block(b).insts[i];
            if inst.op.is_branch() {
                let t = inst.target.expect("branch has target");
                let r = resolve(f, t);
                if r != t {
                    f.block_mut(b).insts[i].target = Some(r);
                    changed = true;
                }
            }
        }
    }
    changed
}

/// Deletes unconditional jumps to the next block in layout (pure
/// fall-through).
pub fn remove_jump_to_next(f: &mut Function) -> bool {
    let mut changed = false;
    for &b in &f.layout.clone() {
        let next = f.layout_next(b);
        let insts = &mut f.block_mut(b).insts;
        if let Some(last) = insts.last() {
            if last.op == Op::Jump && last.guard.is_none() && last.target == next {
                insts.pop();
                changed = true;
            }
        }
    }
    changed
}

/// Merges a block into its unique predecessor when control can only flow
/// between them (predecessor ends with an unconditional jump to it or falls
/// through, successor has exactly one predecessor).
pub fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = f.preds();
        let mut merged = false;
        for &b in &f.layout.clone() {
            // b's only way out must be a single edge to s.
            let succs = f.succs(b);
            let [s] = succs.as_slice() else { continue };
            let s = *s;
            if s == b || s == f.entry() || preds[s.index()].len() != 1 {
                continue;
            }
            // b must not branch into s conditionally (only jump/fall).
            let jumps_conditionally = f
                .block(b)
                .insts
                .iter()
                .any(|i| matches!(i.op, Op::Br(_)) && i.target == Some(s));
            if jumps_conditionally {
                continue;
            }
            // If s itself falls through, its fall-through target is
            // layout_next(s); appending its body to b is only correct when
            // b directly precedes s (so the layouts line up after removal)
            // or s ends explicitly.
            if !f.block(s).ends_explicitly() && f.layout_next(b) != Some(s) {
                continue;
            }
            // Remove a trailing unconditional jump to s.
            {
                let insts = &mut f.block_mut(b).insts;
                if let Some(last) = insts.last() {
                    if last.op == Op::Jump && last.guard.is_none() && last.target == Some(s) {
                        insts.pop();
                    } else if last.ends_block() {
                        continue; // ret/halt: no merge
                    }
                }
            }
            // If b now falls through, it must have been directly followed by
            // s or end in the popped jump; either way appending is correct.
            let moved = std::mem::take(&mut f.block_mut(s).insts);
            f.block_mut(b).insts.extend(moved);
            f.layout.retain(|&x| x != s);
            merged = true;
            changed = true;
            break;
        }
        if !merged {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::verify::verify_function;
    use hyperpred_ir::{CmpOp, FuncBuilder, Operand};

    #[test]
    fn folds_taken_branch_to_jump() {
        let mut b = FuncBuilder::new("t");
        let other = b.block();
        b.br(CmpOp::Eq, Operand::Imm(1), Operand::Imm(1), other);
        b.ret(None);
        b.switch_to(other);
        b.ret(None);
        let mut f = b.finish();
        assert!(fold_constant_branches(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(f.blocks[0].insts[0].op, Op::Jump);
        f.remove_unreachable();
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn deletes_never_taken_branch() {
        let mut b = FuncBuilder::new("t");
        let other = b.block();
        b.br(CmpOp::Eq, Operand::Imm(0), Operand::Imm(1), other);
        b.ret(None);
        b.switch_to(other);
        b.ret(None);
        let mut f = b.finish();
        assert!(fold_constant_branches(&mut f));
        assert!(!f.blocks[0].insts[0].op.is_branch());
    }

    #[test]
    fn threads_jump_chains() {
        let mut b = FuncBuilder::new("t");
        let hop = b.block();
        let end = b.block();
        b.jump(hop);
        b.switch_to(hop);
        b.jump(end);
        b.switch_to(end);
        b.ret(None);
        let mut f = b.finish();
        assert!(thread_jumps(&mut f));
        assert_eq!(f.blocks[0].insts[0].target, Some(end));
    }

    #[test]
    fn full_cleanup_collapses_trampolines() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let hop = b.block();
        let end = b.block();
        b.jump(hop);
        b.switch_to(hop);
        b.jump(end);
        b.switch_to(end);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        while run(&mut f) {}
        assert_eq!(f.layout.len(), 1, "{f}");
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn merges_linear_chain() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let second = b.block();
        let y = b.add(x.into(), Operand::Imm(1));
        b.jump(second);
        b.switch_to(second);
        let z = b.add(y.into(), Operand::Imm(2));
        b.ret(Some(z.into()));
        let mut f = b.finish();
        assert!(merge_blocks(&mut f));
        assert_eq!(f.layout.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn does_not_merge_into_loop_header() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let header = b.block();
        b.jump(header);
        b.switch_to(header);
        b.br(CmpOp::Lt, x.into(), Operand::Imm(10), header);
        b.ret(None);
        let mut f = b.finish();
        // header has 2 preds (entry + itself): no merge.
        merge_blocks(&mut f);
        assert_eq!(f.layout.len(), 2);
        assert!(verify_function(&f).is_ok());
    }
}
