//! Relation-driven global optimizations over predicated code.
//!
//! The classic passes in [`crate::local`] and [`crate::dce`] treat a
//! guard predicate as an opaque token: two guarded instructions relate
//! only when their guards are literally equal. After if-conversion the
//! interesting redundancy is *between* guards — a computation under `p`
//! repeated under a nested predicate `q ⊆ p`, or a define under `p`
//! whose only readers run under predicates disjoint from `p`. This
//! module asks the predicate partition graph
//! ([`hyperpred_ir::RelationDb`]) those questions and performs three
//! transformations:
//!
//! * **Guarded CSE** — `p: d1 = a ⊕ b` followed by `q: d2 = a ⊕ b`
//!   rewrites the second to `q: mov d2, d1`: whenever the copy fires
//!   (`q` true), `q ⊆ p` says the first define also fired, with the
//!   same operand values.
//! * **Guarded copy propagation** — after `p: mov d, s`, a use of `d`
//!   guarded by `q ⊆ p` reads `s` directly.
//! * **Relation DCE** — a guarded define whose destination is fully
//!   redefined later in the same block is deleted when every
//!   intervening reader executes under a guard *disjoint* from the
//!   define's: a reader that fires proves the define was nullified, so
//!   it observes the pre-define value either way.
//!
//! Every block is walked forward replaying the [`RelAnalysis`] and
//! [`MustDefined`] transfer functions from the block-entry fixpoint,
//! so each query is asked of the relation state in force at that exact
//! program point; a fact is only used while the predicates it names
//! are stable (invalidated on any redefinition of them, like the
//! register facts).

use hyperpred_ir::analysis::{forward, DefState, ForwardAnalysis, MustDefined, RelAnalysis};
use hyperpred_ir::{Block, Cfg, Function, Inst, Op, Operand, PredReg, Reg, RelState};
use std::collections::HashMap;

/// Runs all three relation-driven passes on every block. Returns true
/// on change.
pub fn run(f: &mut Function) -> bool {
    // Relations only exist while the code is predicated; partially
    // converted or plain code skips the fixpoints entirely.
    if !f
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| i.guard.is_some()))
    {
        return false;
    }
    let cfg = Cfg::new(f);
    let rel = forward(f, &cfg, &RelAnalysis);
    let def = forward(f, &cfg, &MustDefined);
    let mut changed = false;
    for &b in &f.layout.clone() {
        let (Some(rs), Some(ds)) = (rel.entry[b.index()].as_ref(), def.entry[b.index()].as_ref())
        else {
            continue;
        };
        changed |= block_pass(f.block_mut(b), rs.clone(), ds.clone());
    }
    changed
}

/// Expression key for the guarded CSE table (guard deliberately *not*
/// part of the key — matches are resolved through the relation state).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    op: Op,
    srcs: Vec<Operand>,
    speculative: bool,
}

/// A recorded available expression: the register holding it and the
/// guard it was computed under.
#[derive(Debug, Clone, Copy)]
struct Avail {
    reg: Reg,
    guard: Option<PredReg>,
}

/// A guarded define awaiting a relation-DCE verdict.
struct DeadCand {
    /// Index of the define in the block.
    index: usize,
    /// Its destination register.
    dst: Reg,
    /// Its guard.
    guard: PredReg,
    /// False once the guard has been redefined — later readers can no
    /// longer be compared against the value the define saw.
    guard_clean: bool,
}

fn commutative(op: Op) -> bool {
    matches!(
        op,
        Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor | Op::FAdd | Op::FMul
    )
}

/// Pure value-producing instructions whose result depends only on the
/// listed operands (guarded or not).
///
/// Loads and `mov` are deliberately not candidates. A load's value can
/// change across stores, and on this in-order machine rewriting a
/// redundant load into a `mov` trades a (perfect-cache) load for a
/// dependence on the earlier destination — measurably worse on grep
/// and sc. CSE-ing a `mov` is strictly a renaming: it turns parallel
/// copies of one source into a serial copy *chain* and leaves extra
/// copies behind after scheduling (wc's inner loop grew by one `mov`
/// per iteration); copy propagation is the profitable transformation
/// for moves and is handled separately above.
fn cse_candidate(inst: &Inst) -> bool {
    inst.dst.is_some()
        && !inst.op.has_side_effects()
        && !inst.op.is_pred_def()
        && !inst.op.is_load()
        && !matches!(
            inst.op,
            Op::Call
                | Op::Cmov
                | Op::CmovCom
                | Op::Select
                | Op::Nop
                | Op::Mov
                | Op::PredClear
                | Op::PredSet
        )
}

/// The guard under which this instruction *reads* its sources.
/// Predicate defines always execute (the guard becomes the `Pin`
/// input, Table 1), so their comparison operands are read
/// unconditionally.
fn read_guard(inst: &Inst) -> Option<PredReg> {
    if inst.op.is_pred_def() {
        None
    } else {
        inst.guard
    }
}

/// True when, at relation state `st`, an expression computed under
/// `avail_guard` is certainly up to date for a reader under `q`.
fn available_under(st: &RelState, avail_guard: Option<PredReg>, q: Option<PredReg>) -> bool {
    match avail_guard {
        None => true,
        Some(p) => st.known_true(p) || q.is_some_and(|q| q == p || st.subset(q, p)),
    }
}

fn block_pass(block: &mut Block, mut st: RelState, mut ds: DefState) -> bool {
    let mut changed = false;
    // reg -> recorded copy source and the guard of the defining mov.
    let mut copies: HashMap<Reg, (Operand, PredReg)> = HashMap::new();
    // expression -> register (+ guard) holding its value.
    let mut avail: HashMap<Key, Avail> = HashMap::new();
    let mut dead: Vec<DeadCand> = Vec::new();
    let mut delete: Vec<usize> = Vec::new();

    for (i, inst) in block.insts.iter_mut().enumerate() {
        let rq = read_guard(inst);

        // 1. Guarded copy propagation: substitute `s` for `d` after
        //    `p: mov d, s` when the read's guard proves p fired, and
        //    the substitute is itself a safe read at this point.
        for s in &mut inst.srcs {
            if let Operand::Reg(r) = *s {
                if let Some(&(rep, p)) = copies.get(&r) {
                    let defined = match rep {
                        Operand::Imm(_) => true,
                        Operand::Reg(sr) => ds.reg_ok(sr, rq),
                    };
                    if rep != *s && defined && available_under(&st, Some(p), rq) {
                        *s = rep;
                        changed = true;
                    }
                }
            }
        }

        // 2. Guarded CSE: rewrite a recomputation into a guarded move
        //    from the register already holding the value.
        let mut record = None;
        if cse_candidate(inst) {
            let mut srcs = inst.srcs.clone();
            if commutative(inst.op) {
                srcs.sort_by_key(|o| match o {
                    Operand::Reg(r) => (0u8, r.0 as i64),
                    Operand::Imm(v) => (1u8, *v),
                });
            }
            let key = Key {
                op: inst.op,
                srcs,
                speculative: inst.speculative,
            };
            match avail.get(&key) {
                Some(&prev)
                    if Some(prev.reg) != inst.dst
                        && available_under(&st, prev.guard, inst.guard)
                        && ds.reg_ok(prev.reg, inst.guard) =>
                {
                    inst.op = Op::Mov;
                    inst.srcs = vec![Operand::Reg(prev.reg)];
                    inst.speculative = false;
                    changed = true;
                }
                Some(_) => {}
                None => record = Some(key),
            }
        }

        // 3. Relation DCE bookkeeping: readers of a pending define
        //    either prove themselves harmless (disjoint guard) or veto
        //    the deletion; any exit may expose the value downstream.
        if inst.is_exit() {
            dead.clear();
        } else {
            dead.retain(|c| {
                let reads = inst.src_regs().any(|r| r == c.dst);
                if !reads {
                    return true;
                }
                c.guard_clean && rq.is_some_and(|q| st.disjoint(q, c.guard))
            });
        }

        // 4. Predicate redefinitions invalidate facts naming them.
        if inst.defines_all_preds() {
            copies.clear();
            avail.retain(|_, v| v.guard.is_none());
            for c in &mut dead {
                c.guard_clean = false;
            }
        } else {
            for p in inst.pred_defs() {
                copies.retain(|_, &mut (_, g)| g != p);
                avail.retain(|_, v| v.guard != Some(p));
                for c in &mut dead {
                    if c.guard == p {
                        c.guard_clean = false;
                    }
                }
            }
        }

        // 5. Register definitions: resolve pending death verdicts,
        //    invalidate stale facts, then record the new ones.
        if let Some(d) = inst.dst {
            if !inst.is_partial_reg_def() {
                dead.retain(|c| {
                    if c.dst == d {
                        delete.push(c.index);
                        changed = true;
                        false
                    } else {
                        true
                    }
                });
            }
            copies.remove(&d);
            copies.retain(|_, (v, _)| v.as_reg() != Some(d));
            avail.retain(|k, v| v.reg != d && !k.srcs.iter().any(|s| s.as_reg() == Some(d)));
            if let Some(key) = record {
                if !key.srcs.iter().any(|s| s.as_reg() == Some(d)) {
                    avail.insert(
                        key,
                        Avail {
                            reg: d,
                            guard: inst.guard,
                        },
                    );
                }
            }
            if inst.op == Op::Mov {
                if let Some(g) = inst.guard {
                    if inst.srcs[0].as_reg() != Some(d) {
                        copies.insert(d, (inst.srcs[0], g));
                    }
                }
            }
            if let Some(p) = inst.guard {
                // A fresh deletion candidate — but only when the
                // destination is already fully defined, so removing
                // the define cannot weaken any reader's definedness.
                if !inst.op.has_side_effects() && !inst.op.is_pred_def() && ds.reg(d) {
                    dead.push(DeadCand {
                        index: i,
                        dst: d,
                        guard: p,
                        guard_clean: true,
                    });
                }
            }
        }

        RelAnalysis.transfer(inst, &mut st);
        MustDefined.transfer(inst, &mut ds);
        if inst.ends_block() {
            break;
        }
    }

    if !delete.is_empty() {
        delete.sort_unstable();
        let mut k = 0;
        let mut idx = 0usize;
        block.insts.retain(|_| {
            let drop = k < delete.len() && delete[k] == idx;
            if drop {
                k += 1;
            }
            idx += 1;
            !drop
        });
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, Module, PredType};

    /// Builds `p, pbar = (x != 0)<U, U̅>` and a nested `q = (y > 0)<U>`
    /// under `p`, so `q ⊆ p` and `pbar` is disjoint from both.
    fn preds(b: &mut FuncBuilder, x: Reg, y: Reg) -> (PredReg, PredReg, PredReg) {
        let p = b.fresh_pred();
        let pbar = b.fresh_pred();
        let q = b.fresh_pred();
        b.pred_def(
            CmpOp::Ne,
            &[(p, PredType::U), (pbar, PredType::UBar)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.pred_def(
            CmpOp::Gt,
            &[(q, PredType::U)],
            y.into(),
            Operand::Imm(0),
            Some(p),
        );
        (p, pbar, q)
    }

    fn finish(b: FuncBuilder) -> Function {
        let mut m = Module::new();
        m.push(b.finish());
        m.link().unwrap();
        m.funcs.pop().unwrap()
    }

    #[test]
    fn cse_merges_subset_guarded_recomputation() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, _, q) = preds(&mut b, x, y);
        let d1 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d1, x.into(), y.into());
        b.guard_last(p);
        let d2 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d2, x.into(), y.into());
        b.guard_last(q);
        let s = b.add(d1.into(), d2.into());
        b.ret(Some(s.into()));
        let mut f = finish(b);
        assert!(run(&mut f));
        let second = block_inst(&f, |i| i.guard == Some(q) && i.dst == Some(d2));
        assert_eq!(second.op, Op::Mov, "q ⊆ p lets the add become a move");
        assert_eq!(second.srcs, vec![Operand::Reg(d1)]);
    }

    #[test]
    fn cse_keeps_disjoint_guarded_recomputation() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, pbar, _) = preds(&mut b, x, y);
        let d1 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d1, x.into(), y.into());
        b.guard_last(p);
        let d2 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d2, x.into(), y.into());
        b.guard_last(pbar);
        let s = b.add(d1.into(), d2.into());
        b.ret(Some(s.into()));
        let mut f = finish(b);
        run(&mut f);
        let second = block_inst(&f, |i| i.guard == Some(pbar) && i.dst == Some(d2));
        assert_eq!(second.op, Op::Add, "p̄ ⊄ p: the value may be stale");
    }

    #[test]
    fn copy_propagates_through_subset_guards() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, _, q) = preds(&mut b, x, y);
        let d = b.mov(Operand::Imm(0));
        b.mov_to(d, x.into());
        b.guard_last(p);
        let out = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, out, d.into(), Operand::Imm(1));
        b.guard_last(q);
        b.ret(Some(out.into()));
        let mut f = finish(b);
        assert!(run(&mut f));
        let use_ = block_inst(&f, |i| i.guard == Some(q) && i.dst == Some(out));
        assert_eq!(use_.srcs[0], Operand::Reg(x), "q ⊆ p: the move has fired");
    }

    #[test]
    fn deletes_define_read_only_under_disjoint_guard() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, pbar, _) = preds(&mut b, x, y);
        let d = b.mov(Operand::Imm(7));
        b.op2_to(Op::Mul, d, x.into(), y.into());
        b.guard_last(p);
        let out = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, out, d.into(), Operand::Imm(1));
        b.guard_last(pbar); // fires only when the mul did not
        b.mov_to(d, Operand::Imm(0)); // full redefinition
        let s = b.add(d.into(), out.into());
        b.ret(Some(s.into()));
        let mut f = finish(b);
        assert!(run(&mut f));
        assert!(
            !f.blocks[0].insts.iter().any(|i| i.op == Op::Mul),
            "the guarded mul is unobservable"
        );
    }

    #[test]
    fn keeps_define_read_under_same_guard() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, _, _) = preds(&mut b, x, y);
        let d = b.mov(Operand::Imm(7));
        b.op2_to(Op::Mul, d, x.into(), y.into());
        b.guard_last(p);
        let out = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, out, d.into(), Operand::Imm(1));
        b.guard_last(p); // observes the product
        b.mov_to(d, Operand::Imm(0));
        let s = b.add(d.into(), out.into());
        b.ret(Some(s.into()));
        let mut f = finish(b);
        run(&mut f);
        assert!(f.blocks[0].insts.iter().any(|i| i.op == Op::Mul));
    }

    #[test]
    fn guard_redefinition_blocks_stale_merge() {
        // p is redefined between the two adds: q ⊆ p-now says nothing
        // about the value computed under p-then.
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let y = b.param();
        let (p, _, q) = preds(&mut b, x, y);
        let d1 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d1, x.into(), y.into());
        b.guard_last(p);
        b.pred_def(
            CmpOp::Lt,
            &[(p, PredType::U)],
            y.into(),
            Operand::Imm(3),
            None,
        );
        let d2 = b.mov(Operand::Imm(0));
        b.op2_to(Op::Add, d2, x.into(), y.into());
        b.guard_last(q);
        let s = b.add(d1.into(), d2.into());
        b.ret(Some(s.into()));
        let mut f = finish(b);
        run(&mut f);
        let second = block_inst(&f, |i| i.guard == Some(q) && i.dst == Some(d2));
        assert_eq!(second.op, Op::Add);
    }

    fn block_inst(f: &Function, pred: impl Fn(&Inst) -> bool) -> &Inst {
        f.blocks[0]
            .insts
            .iter()
            .find(|i| pred(i))
            .expect("instruction present")
    }
}
