//! Global dead code elimination, driven by predicate-aware liveness.

use hyperpred_ir::liveness::{branch_target, is_removable, step_backwards, Liveness};
use hyperpred_ir::{Cfg, Function};

/// Removes instructions whose outputs are dead. Returns true on change.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::new(f);
    let lv = Liveness::compute(f, &cfg);
    let mut changed = false;
    for &b in &f.layout.clone() {
        let mut live = lv.live_out[b.index()].clone();
        let insts = &mut f.block_mut(b).insts;
        // Walk backwards, deleting as we go; a deleted instruction's uses
        // are simply never added to the live set.
        let mut keep = vec![true; insts.len()];
        for (i, inst) in insts.iter().enumerate().rev() {
            let out_dead = inst.dst.is_none_or(|d| !live.regs.contains(&d));
            let preds_dead = inst.pdsts.iter().all(|pd| !live.preds.contains(&pd.reg));
            if is_removable(inst) && out_dead && preds_dead {
                keep[i] = false;
                changed = true;
                continue;
            }
            if let Some(t) = branch_target(inst) {
                live.union_with(&lv.live_in[t.index()]);
            }
            step_backwards(inst, &mut live);
        }
        if keep.iter().any(|k| !k) {
            let mut idx = 0;
            insts.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_ir::{CmpOp, FuncBuilder, MemWidth, Op, Operand, PredType};

    #[test]
    fn removes_unused_computation() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let _dead = b.add(x.into(), Operand::Imm(1));
        let live = b.add(x.into(), Operand::Imm(2));
        b.ret(Some(live.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        b.store(MemWidth::Word, x.into(), Operand::Imm(0), Operand::Imm(1));
        let _unused = b.call("t", vec![x.into()]);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn removes_dead_chain_transitively() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let a = b.add(x.into(), Operand::Imm(1));
        let c = b.add(a.into(), Operand::Imm(2));
        let _d = b.add(c.into(), Operand::Imm(3));
        b.ret(Some(x.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1, "whole chain dead in one pass");
    }

    #[test]
    fn removes_dead_pred_define() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        b.ret(Some(x.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_pred_define_with_live_guard_use() {
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let p = b.fresh_pred();
        b.pred_def(
            CmpOp::Eq,
            &[(p, PredType::U)],
            x.into(),
            Operand::Imm(0),
            None,
        );
        let out = b.mov(Operand::Imm(1));
        b.mov_to(out, Operand::Imm(2));
        b.guard_last(p);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        run(&mut f);
        assert!(f.blocks[0].insts.iter().any(|i| i.op.is_pred_def()));
    }

    #[test]
    fn dead_load_is_removed_even_if_trapping() {
        // A dead load can be deleted (removing a potential trap is a legal
        // refinement in this compiler, matching the paper's silent-load
        // baseline).
        let mut b = FuncBuilder::new("t");
        let x = b.param();
        let _v = b.load(MemWidth::Word, x.into(), Operand::Imm(0));
        b.ret(Some(x.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_cmov_with_live_dest() {
        let mut b = FuncBuilder::new("t");
        let c = b.param();
        let out = b.mov(Operand::Imm(1));
        b.cmov(out, Operand::Imm(2), c.into());
        b.ret(Some(out.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn removes_nops() {
        let mut b = FuncBuilder::new("t");
        b.emit_with(Op::Nop, |_| {});
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
    }
}
