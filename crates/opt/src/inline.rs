//! Function inlining.
//!
//! The paper's compiler (IMPACT) inlines aggressively before region
//! formation; without inlining, small helpers in hot loops (a character
//! classifier, a precedence lookup) make their callers' blocks *hazardous*
//! for hyperblock formation. This pass inlines small non-recursive callees
//! before profiling, benefiting every model equally.

use hyperpred_ir::{BlockId, Function, Inst, Module, Op, Operand, PredReg, Reg};

/// Inlining thresholds.
#[derive(Debug, Clone, Copy)]
pub struct InlineConfig {
    /// Callees larger than this are never inlined.
    pub max_callee_insts: usize,
    /// Stop growing a caller beyond this size.
    pub max_caller_insts: usize,
    /// Inlining rounds (chains of calls need one round per level).
    pub rounds: usize,
}

impl Default for InlineConfig {
    fn default() -> InlineConfig {
        InlineConfig {
            max_callee_insts: 64,
            max_caller_insts: 4096,
            rounds: 3,
        }
    }
}

/// Inlines eligible calls in every function. Returns the number of call
/// sites inlined.
pub fn run_module(m: &mut Module, config: &InlineConfig) -> usize {
    let mut total = 0;
    for _ in 0..config.rounds {
        let mut round = 0;
        for ci in 0..m.funcs.len() {
            loop {
                // Find the next eligible call site in function `ci`.
                let site = find_site(m, ci, config);
                let Some((block, index, callee)) = site else {
                    break;
                };
                let g = m.funcs[callee].clone();
                inline_at(&mut m.funcs[ci], block, index, &g);
                round += 1;
            }
        }
        if round == 0 {
            break;
        }
        total += round;
    }
    debug_assert!(
        m.verify().is_ok(),
        "inlining broke module: {:?}",
        m.verify().err()
    );
    total
}

fn find_site(m: &Module, caller: usize, config: &InlineConfig) -> Option<(BlockId, usize, usize)> {
    let f = &m.funcs[caller];
    if f.size() > config.max_caller_insts {
        return None;
    }
    for &b in &f.layout {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if inst.op != Op::Call {
                continue;
            }
            let callee = inst.callee.expect("linked").index();
            if callee == caller {
                continue; // direct recursion
            }
            let g = &m.funcs[callee];
            if g.size() > config.max_callee_insts {
                continue;
            }
            // Predicated or predicate-using callees are never produced
            // before region formation; keep the invariant simple.
            let uses_preds = g
                .insts()
                .any(|(_, _, i)| i.guard.is_some() || !i.pdsts.is_empty() || i.defines_all_preds());
            if uses_preds {
                continue;
            }
            return Some((b, i, callee));
        }
    }
    None
}

/// Splices `g`'s body in place of the call at `f[block][index]`.
fn inline_at(f: &mut Function, block: BlockId, index: usize, g: &Function) {
    let call = f.block(block).insts[index].clone();
    debug_assert_eq!(call.op, Op::Call);
    let ret_dst = call.dst.expect("calls have destinations");

    // Fresh register/predicate space for the callee.
    let reg_base = f.reg_count;
    f.reg_count += g.reg_count;
    let pred_base = f.pred_count;
    f.pred_count += g.pred_count;
    let map_reg = |r: Reg| Reg(reg_base + r.0);
    let map_pred = |p: PredReg| PredReg(pred_base + p.0);

    // New blocks for the callee body plus the caller continuation.
    let mut map_block: Vec<BlockId> = Vec::with_capacity(g.blocks.len());
    for _ in 0..g.blocks.len() {
        map_block.push(f.add_block_detached());
    }
    let cont = f.add_block_detached();

    // Split the caller block.
    let mut prefix: Vec<Inst> = f.block(block).insts.clone();
    let suffix: Vec<Inst> = prefix.split_off(index + 1);
    prefix.pop(); // the call itself
                  // Parameter copies.
    for (&p, &arg) in g.params.iter().zip(&call.srcs) {
        let mut mv = f.make_inst(Op::Mov);
        mv.dst = Some(map_reg(p));
        mv.srcs = vec![arg];
        prefix.push(mv);
    }
    let entry = map_block[g.entry().index()];
    let mut jump_in = f.make_inst(Op::Jump);
    jump_in.target = Some(entry);
    prefix.push(jump_in);
    f.block_mut(block).insts = prefix;
    f.block_mut(cont).insts = suffix;

    // Clone the body.
    for &gb in &g.layout {
        let mut out = Vec::with_capacity(g.block(gb).insts.len() + 1);
        for inst in &g.block(gb).insts {
            match inst.op {
                Op::Ret => {
                    let mut mv = f.make_inst(Op::Mov);
                    mv.dst = Some(ret_dst);
                    mv.srcs = vec![inst
                        .srcs
                        .first()
                        .map(|&s| match s {
                            Operand::Reg(r) => Operand::Reg(map_reg(r)),
                            imm => imm,
                        })
                        .unwrap_or(Operand::Imm(0))];
                    out.push(mv);
                    let mut j = f.make_inst(Op::Jump);
                    j.target = Some(cont);
                    out.push(j);
                    // Anything after a ret in the block is unreachable.
                    break;
                }
                _ => {
                    let mut ci = f.clone_inst(inst);
                    ci.dst = ci.dst.map(map_reg);
                    for s in &mut ci.srcs {
                        if let Operand::Reg(r) = *s {
                            *s = Operand::Reg(map_reg(r));
                        }
                    }
                    ci.guard = ci.guard.map(map_pred);
                    for pd in &mut ci.pdsts {
                        pd.reg = map_pred(pd.reg);
                    }
                    if let Some(t) = ci.target {
                        ci.target = Some(map_block[t.index()]);
                    }
                    out.push(ci);
                }
            }
        }
        let nb = map_block[gb.index()];
        f.block_mut(nb).insts = out;
    }

    // Layout: caller block, callee body (in callee layout order, preserving
    // its fall-throughs), continuation, rest.
    let pos = f.layout_pos(block).expect("block laid out");
    let mut insert = pos + 1;
    for &gb in &g.layout {
        f.layout.insert(insert, map_block[gb.index()]);
        insert += 1;
    }
    f.layout.insert(insert, cont);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_lang::compile;
    use hyperpred_lang::lower::entry_args;

    fn run(m: &Module, args: &[i64]) -> i64 {
        Emulator::new(m)
            .run("main", &entry_args(args), &mut NullSink)
            .unwrap()
            .ret
    }

    #[test]
    fn inlines_small_leaf() {
        let src = "int sq(int x) { return x * x; }
                   int main() { int i; int s; s = 0;
                       for (i = 0; i < 10; i += 1) s += sq(i);
                       return s; }";
        let mut m = compile(src).unwrap();
        let want = run(&m, &[]);
        let n = run_module(&mut m, &InlineConfig::default());
        assert!(n >= 1);
        m.verify().unwrap();
        assert_eq!(run(&m, &[]), want);
        // No calls remain in main.
        let main = &m.funcs[m.func_by_name("main").unwrap().index()];
        assert!(main.insts().all(|(_, _, i)| i.op != Op::Call));
    }

    #[test]
    fn inlines_call_chains_across_rounds() {
        let src = "int a(int x) { return x + 1; }
                   int b(int x) { return a(x) * 2; }
                   int main() { return b(20); }";
        let mut m = compile(src).unwrap();
        let want = run(&m, &[]);
        run_module(&mut m, &InlineConfig::default());
        assert_eq!(run(&m, &[]), want);
        let main = &m.funcs[m.func_by_name("main").unwrap().index()];
        assert!(main.insts().all(|(_, _, i)| i.op != Op::Call));
    }

    #[test]
    fn skips_recursion() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                   int main() { return fib(10); }";
        let mut m = compile(src).unwrap();
        let want = run(&m, &[]);
        run_module(&mut m, &InlineConfig::default());
        assert_eq!(run(&m, &[]), want);
        // fib still calls itself.
        let fib = &m.funcs[m.func_by_name("fib").unwrap().index()];
        assert!(fib.insts().any(|(_, _, i)| i.op == Op::Call));
    }

    #[test]
    fn respects_size_limit() {
        let src = "int big(int x) {
                       int s; s = x;
                       s += 1; s += 2; s += 3; s += 4; s += 5; s += 6; s += 7;
                       s += 1; s += 2; s += 3; s += 4; s += 5; s += 6; s += 7;
                       return s;
                   }
                   int main() { return big(1); }";
        let mut m = compile(src).unwrap();
        let tiny = InlineConfig {
            max_callee_insts: 4,
            ..InlineConfig::default()
        };
        assert_eq!(run_module(&mut m, &tiny), 0);
    }

    #[test]
    fn multiple_sites_and_control_flow() {
        let src = "int pick(int a, int b) { if (a > b) return a; return b; }
                   int main() {
                       int i; int s; s = 0;
                       for (i = 0; i < 20; i += 1) s += pick(i, 10) + pick(2 * i, 15);
                       return s;
                   }";
        let mut m = compile(src).unwrap();
        let want = run(&m, &[]);
        let n = run_module(&mut m, &InlineConfig::default());
        assert!(n >= 2);
        m.verify().unwrap();
        assert_eq!(run(&m, &[]), want);
    }

    #[test]
    fn arrays_and_globals_still_work() {
        let src = "int t[8];
                   int get(int i) { return t[i]; }
                   void set(int i, int v) { t[i] = v; }
                   int main() {
                       int i;
                       for (i = 0; i < 8; i += 1) set(i, i * 3);
                       int s; s = 0;
                       for (i = 0; i < 8; i += 1) s += get(i);
                       return s;
                   }";
        let mut m = compile(src).unwrap();
        let want = run(&m, &[]);
        run_module(&mut m, &InlineConfig::default());
        assert_eq!(run(&m, &[]), want);
    }
}
