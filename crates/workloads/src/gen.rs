//! Seeded, profile-driven MiniC workload generator.
//!
//! Extends the bounded grammar of `tests/random_programs.rs` into a
//! property-based *workload* generator: each [`Profile`] biases the
//! statement and expression mix toward a different hardware stressor
//! (branch resolution, reduction chains, memory traffic, call overhead,
//! or pathological transformation growth). Every generated program is
//! total by construction — loops are bounded with unique induction
//! variables, division and modulo use nonzero literal divisors only, and
//! array indices are masked into bounds — so any divergence between
//! compilation models observed on one is a compiler bug, not undefined
//! behavior.
//!
//! Generation is deterministic: `generate(profile, seed)` always returns
//! byte-identical source, which is what lets the soak journal fingerprint
//! and resume over program indices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Statement-mix profile for generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Dense data-dependent control flow: if/else trees, ternaries, and
    /// opposite-sense guard pairs — the shapes if-conversion feeds on.
    Branchy,
    /// Long accumulation chains in loops with few branches; stresses
    /// scheduling of dependence chains rather than control flow.
    Reduction,
    /// Global arrays read and written inside loops; stresses the memory
    /// pipeline and the cache model.
    Memory,
    /// Helper functions invoked from loops; stresses call/return overhead
    /// and inlining decisions.
    CallHeavy,
    /// Adversarial: deep nesting, opposite-sense guard chains, and many
    /// small constant-trip-count loops that invite aggressive unrolling
    /// and hyperblock growth.
    Nasty,
}

impl Profile {
    /// All profiles, in a stable order.
    pub const ALL: [Profile; 5] = [
        Profile::Branchy,
        Profile::Reduction,
        Profile::Memory,
        Profile::CallHeavy,
        Profile::Nasty,
    ];

    /// Stable lowercase name (used in CLI flags, journal keys, and
    /// generated workload names).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Branchy => "branchy",
            Profile::Reduction => "reduction",
            Profile::Memory => "memory",
            Profile::CallHeavy => "callheavy",
            Profile::Nasty => "nasty",
        }
    }

    /// Inverse of [`Profile::name`].
    pub fn from_name(s: &str) -> Option<Profile> {
        Profile::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated workload: MiniC source plus default arguments for `main`.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// `gen-<profile>-<seed>`, unique per (profile, seed).
    pub name: String,
    /// The profile this program was drawn from.
    pub profile: Profile,
    /// The seed that produced it (regenerate with `generate(profile, seed)`).
    pub seed: u64,
    /// MiniC source text.
    pub source: String,
    /// Arguments to `main` (two small integers derived from the seed).
    pub args: Vec<i64>,
}

/// Statement weights (percent, summing to ≤ 100; remainder is xor-assign).
struct Weights {
    assign: u32,
    branch: u32,
    opposite_pair: u32,
    bounded_loop: u32,
    tiny_loop: u32,
    store: u32,
    call: u32,
}

impl Weights {
    fn for_profile(p: Profile) -> Weights {
        match p {
            Profile::Branchy => Weights {
                assign: 20,
                branch: 40,
                opposite_pair: 15,
                bounded_loop: 10,
                tiny_loop: 0,
                store: 0,
                call: 0,
            },
            Profile::Reduction => Weights {
                assign: 60,
                branch: 5,
                opposite_pair: 0,
                bounded_loop: 25,
                tiny_loop: 0,
                store: 0,
                call: 0,
            },
            Profile::Memory => Weights {
                assign: 15,
                branch: 10,
                opposite_pair: 0,
                bounded_loop: 25,
                tiny_loop: 0,
                store: 35,
                call: 0,
            },
            Profile::CallHeavy => Weights {
                assign: 20,
                branch: 10,
                opposite_pair: 0,
                bounded_loop: 20,
                tiny_loop: 0,
                store: 0,
                call: 40,
            },
            Profile::Nasty => Weights {
                assign: 10,
                branch: 20,
                opposite_pair: 20,
                bounded_loop: 5,
                tiny_loop: 30,
                store: 5,
                call: 0,
            },
        }
    }
}

const VARS: [&str; 5] = ["a", "b", "c", "d", "e"];
/// Global array length; indices are masked with `& (ARRAY_LEN - 1)` so any
/// integer expression indexes in bounds.
const ARRAY_LEN: usize = 64;

struct Gen {
    r: StdRng,
    profile: Profile,
    w: Weights,
    /// Number of loop induction variables handed out so far.
    loops: usize,
    /// Number of global arrays (`t0..`).
    arrays: usize,
    /// Number of helper functions (`h0..`).
    helpers: usize,
    /// Maximum statement nesting depth.
    max_depth: usize,
    /// Variables in the current scope (main's locals, or a helper's
    /// parameters while its body is being generated).
    vars: Vec<&'static str>,
    /// Helpers callable from the current scope: `h0..h<callable>`. While
    /// generating `h<k>` this is `k`, keeping the call graph acyclic.
    callable: usize,
}

impl Gen {
    fn new(profile: Profile, seed: u64) -> Gen {
        let mut r = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let arrays = match profile {
            Profile::Memory => r.gen_range(1..=3usize),
            Profile::Nasty => 1,
            _ => 0,
        };
        let helpers = match profile {
            Profile::CallHeavy => r.gen_range(2..=4usize),
            _ => 0,
        };
        let max_depth = match profile {
            Profile::Nasty => 5,
            Profile::Branchy => 4,
            _ => 3,
        };
        Gen {
            r,
            profile,
            w: Weights::for_profile(profile),
            loops: 0,
            arrays,
            helpers,
            max_depth,
            vars: VARS.to_vec(),
            callable: helpers,
        }
    }

    /// A variable from the current scope.
    fn var(&mut self) -> &'static str {
        self.vars[self.r.gen_range(0..self.vars.len())]
    }

    /// A condition suitable for `if (...)`.
    fn cond(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        match self.r.gen_range(0..6) {
            0 => format!("{a} < {b}"),
            1 => format!("{a} > {b}"),
            2 => format!("{a} == {b}"),
            3 => format!("{a} != {b}"),
            4 => format!("({a} < {b}) && ({a} != 0)"),
            _ => format!("({a} > {b}) || ({b} < 0)"),
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.r.gen_ratio(1, 3) {
            return self.leaf();
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.r.gen_range(0..13) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {})", self.r.gen_range(1..9)),
            4 => format!("({a} % {})", self.r.gen_range(1..9)),
            5 => format!("({a} < {b})"),
            6 => format!("({a} == {b})"),
            7 => format!("({a} && {b})"),
            8 => format!("({a} || {b})"),
            9 => format!("({a} > {b} ? {a} : {b})"),
            10 => format!("({a} & {b})"),
            11 => format!("({a} ^ {b})"),
            _ => format!("(!{a})"),
        }
    }

    fn leaf(&mut self) -> String {
        // Array reads and helper calls are leaves so every profile's
        // expressions stay shallow and readable.
        if self.arrays > 0 && self.r.gen_ratio(1, 4) {
            let t = self.r.gen_range(0..self.arrays);
            let v = self.var();
            return format!("t{t}[({v} & {})]", ARRAY_LEN - 1);
        }
        if self.callable > 0 && self.r.gen_ratio(1, 4) {
            let h = self.r.gen_range(0..self.callable);
            let x = self.var();
            let y = self.var();
            return format!("h{h}({x}, {y})");
        }
        if self.r.gen_bool(0.5) {
            format!("{}", self.r.gen_range(-20..20))
        } else {
            self.var().to_string()
        }
    }

    fn stmt(&mut self, depth: usize, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        let mut roll = self.r.gen_range(0..100u32);
        let mut pick = |w: u32| {
            if roll < w {
                true
            } else {
                roll -= w;
                false
            }
        };
        if pick(self.w.assign) {
            let v = self.var();
            let e = self.expr(2);
            let op = ["=", "+=", "-=", "*="][self.r.gen_range(0..4)];
            out.push_str(&format!("{pad}{v} {op} {e};\n"));
        } else if pick(self.w.branch) && depth > 0 {
            let c = self.cond();
            out.push_str(&format!("{pad}if ({c}) {{\n"));
            self.stmt(depth - 1, out, indent + 1);
            if self.r.gen_bool(0.7) {
                out.push_str(&format!("{pad}}} else {{\n"));
                self.stmt(depth - 1, out, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        } else if pick(self.w.opposite_pair) && depth > 0 {
            // Opposite-sense guard pair: the same comparison guarded both
            // ways, the shape that exercises U/U̅ predicate partitions.
            let c = self.cond();
            out.push_str(&format!("{pad}if ({c}) {{\n"));
            self.stmt(depth - 1, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
            out.push_str(&format!("{pad}if (!({c})) {{\n"));
            self.stmt(depth - 1, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        } else if pick(self.w.bounded_loop) && depth > 0 {
            let i = format!("i{}", self.loops);
            self.loops += 1;
            let n = self.r.gen_range(2..10);
            out.push_str(&format!("{pad}for ({i} = 0; {i} < {n}; {i} += 1) {{\n"));
            self.stmt(depth - 1, out, indent + 1);
            if self.profile == Profile::Reduction {
                let v = self.var();
                let u = self.var();
                out.push_str(&format!(
                    "{}{v} += ({u} * {}) + {i};\n",
                    "    ".repeat(indent + 1),
                    self.r.gen_range(1..6),
                ));
            }
            out.push_str(&format!("{pad}}}\n"));
        } else if pick(self.w.tiny_loop) {
            // Small constant-trip self-loop with a fat straight-line body:
            // prime unrolling bait.
            let i = format!("i{}", self.loops);
            self.loops += 1;
            let n = self.r.gen_range(2..=6);
            let body_len = self.r.gen_range(2..=5usize);
            out.push_str(&format!("{pad}for ({i} = 0; {i} < {n}; {i} += 1) {{\n"));
            let inner = "    ".repeat(indent + 1);
            for _ in 0..body_len {
                let v = self.var();
                let e = self.expr(1);
                out.push_str(&format!("{inner}{v} += {e} + {i};\n"));
            }
            out.push_str(&format!("{pad}}}\n"));
        } else if pick(self.w.store) && self.arrays > 0 {
            let t = self.r.gen_range(0..self.arrays);
            let v = self.var();
            let e = self.expr(2);
            let op = ["=", "+="][self.r.gen_range(0..2)];
            out.push_str(&format!("{pad}t{t}[({v} & {})] {op} {e};\n", ARRAY_LEN - 1));
        } else if pick(self.w.call) && self.callable > 0 {
            let h = self.r.gen_range(0..self.callable);
            let v = self.var();
            let x = self.expr(1);
            let y = self.expr(1);
            out.push_str(&format!("{pad}{v} += h{h}({x}, {y});\n"));
        } else {
            let v = self.var();
            let e = self.expr(1);
            out.push_str(&format!("{pad}{v} ^= {e};\n"));
        }
    }

    /// Helper function `h<k>`. Helpers only call lower-numbered helpers,
    /// so the call graph is acyclic and every program terminates.
    fn helper(&mut self, k: usize) -> String {
        // Inside `h<k>` only the parameters are in scope and only
        // lower-numbered helpers are callable.
        let outer_vars = std::mem::replace(&mut self.vars, vec!["x", "y"]);
        let outer_callable = std::mem::replace(&mut self.callable, k);
        let mut body = String::new();
        let n = self.r.gen_range(1..=3usize);
        for _ in 0..n {
            let e = self.expr(2);
            let v = ["x", "y"][self.r.gen_range(0..2)];
            let op = ["+=", "-=", "^="][self.r.gen_range(0..3)];
            body.push_str(&format!("    {v} {op} {e};\n"));
        }
        if k > 0 && self.r.gen_bool(0.5) {
            let callee = self.r.gen_range(0..k);
            body.push_str(&format!("    x += h{callee}(y, x - 1);\n"));
        }
        let ret = self.expr(1);
        self.vars = outer_vars;
        self.callable = outer_callable;
        format!("int h{k}(int x, int y) {{\n{body}    return x + y * 3 + {ret};\n}}\n\n")
    }

    fn program(&mut self) -> String {
        // Helpers reference only x/y/lower helpers; generate them first so
        // their RNG draws precede main's.
        let mut helpers = String::new();
        for k in 0..self.helpers {
            helpers.push_str(&self.helper(k));
        }

        let mut globals = String::new();
        for t in 0..self.arrays {
            let mut init = String::new();
            for j in 0..ARRAY_LEN {
                if j > 0 {
                    init.push_str(", ");
                }
                init.push_str(&format!("{}", self.r.gen_range(-50..50)));
            }
            globals.push_str(&format!("int t{t}[{ARRAY_LEN}] = {{{init}}};\n"));
        }
        if !globals.is_empty() {
            globals.push('\n');
        }

        let mut body = String::new();
        let nstmt = match self.profile {
            Profile::Nasty => self.r.gen_range(8..14),
            _ => self.r.gen_range(5..11),
        };
        let depth = self.max_depth;
        for _ in 0..nstmt {
            self.stmt(depth, &mut body, 1);
        }

        // Fold array contents into the checksum so stores are observable
        // in the architectural result, not just the trace.
        let mut sums = String::new();
        for t in 0..self.arrays {
            let i = format!("i{}", self.loops);
            self.loops += 1;
            sums.push_str(&format!(
                "    for ({i} = 0; {i} < {ARRAY_LEN}; {i} += 1) {{ e += t{t}[{i}]; }}\n"
            ));
        }

        let mut decls = String::new();
        for k in 0..self.loops.max(1) {
            decls.push_str(&format!("    int i{k}; i{k} = 0;\n"));
        }
        format!(
            "{globals}{helpers}int main(int a0, int b0) {{\n\
             \x20   int a; int b; int c; int d; int e;\n\
             \x20   a = a0; b = b0; c = a0 - b0; d = 7; e = -3;\n\
             {decls}{body}{sums}\
             \x20   return a + b * 3 + c * 5 + d * 7 + e * 11;\n}}"
        )
    }
}

/// Generates the program for `(profile, seed)`. Deterministic: the same
/// pair always yields byte-identical source and arguments.
pub fn generate(profile: Profile, seed: u64) -> GenProgram {
    let mut g = Gen::new(profile, seed);
    let source = g.program();
    let args = vec![(seed % 17) as i64 - 8, ((seed / 17) % 13) as i64 - 6];
    GenProgram {
        name: format!("gen-{}-{seed}", profile.name()),
        profile,
        seed,
        source,
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for p in Profile::ALL {
            for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
                let a = generate(p, seed);
                let b = generate(p, seed);
                assert_eq!(a.source, b.source, "{p} seed {seed}");
                assert_eq!(a.args, b.args, "{p} seed {seed}");
                assert_eq!(a.name, format!("gen-{}-{seed}", p.name()));
            }
        }
    }

    #[test]
    fn profiles_differ() {
        let srcs: Vec<_> = Profile::ALL
            .iter()
            .map(|&p| generate(p, 7).source)
            .collect();
        for i in 0..srcs.len() {
            for j in i + 1..srcs.len() {
                assert_ne!(srcs[i], srcs[j], "profiles {i} and {j} collide");
            }
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in Profile::ALL {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
        assert_eq!(Profile::from_name("bogus"), None);
    }

    #[test]
    fn every_profile_compiles_and_terminates() {
        use hyperpred_emu::{Emulator, NullSink};
        use hyperpred_lang::lower::entry_args;
        for p in Profile::ALL {
            for seed in 0..12u64 {
                let g = generate(p, seed);
                let m = hyperpred_lang::compile(&g.source)
                    .unwrap_or_else(|e| panic!("{}: compile error {e}\n{}", g.name, g.source));
                m.verify().unwrap();
                let mut emu = Emulator::new(&m).with_fuel(50_000_000);
                emu.run("main", &entry_args(&g.args), &mut NullSink)
                    .unwrap_or_else(|e| panic!("{}: runtime error {e}\n{}", g.name, g.source));
            }
        }
    }
}
