//! `alvinn` mini: the neural-net forward pass of 052.alvinn — FP
//! matrix-vector products with saturation clamps (ideal `cmov`/predication
//! targets) over many input presentations.

use crate::inputs::{float_array, floats};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    let (inputs, hidden, outputs, presentations) = match scale {
        Scale::Test => (24, 10, 4, 6),
        Scale::Full => (64, 24, 8, 60),
    };
    let w1 = floats(inputs * hidden, -0.5, 0.5, 0xA11);
    let w2 = floats(hidden * outputs, -0.5, 0.5, 0xA12);
    let x0 = floats(inputs, -1.0, 1.0, 0xA13);
    let source = format!(
        "{w1}{w2}{x0}
int ninputs = {inputs};
int nhidden = {hidden};
int noutputs = {outputs};
int npres = {presentations};
float x[{inputs}];
float hid[{hidden}];
float out[{outputs}];
int main() {{
    int p; int i; int j; int sat; float acc;
    sat = 0;
    for (i = 0; i < ninputs; i += 1) x[i] = x0[i];
    acc = 0.0;
    for (p = 0; p < npres; p += 1) {{
        for (j = 0; j < nhidden; j += 1) {{
            float s; s = 0.0;
            for (i = 0; i < ninputs; i += 1) {{
                s = s + w1[j * ninputs + i] * x[i];
            }}
            // Piecewise-linear squash with saturation (clamp branches).
            if (s > 1.0) {{ s = 1.0; sat += 1; }}
            if (s < -1.0) {{ s = -1.0; sat += 1; }}
            hid[j] = s;
        }}
        for (j = 0; j < noutputs; j += 1) {{
            float s; s = 0.0;
            for (i = 0; i < nhidden; i += 1) {{
                s = s + w2[j * nhidden + i] * hid[i];
            }}
            if (s > 1.0) {{ s = 1.0; sat += 1; }}
            if (s < -1.0) {{ s = -1.0; sat += 1; }}
            out[j] = s;
            acc = acc + s * s;
        }}
        // Rotate the input vector for the next presentation.
        {{
            float t; t = x[0];
            for (i = 0; i + 1 < ninputs; i += 1) x[i] = x[i + 1];
            x[ninputs - 1] = t * 0.9 + 0.05;
        }}
    }}
    return acc * 1000.0 + sat;
}}
",
        w1 = float_array("w1", &w1),
        w2 = float_array("w2", &w2),
        x0 = float_array("x0", &x0),
        inputs = inputs,
        hidden = hidden,
        outputs = outputs,
        presentations = presentations
    );
    Workload {
        name: "alvinn",
        description: "FP matrix-vector forward pass with saturation clamps",
        source,
        args: vec![],
    }
}
