//! `eqntott` mini: the notorious `cmppt` kernel — lexicographic compares
//! of ternary bit-vectors driving a sort. Dominated by data-dependent,
//! poorly-predicted compare branches (the paper's Table 3 shows a 13%
//! misprediction rate collapsing under predication).

use crate::inputs::{int_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

pub fn workload(scale: Scale) -> Workload {
    let (terms, width) = match scale {
        Scale::Test => (48, 12),
        Scale::Full => (320, 16),
    };
    let mut r = rng(0xE401);
    // Each term is `width` ternary values (0, 1, 2=don't care).
    let data: Vec<i64> = (0..terms * width).map(|_| r.gen_range(0..3)).collect();
    let source = format!(
        "{data}
int nterms = {terms};
int width = {width};
int perm[{terms}];
int cmppt(int a, int b) {{
    // Lexicographic compare with the original's aa/bb translation.
    int i; int aa; int bb;
    for (i = 0; i < width; i += 1) {{
        aa = pt[a * width + i];
        bb = pt[b * width + i];
        if (aa == 2) aa = 0;
        if (bb == 2) bb = 0;
        if (aa != bb) {{
            if (aa < bb) return -1;
            return 1;
        }}
    }}
    return 0;
}}
int main() {{
    int i; int j; int t;
    for (i = 0; i < nterms; i += 1) perm[i] = i;
    // Insertion sort by cmppt (eqntott sorts product terms).
    for (i = 1; i < nterms; i += 1) {{
        t = perm[i];
        j = i - 1;
        while (j >= 0 && cmppt(perm[j], t) > 0) {{
            perm[j + 1] = perm[j];
            j -= 1;
        }}
        perm[j + 1] = t;
    }}
    // Verify order + checksum.
    int h; h = 0;
    for (i = 1; i < nterms; i += 1) {{
        if (cmppt(perm[i - 1], perm[i]) > 0) return -i;
        h = (h * 131 + perm[i]) % 1000000007;
    }}
    return h + 1;
}}
",
        data = int_array("pt", &data),
        terms = terms,
        width = width
    );
    Workload {
        name: "eqntott",
        description: "cmppt ternary-vector compare driving an insertion sort",
        source,
        args: vec![],
    }
}
