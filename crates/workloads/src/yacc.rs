//! `yacc` mini: an LR-style shift/reduce evaluator over a token stream —
//! the generated-parser inner loop (compare precedences, push/pop stacks).

use crate::inputs::{int_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

/// Token encoding: 0..=99 literal value, 100 '+', 101 '*', 102 '(',
/// 103 ')', 104 end.
fn gen_expr(tokens: &mut Vec<i64>, depth: usize, r: &mut impl Rng) {
    // term (op term)*
    gen_term(tokens, depth, r);
    for _ in 0..r.gen_range(0..3) {
        tokens.push(if r.gen_bool(0.5) { 100 } else { 101 });
        gen_term(tokens, depth, r);
    }
}

fn gen_term(tokens: &mut Vec<i64>, depth: usize, r: &mut impl Rng) {
    if depth > 0 && r.gen_ratio(1, 3) {
        tokens.push(102);
        gen_expr(tokens, depth - 1, r);
        tokens.push(103);
    } else {
        tokens.push(r.gen_range(0..100));
    }
}

pub fn workload(scale: Scale) -> Workload {
    let exprs = match scale {
        Scale::Test => 40,
        Scale::Full => 700,
    };
    let mut r = rng(0xACC);
    let mut tokens = Vec::new();
    for _ in 0..exprs {
        gen_expr(&mut tokens, 3, &mut r);
        tokens.push(104);
    }
    let n = tokens.len();
    let source = format!(
        "{toks}
int ntok = {n};
int vals[64];
int ops[64];
int prec(int op) {{
    if (op == 101) return 2;
    if (op == 100) return 1;
    return 0;
}}
int apply(int a, int b, int op) {{
    if (op == 100) return (a + b) % 1000003;
    return (a * b) % 1000003;
}}
int main() {{
    int i; int sum; int reduces; int shifts;
    sum = 0; reduces = 0; shifts = 0;
    i = 0;
    while (i < ntok) {{
        // Parse one expression with explicit value/op stacks.
        int vp; int op_; int t; int done;
        vp = 0; op_ = 0; done = 0;
        while (!done) {{
            t = toks[i];
            if (t < 100) {{
                vals[vp] = t; vp += 1; shifts += 1; i += 1;
            }} else if (t == 102) {{
                ops[op_] = 102; op_ += 1; shifts += 1; i += 1;
            }} else if (t == 103) {{
                while (op_ > 0 && ops[op_ - 1] != 102) {{
                    op_ -= 1;
                    vp -= 1;
                    vals[vp - 1] = apply(vals[vp - 1], vals[vp], ops[op_]);
                    reduces += 1;
                }}
                op_ -= 1; // pop '('
                i += 1;
            }} else if (t == 104) {{
                while (op_ > 0) {{
                    op_ -= 1;
                    vp -= 1;
                    vals[vp - 1] = apply(vals[vp - 1], vals[vp], ops[op_]);
                    reduces += 1;
                }}
                done = 1; i += 1;
            }} else {{
                // binary operator: reduce while top has >= precedence.
                while (op_ > 0 && prec(ops[op_ - 1]) >= prec(t)) {{
                    op_ -= 1;
                    vp -= 1;
                    vals[vp - 1] = apply(vals[vp - 1], vals[vp], ops[op_]);
                    reduces += 1;
                }}
                ops[op_] = t; op_ += 1; shifts += 1; i += 1;
            }}
        }}
        sum = (sum * 31 + vals[0]) % 1000000007;
    }}
    return sum + reduces * 7 + shifts;
}}
",
        toks = int_array("toks", &tokens),
        n = n
    );
    Workload {
        name: "yacc",
        description: "LR-style shift/reduce loop over a token stream",
        source,
        args: vec![],
    }
}
