//! `sc` mini: spreadsheet recalculation — per-cell dispatch over formula
//! kinds with range loops, the 072.sc evaluation core. Notable in the
//! paper as the one benchmark where conditional-move code fell *below*
//! superblock (long dependence chains from the conversions).

use crate::inputs::{int_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

pub fn workload(scale: Scale) -> Workload {
    let (rows, cols, passes) = match scale {
        Scale::Test => (10, 8, 3),
        Scale::Full => (40, 24, 8),
    };
    let n = rows * cols;
    let mut r = rng(0x5C);
    // Formula kinds: 0 const(arg1) 1 sum-of-row-prefix 2 max-of-col-prefix
    // 3 cond (left>arg1 ? left : arg2) 4 product-of-neighbours.
    let mut kind = Vec::with_capacity(n);
    let mut arg1 = Vec::with_capacity(n);
    let mut arg2 = Vec::with_capacity(n);
    for i in 0..n {
        let (row, col) = (i / cols, i % cols);
        let k = if row == 0 || col == 0 {
            0
        } else {
            r.gen_range(0..5)
        };
        kind.push(k as i64);
        arg1.push(r.gen_range(0..100));
        arg2.push(r.gen_range(0..100));
    }
    let source = format!(
        "{kind}{arg1}{arg2}
int rows = {rows};
int cols = {cols};
int passes = {passes};
int grid[{n}];
int main() {{
    int p; int row; int col; int i; int h;
    for (i = 0; i < rows * cols; i += 1) grid[i] = arg1[i];
    for (p = 0; p < passes; p += 1) {{
        for (row = 0; row < rows; row += 1) {{
            for (col = 0; col < cols; col += 1) {{
                i = row * cols + col;
                int k; int v; k = kind[i];
                if (k == 0) {{
                    v = arg1[i];
                }} else if (k == 1) {{
                    int c; v = 0;
                    for (c = 0; c < col; c += 1) v += grid[row * cols + c];
                    v = v % 10007;
                }} else if (k == 2) {{
                    int rr; v = 0;
                    for (rr = 0; rr < row; rr += 1) {{
                        if (grid[rr * cols + col] > v) v = grid[rr * cols + col];
                    }}
                }} else if (k == 3) {{
                    int left; left = grid[row * cols + col - 1];
                    if (left > arg1[i]) v = left; else v = arg2[i];
                }} else {{
                    v = (grid[(row - 1) * cols + col] * grid[row * cols + col - 1] + 1)
                        % 10007;
                }}
                grid[i] = v;
            }}
        }}
    }}
    h = 0;
    for (i = 0; i < rows * cols; i += 1) h = (h * 31 + grid[i]) % 1000000007;
    if (h == 0) h = 1;
    return h;
}}
",
        kind = int_array("kind", &kind),
        arg1 = int_array("arg1", &arg1),
        arg2 = int_array("arg2", &arg2),
        rows = rows,
        cols = cols,
        passes = passes,
        n = n
    );
    Workload {
        name: "sc",
        description: "spreadsheet recalculation with per-formula dispatch",
        source,
        args: vec![],
    }
}
