//! `li` mini: a recursive expression interpreter over a node heap — the
//! XLISP `eval` dispatch pattern (type test chains + recursion).

use crate::inputs::{int_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

// Node ops: 0 const(l=value) 1 var(x) 2 add 3 sub 4 mul 5 if(l ? r : l)
// 6 max 7 neg(l).
fn gen_tree(
    ops: &mut Vec<i64>,
    lhs: &mut Vec<i64>,
    rhs: &mut Vec<i64>,
    depth: usize,
    r: &mut impl Rng,
) -> i64 {
    let idx = ops.len();
    ops.push(0);
    lhs.push(0);
    rhs.push(0);
    if depth == 0 || r.gen_ratio(1, 5) {
        if r.gen_bool(0.5) {
            ops[idx] = 0;
            lhs[idx] = r.gen_range(-50..50);
        } else {
            ops[idx] = 1;
        }
        return idx as i64;
    }
    let op = match r.gen_range(0..6) {
        0 => 2,
        1 => 3,
        2 => 4,
        3 => 5,
        4 => 6,
        _ => 7,
    };
    ops[idx] = op;
    let l = gen_tree(ops, lhs, rhs, depth - 1, r);
    lhs[idx] = l;
    if op != 7 {
        let rr = gen_tree(ops, lhs, rhs, depth - 1, r);
        rhs[idx] = rr;
    }
    idx as i64
}

pub fn workload(scale: Scale) -> Workload {
    let (trees, iters, depth) = match scale {
        Scale::Test => (6, 12, 4),
        Scale::Full => (16, 120, 6),
    };
    let mut r = rng(0x117);
    let mut ops = Vec::new();
    let mut lhs = Vec::new();
    let mut rhs = Vec::new();
    let mut roots = Vec::new();
    for _ in 0..trees {
        roots.push(gen_tree(&mut ops, &mut lhs, &mut rhs, depth, &mut r));
    }
    let source = format!(
        "{ops}{lhs}{rhs}{roots}
int nroots = {trees};
int iters = {iters};
int eval(int n, int x) {{
    int op; op = ops[n];
    if (op == 0) return lhs[n];
    if (op == 1) return x;
    if (op == 7) return -eval(lhs[n], x);
    if (op == 5) {{
        int c; c = eval(lhs[n], x);
        if (c != 0) return eval(rhs[n], x);
        return c;
    }}
    {{
        int a; int b;
        a = eval(lhs[n], x);
        b = eval(rhs[n], x);
        if (op == 2) return (a + b) % 100003;
        if (op == 3) return (a - b) % 100003;
        if (op == 4) return (a * b) % 100003;
        if (a > b) return a;
        return b;
    }}
}}
int main() {{
    int t; int x; int h; h = 0;
    for (x = 0; x < iters; x += 1) {{
        for (t = 0; t < nroots; t += 1) {{
            h = (h * 37 + eval(roots[t], x - 5)) % 1000000007;
        }}
    }}
    if (h == 0) h = 1;
    return h;
}}
",
        ops = int_array("ops", &ops),
        lhs = int_array("lhs", &lhs),
        rhs = int_array("rhs", &rhs),
        roots = int_array("roots", &roots),
        trees = trees,
        iters = iters
    );
    Workload {
        name: "li",
        description: "recursive interpreter dispatch over an expression heap",
        source,
        args: vec![],
    }
}
