//! `cmp` mini: compare two byte streams, an equality chain of almost
//! never-taken branches — the benchmark where predication removes nearly
//! every misprediction in the paper (Table 3: 4395 → 31).

use crate::inputs::{char_array, rng, text};
use crate::{Scale, Workload};
use rand::Rng;

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 3_000,
        Scale::Full => 48_000,
    };
    let a = text(n, 0xC41);
    let mut b = a.clone();
    // Sparse differences.
    let mut r = rng(0xC42);
    let mut i = 57;
    while i < b.len() {
        if b[i].is_ascii_lowercase() {
            b[i] = b'a' + ((b[i] - b'a' + 1) % 26);
        }
        i += r.gen_range(97..223);
    }
    let source = format!(
        "{da}{db}
int main() {{
    int i; int diffs; int first;
    diffs = 0; first = 0 - 1;
    for (i = 0; lhs[i] != 0 && rhs[i] != 0; i += 1) {{
        if (lhs[i] != rhs[i]) {{
            diffs += 1;
            if (first < 0) first = i;
        }}
    }}
    if (lhs[i] != rhs[i]) diffs += 1;
    return diffs * 1000000 + first + i;
}}
",
        da = char_array("lhs", &a),
        db = char_array("rhs", &b)
    );
    Workload {
        name: "cmp",
        description: "dual-buffer compare with rarely-true difference branch",
        source,
        args: vec![],
    }
}
