//! MiniC mini-versions of the paper's benchmark suite.
//!
//! The paper evaluates seven SPEC-92 programs (008.espresso, 022.li,
//! 023.eqntott, 026.compress, 052.alvinn, 056.ear, 072.sc) and eight Unix
//! utilities (cccp, cmp, eqn, grep, lex, qsort, wc, yacc). We cannot ship
//! those programs or their inputs, so each benchmark here is a *mini*: a
//! MiniC program reproducing the original's characteristic hot kernel —
//! the control-flow shape that drives the paper's results — together with
//! a deterministic synthetic input baked into the program's data segment.
//!
//! | mini | original | kernel reproduced |
//! |---|---|---|
//! | `wc` | wc | per-character word/line state machine (paper Fig. 5) |
//! | `grep` | grep | line scanner with multi-condition inner match loop (paper Fig. 6) |
//! | `cmp` | cmp | dual-buffer compare with early-out equality chain |
//! | `qsort` | qsort | recursive quicksort partitioning |
//! | `eqn` | eqn | token classifier with nested constructs |
//! | `lex` | lex | table-driven DFA scanner |
//! | `yacc` | yacc | LR-style shift/reduce table walker |
//! | `cccp` | cccp | directive scanning + macro table lookups |
//! | `espresso` | 008.espresso | bit-cube distance/containment over PLA terms |
//! | `li` | 022.li | recursive interpreter dispatch over an expression heap |
//! | `eqntott` | 023.eqntott | `cmppt` bit-vector compare + insertion sort |
//! | `compress` | 026.compress | LZW hash-probe loop |
//! | `sc` | 072.sc | spreadsheet cell evaluation with per-op dispatch |
//! | `alvinn` | 052.alvinn | FP matrix-vector forward pass with clamping |
//! | `ear` | 056.ear | FP filterbank with conditional rectification |

pub mod gen;
pub mod inputs;

mod alvinn;
mod cccp;
mod cmp;
mod compress;
mod ear;
mod eqn;
mod eqntott;
mod espresso;
mod grep;
mod lex;
mod li;
mod qsort;
mod sc;
mod wc;
mod yacc;

/// Input sizing for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for debug-build tests (tens of thousands of dynamic
    /// instructions).
    Test,
    /// Paper-style inputs for benchmarking (hundreds of thousands to
    /// millions of dynamic instructions).
    Full,
}

/// A benchmark program: MiniC source with the input baked in, ready for
/// the `hyperpred` pipeline.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (matches the paper's benchmark column).
    pub name: &'static str,
    /// What the mini reproduces.
    pub description: &'static str,
    /// MiniC source text.
    pub source: String,
    /// Arguments to `main` (after the hidden stack pointer).
    pub args: Vec<i64>,
}

/// All fifteen minis, in the paper's table order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        espresso::workload(scale),
        li::workload(scale),
        eqntott::workload(scale),
        compress::workload(scale),
        alvinn::workload(scale),
        ear::workload(scale),
        sc::workload(scale),
        cccp::workload(scale),
        cmp::workload(scale),
        eqn::workload(scale),
        grep::workload(scale),
        lex::workload(scale),
        qsort::workload(scale),
        wc::workload(scale),
        yacc::workload(scale),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_emu::{Emulator, NullSink};
    use hyperpred_lang::lower::entry_args;

    #[test]
    fn every_workload_compiles_and_runs() {
        for w in all(Scale::Test) {
            let m = hyperpred_lang::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: compile error {e}", w.name));
            m.verify().unwrap();
            let mut emu = Emulator::new(&m);
            let out = emu
                .run("main", &entry_args(&w.args), &mut NullSink)
                .unwrap_or_else(|e| panic!("{}: runtime error {e}", w.name));
            assert_ne!(out.ret, 0, "{}: checksum must be nonzero", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for (a, b) in all(Scale::Test).iter().zip(all(Scale::Test)) {
            assert_eq!(a.source, b.source, "{}", a.name);
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = all(Scale::Test).iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 15);
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert!(by_name("wc", Scale::Test).is_some());
        assert!(by_name("nope", Scale::Test).is_none());
    }

    /// Prints dynamic instruction counts per workload; run with
    /// `cargo test -p hyperpred-workloads --release -- --ignored --nocapture sizes`.
    #[test]
    #[ignore = "manual sizing tool"]
    fn print_sizes() {
        for scale in [Scale::Test, Scale::Full] {
            for w in all(scale) {
                let m = hyperpred_lang::compile(&w.source).unwrap();
                let out = Emulator::new(&m)
                    .run("main", &entry_args(&w.args), &mut NullSink)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                println!(
                    "{scale:?} {:>10}: {:>12} insts ret={}",
                    w.name, out.fetched, out.ret
                );
            }
        }
    }

    #[test]
    fn full_scale_is_larger() {
        for (t, f) in all(Scale::Test).iter().zip(all(Scale::Full)) {
            let mt = hyperpred_lang::compile(&t.source).unwrap();
            let mf = hyperpred_lang::compile(&f.source).unwrap();
            let rt = Emulator::new(&mt)
                .run("main", &entry_args(&t.args), &mut NullSink)
                .unwrap();
            let rf = Emulator::new(&mf)
                .run("main", &entry_args(&f.args), &mut NullSink)
                .unwrap();
            assert!(
                rf.fetched > rt.fetched,
                "{}: full scale should run longer ({} !> {})",
                t.name,
                rf.fetched,
                rt.fetched
            );
        }
    }
}
