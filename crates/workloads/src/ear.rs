//! `ear` mini: the cochlea-model filterbank of 056.ear — second-order FP
//! filters per channel with half-wave rectification (a conditional per
//! sample) and energy accumulation.

use crate::inputs::{float_array, floats};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    let (channels, samples) = match scale {
        Scale::Test => (6, 120),
        Scale::Full => (24, 1_400),
    };
    let signal = floats(samples, -1.0, 1.0, 0xEA2);
    let coeff_a = floats(channels, 0.05, 0.95, 0xEA3);
    let coeff_b = floats(channels, -0.5, 0.5, 0xEA4);
    let source = format!(
        "{signal}{ca}{cb}
int nchan = {channels};
int nsamp = {samples};
float state1[{channels}];
float state2[{channels}];
float energy[{channels}];
int main() {{
    int c; int s; int rectified;
    rectified = 0;
    for (c = 0; c < nchan; c += 1) {{
        state1[c] = 0.0; state2[c] = 0.0; energy[c] = 0.0;
    }}
    for (s = 0; s < nsamp; s += 1) {{
        float x; x = signal[s];
        for (c = 0; c < nchan; c += 1) {{
            float y;
            y = ca[c] * x + cb[c] * state1[c] + 0.1 * state2[c];
            state2[c] = state1[c];
            state1[c] = y;
            // Half-wave rectification: the per-sample conditional.
            if (y < 0.0) {{
                y = 0.0;
                rectified += 1;
            }}
            energy[c] = energy[c] + y * y;
        }}
    }}
    float total; total = 0.0;
    for (c = 0; c < nchan; c += 1) total = total + energy[c];
    return total * 1000.0 + rectified;
}}
",
        signal = float_array("signal", &signal),
        ca = float_array("ca", &coeff_a),
        cb = float_array("cb", &coeff_b),
        channels = channels,
        samples = samples
    );
    Workload {
        name: "ear",
        description: "FP filterbank with per-sample rectification conditional",
        source,
        args: vec![],
    }
}
