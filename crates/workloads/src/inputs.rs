//! Deterministic synthetic input generation and MiniC source embedding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG so every workload build is bit-identical.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates `n` bytes of word-like ASCII text: lowercase words of length
/// 1–9, separated by spaces, with newlines and occasional punctuation —
/// the texture `wc`/`grep`/`cccp`-style utilities see.
pub fn text(n: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut col = 0;
    while out.len() < n {
        let wlen = r.gen_range(1..=9);
        for _ in 0..wlen {
            out.push(b'a' + r.gen_range(0..26u8));
        }
        col += wlen + 1;
        if col > 60 {
            out.push(b'\n');
            col = 0;
        } else if r.gen_ratio(1, 12) {
            out.push(if r.gen_bool(0.5) { b'.' } else { b',' });
            out.push(b' ');
        } else {
            out.push(b' ');
        }
    }
    out.truncate(n);
    // Terminate cleanly.
    if let Some(last) = out.last_mut() {
        *last = b'\n';
    }
    out
}

/// Escapes bytes for a MiniC string literal. Non-printable characters are
/// limited to the escapes the lexer understands, so generators should only
/// produce printable ASCII plus `\n`/`\t`.
pub fn escape(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() + 8);
    for &b in bytes {
        match b {
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            b'\r' => s.push_str("\\r"),
            b'"' => s.push_str("\\\""),
            b'\\' => s.push_str("\\\\"),
            0 => s.push_str("\\0"),
            b => {
                assert!(
                    (0x20..0x7f).contains(&b),
                    "non-printable byte {b:#x} in string input"
                );
                s.push(b as char);
            }
        }
    }
    s
}

/// Declares a MiniC global char array holding `bytes` (NUL-terminated by
/// the frontend's string rules; we size it one larger).
pub fn char_array(name: &str, bytes: &[u8]) -> String {
    format!(
        "char {name}[{}] = \"{}\";\n",
        bytes.len() + 1,
        escape(bytes)
    )
}

/// Declares a MiniC global int array with the given values.
pub fn int_array(name: &str, values: &[i64]) -> String {
    let list = values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("int {name}[{}] = {{{list}}};\n", values.len())
}

/// Declares a MiniC global float array with the given values.
pub fn float_array(name: &str, values: &[f64]) -> String {
    let list = values
        .iter()
        .map(|v| {
            // Keep the literal parseable by the MiniC lexer (d.ddd form).
            format!("{v:.6}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("float {name}[{}] = {{{list}}};\n", values.len())
}

/// Random ints in `lo..hi`.
pub fn ints(n: usize, lo: i64, hi: i64, seed: u64) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// Random floats in `lo..hi`, rounded to 6 decimals so the source
/// round-trips exactly.
pub fn floats(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| (r.gen_range(lo..hi) * 1e6).round() / 1e6)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_deterministic_and_sized() {
        let a = text(500, 1);
        let b = text(500, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&c| c.is_ascii()));
        assert!(a.contains(&b' '));
        assert!(a.contains(&b'\n'));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(text(100, 1), text(100, 2));
    }

    #[test]
    fn escape_round_trips_through_the_lexer() {
        let bytes = b"a\"b\\c\nd\te";
        let src = format!(
            "char s[{}] = \"{}\"; int main() {{ return 0; }}",
            bytes.len() + 1,
            escape(bytes)
        );
        let m = hyperpred_lang::compile(&src).unwrap();
        let g = m.global("s").unwrap();
        assert_eq!(&g.init[..bytes.len()], bytes);
    }

    #[test]
    fn int_array_embeds() {
        let src = format!(
            "{} int main() {{ return t[2]; }}",
            int_array("t", &[5, -6, 7])
        );
        let m = hyperpred_lang::compile(&src).unwrap();
        assert!(m.verify().is_ok());
    }

    #[test]
    fn float_array_embeds() {
        let vals = floats(4, -1.0, 1.0, 3);
        let src = format!(
            "{} int main() {{ return w[0] * 1000000.0; }}",
            float_array("w", &vals)
        );
        let m = hyperpred_lang::compile(&src).unwrap();
        assert!(m.verify().is_ok());
    }
}
