//! `compress` mini: the LZW hash-probe loop of 026.compress — per input
//! byte, probe an open-addressed table for (prefix, char), extending the
//! dictionary on miss. Branch-heavy with data-dependent probe chains, and
//! the benchmark whose speculative loads hurt most under real caches
//! (paper Fig. 11).

use crate::inputs::{char_array, text};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    // `hsize` must be prime: the secondary probe stride is `hsize - h`,
    // which only cycles through every slot when gcd(stride, hsize) = 1
    // (real compress uses the prime 69001).
    let (n, hsize) = match scale {
        Scale::Test => (2_200, 1031),
        Scale::Full => (36_000, 9013),
    };
    let input = text(n, 0xC0B5);
    let source = format!(
        "{data}
int hsize = {hsize};
int htab[{hsize}];
int codetab[{hsize}];
int main() {{
    int i; int ent; int c; int fcode; int h; int disp;
    int nextcode; int emitted; int hash; int probes;
    for (i = 0; i < hsize; i += 1) htab[i] = -1;
    nextcode = 257;
    emitted = 0; probes = 0; hash = 0;
    ent = text[0];
    for (i = 1; text[i] != 0; i += 1) {{
        c = text[i];
        fcode = c * 65536 + ent;
        h = (c * 9 + ent * 3) % hsize;
        if (h < 0) h = -h;
        disp = hsize - h;
        if (h == 0) disp = 1;
        int found; found = 0;
        while (!found && htab[h] != -1) {{
            probes += 1;
            if (htab[h] == fcode) {{
                ent = codetab[h];
                found = 1;
            }} else {{
                h -= disp;
                if (h < 0) h += hsize;
            }}
        }}
        if (!found) {{
            // Emit the code for ent, add fcode to the dictionary. Keep the
            // open-addressed table at most 3/4 full so probe chains always
            // terminate (real compress resets the table when full).
            hash = (hash * 31 + ent) % 1000000007;
            emitted += 1;
            if (nextcode < 257 + (hsize / 4) * 3) {{
                htab[h] = fcode;
                codetab[h] = nextcode;
                nextcode += 1;
            }}
            ent = c;
        }}
    }}
    hash = (hash * 31 + ent) % 1000000007;
    return hash + emitted * 7 + probes;
}}
",
        data = char_array("text", &input),
        hsize = hsize
    );
    Workload {
        name: "compress",
        description: "LZW open-addressed hash probe loop",
        source,
        args: vec![],
    }
}
