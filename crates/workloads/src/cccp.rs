//! `cccp` mini: the C preprocessor's scanning core — directive detection
//! at line starts plus macro-name lookups with string compares.

use crate::inputs::{char_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

const MACROS: [&str; 6] = ["max", "min", "abs", "bit", "len", "ord"];

fn cccp_text(n: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match r.gen_range(0..8) {
            0 => {
                // Directive line.
                out.extend_from_slice(b"#");
                let d: &[u8] = match r.gen_range(0..4) {
                    0 => b"define",
                    1 => b"ifdef",
                    2 => b"endif",
                    _ => b"include",
                };
                out.extend_from_slice(d);
                out.extend_from_slice(b" x\n");
            }
            _ => {
                // Code-ish line mentioning identifiers, some of them macros.
                for _ in 0..r.gen_range(3..9) {
                    if r.gen_ratio(1, 4) {
                        out.extend_from_slice(MACROS[r.gen_range(0..MACROS.len())].as_bytes());
                    } else {
                        for _ in 0..r.gen_range(1..7) {
                            out.push(b'a' + r.gen_range(0..26u8));
                        }
                    }
                    out.push(if r.gen_ratio(1, 6) { b'(' } else { b' ' });
                }
                out.push(b'\n');
            }
        }
    }
    out
}

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 2_200,
        Scale::Full => 36_000,
    };
    let input = cccp_text(n, 0xCCC9);
    // Pack the macro table: names separated by NUL would need escapes; use
    // '|' as the separator instead.
    let table: String = MACROS.join("|");
    let source = format!(
        "{data}{macros}
int is_ident(int c) {{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
}}
int lookup(int start, int len) {{
    // Scan the '|'-separated macro table for text[start..start+len].
    int m; int i; int j; int id;
    m = 0; id = 0;
    while (names[m] != 0) {{
        i = m; j = start;
        while (names[i] != 0 && names[i] != '|' && j < start + len
               && names[i] == text[j]) {{
            i += 1; j += 1;
        }}
        if (j == start + len && (names[i] == 0 || names[i] == '|')) return id;
        while (names[m] != 0 && names[m] != '|') m += 1;
        if (names[m] == '|') m += 1;
        id += 1;
    }}
    return -1;
}}
int main() {{
    int i; int c; int bol; int directives; int expansions; int idents;
    i = 0; bol = 1; directives = 0; expansions = 0; idents = 0;
    while (text[i] != 0) {{
        c = text[i];
        if (bol && c == '#') {{
            directives += 1;
            while (text[i] != 0 && text[i] != '\\n') i += 1;
            bol = 1;
            if (text[i] == '\\n') i += 1;
        }} else if (c >= 'a' && c <= 'z') {{
            int start; start = i;
            while (is_ident(text[i])) i += 1;
            idents += 1;
            if (lookup(start, i - start) >= 0) expansions += 1;
            bol = 0;
        }} else {{
            bol = c == '\\n';
            i += 1;
        }}
    }}
    return directives + expansions * 1000 + idents * 1000000;
}}
",
        data = char_array("text", &input),
        macros = char_array("names", table.as_bytes()),
    );
    Workload {
        name: "cccp",
        description: "directive scanning plus macro-table string lookups",
        source,
        args: vec![],
    }
}
