//! `wc` mini: the paper's Figure 5 loop — a per-character line/word/char
//! state machine over text. Small basic blocks, very high branch density.

use crate::inputs::{char_array, text};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 2_000,
        Scale::Full => 48_000,
    };
    let input = text(n, 0x5C01);
    let source = format!(
        "{data}
int main() {{
    int i; int lines; int words; int chars; int inword; int c;
    lines = 0; words = 0; chars = 0; inword = 0;
    for (i = 0; text[i] != 0; i += 1) {{
        c = text[i];
        chars += 1;
        if (c == '\\n') lines += 1;
        if (c == ' ' || c == '\\n' || c == '\\t') {{
            inword = 0;
        }} else {{
            if (!inword) words += 1;
            inword = 1;
        }}
    }}
    return chars + words * 1000 + lines * 1000000;
}}
",
        data = char_array("text", &input)
    );
    Workload {
        name: "wc",
        description: "per-character word/line/char state machine (paper Fig. 5)",
        source,
        args: vec![],
    }
}
