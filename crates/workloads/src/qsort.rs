//! `qsort` mini: recursive quicksort — data-dependent, hard-to-predict
//! partition branches (the paper reports a 15% misprediction rate for the
//! superblock model).

use crate::inputs::{int_array, ints};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 160,
        Scale::Full => 3_000,
    };
    let data = ints(n, 0, 1_000_000, 0x9507);
    let source = format!(
        "{data}
int nelem = {n};
void sort(int lo, int hi) {{
    int p; int i; int j; int t;
    if (lo >= hi) return;
    p = a[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {{
        while (a[i] < p) i += 1;
        while (a[j] > p) j -= 1;
        if (i <= j) {{
            t = a[i]; a[i] = a[j]; a[j] = t;
            i += 1; j -= 1;
        }}
    }}
    sort(lo, j);
    sort(i, hi);
}}
int main() {{
    int i; int h;
    sort(0, nelem - 1);
    h = 0;
    for (i = 1; i < nelem; i += 1) {{
        if (a[i - 1] > a[i]) return -i;
        h = (h * 31 + a[i]) % 1000000007;
    }}
    return h + 1;
}}
",
        data = int_array("a", &data),
        n = n
    );
    Workload {
        name: "qsort",
        description: "recursive quicksort with data-dependent partition branches",
        source,
        args: vec![],
    }
}
