//! `grep` mini: the paper's Figure 6 loop — scan each line for a pattern
//! with a multi-condition inner loop of rarely-taken exit branches.

use crate::inputs::{char_array, rng, text};
use crate::{Scale, Workload};
use rand::Rng;

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 2_500,
        Scale::Full => 40_000,
    };
    // Plant the pattern into the text occasionally so matches exist.
    let mut input = text(n, 0x93EB);
    let mut r = rng(0x93EC);
    let pat = b"ion";
    let mut i = 40;
    while i + pat.len() < input.len() {
        if r.gen_ratio(1, 9) && !input[i..i + pat.len()].contains(&b'\n') {
            input[i..i + pat.len()].copy_from_slice(pat);
        }
        i += r.gen_range(23..61);
    }
    let source = format!(
        "{data}char pat[4] = \"ion\";
int main() {{
    int i; int matches; int scanned;
    i = 0; matches = 0; scanned = 0;
    while (text[i] != 0) {{
        int found; found = 0;
        while (text[i] != 0 && text[i] != '\\n') {{
            scanned += 1;
            if (found == 0 && text[i] == pat[0]) {{
                int j; int k; j = i + 1; k = 1;
                while (pat[k] != 0 && text[j] == pat[k]) {{ j += 1; k += 1; }}
                if (pat[k] == 0) found = 1;
            }}
            i += 1;
        }}
        if (text[i] == '\\n') i += 1;
        matches += found;
    }}
    return matches * 100000 + scanned;
}}
",
        data = char_array("text", &input)
    );
    Workload {
        name: "grep",
        description: "line scanner with rarely-taken exit branches (paper Fig. 6)",
        source,
        args: vec![],
    }
}
