//! `espresso` mini: two-level logic minimization kernel — pairwise cube
//! *distance* computation over 2-bit-encoded PLA terms with early-out,
//! counting mergeable (distance-1) pairs.

use crate::inputs::{int_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

pub fn workload(scale: Scale) -> Workload {
    let (cubes, words) = match scale {
        Scale::Test => (28, 2),
        Scale::Full => (160, 3),
    };
    let mut r = rng(0xE59);
    // Each literal uses 2 bits: 01 = low, 10 = high, 11 = don't care.
    let mut data = Vec::with_capacity(cubes * words);
    for _ in 0..cubes * words {
        let mut w = 0i64;
        for pos in 0..31 {
            let code = match r.gen_range(0..3) {
                0 => 0b01,
                1 => 0b10,
                _ => 0b11,
            };
            w |= code << (2 * pos);
        }
        data.push(w);
    }
    let source = format!(
        "{data}
int ncubes = {cubes};
int nwords = {words};
int distance(int a, int b) {{
    // Number of literal positions where the intersection is empty.
    int w; int d; int x; int pos; int lit;
    d = 0;
    for (w = 0; w < nwords; w += 1) {{
        x = cubes_[a * nwords + w] & cubes_[b * nwords + w];
        for (pos = 0; pos < 31; pos += 1) {{
            lit = (x >> (2 * pos)) & 3;
            if (lit == 0) {{
                d += 1;
                if (d > 1) return d;  // early out: only distance<=1 matters
            }}
        }}
    }}
    return d;
}}
int main() {{
    int i; int j; int merges; int disjoint; int contained;
    merges = 0; disjoint = 0; contained = 0;
    for (i = 0; i < ncubes; i += 1) {{
        for (j = i + 1; j < ncubes; j += 1) {{
            int d; d = distance(i, j);
            if (d == 0) {{
                // Overlapping: check containment of i in j.
                int w; int ok; ok = 1;
                for (w = 0; w < nwords; w += 1) {{
                    int aw; int bw;
                    aw = cubes_[i * nwords + w];
                    bw = cubes_[j * nwords + w];
                    if ((aw & bw) != aw) ok = 0;
                }}
                contained += ok;
            }} else if (d == 1) {{
                merges += 1;
            }} else {{
                disjoint += 1;
            }}
        }}
    }}
    return merges * 1000000 + contained * 10000 + disjoint;
}}
",
        data = int_array("cubes_", &data),
        cubes = cubes,
        words = words
    );
    Workload {
        name: "espresso",
        description: "PLA cube distance/containment with early-out bit loops",
        source,
        args: vec![],
    }
}
