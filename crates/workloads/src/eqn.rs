//! `eqn` mini: token classification over math-ish text with nested
//! grouping constructs — the branchy scanner core of the troff equation
//! preprocessor.

use crate::inputs::{char_array, rng};
use crate::{Scale, Workload};
use rand::Rng;

fn eqn_text(n: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut depth = 0usize;
    while out.len() < n {
        match r.gen_range(0..10) {
            0 => {
                out.push(b'{');
                depth += 1;
            }
            1 if depth > 0 => {
                out.push(b'}');
                depth -= 1;
            }
            2 => out.push(b'^'),
            3 => out.push(b'_'),
            4 => {
                for _ in 0..r.gen_range(1..4) {
                    out.push(b'0' + r.gen_range(0..10u8));
                }
            }
            5 => out.push([b'+', b'-', b'=', b'/'][r.gen_range(0..4)]),
            6 => out.push(b'\n'),
            _ => {
                for _ in 0..r.gen_range(1..6) {
                    out.push(b'a' + r.gen_range(0..26u8));
                }
                out.push(b' ');
            }
        }
    }
    out.extend(std::iter::repeat_n(b'}', depth));
    out
}

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 2_200,
        Scale::Full => 36_000,
    };
    let input = eqn_text(n, 0xE68);
    let source = format!(
        "{data}
int main() {{
    int i; int c; int depth; int maxdepth; int supers; int subs;
    int idents; int nums; int ops; int inword; int bad;
    depth = 0; maxdepth = 0; supers = 0; subs = 0;
    idents = 0; nums = 0; ops = 0; inword = 0; bad = 0;
    for (i = 0; text[i] != 0; i += 1) {{
        c = text[i];
        if (c >= 'a' && c <= 'z') {{
            if (!inword) idents += 1;
            inword = 1;
        }} else {{
            inword = 0;
            if (c >= '0' && c <= '9') {{
                nums += 1;
            }} else if (c == '{{') {{
                depth += 1;
                if (depth > maxdepth) maxdepth = depth;
            }} else if (c == '}}') {{
                if (depth > 0) depth -= 1; else bad += 1;
            }} else if (c == '^') {{
                supers += 1;
            }} else if (c == '_') {{
                subs += 1;
            }} else if (c == '+' || c == '-' || c == '=' || c == '/') {{
                ops += 1;
            }}
        }}
    }}
    return idents + nums * 100 + ops * 10000 + (supers + subs) * 1000000
        + maxdepth * 100000000 + bad;
}}
",
        data = char_array("text", &input)
    );
    Workload {
        name: "eqn",
        description: "token classifier with nested grouping constructs",
        source,
        args: vec![],
    }
}
