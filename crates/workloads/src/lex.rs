//! `lex` mini: a table-driven DFA scanner — the generated-scanner inner
//! loop (classify character, index transition table, detect accepts).

use crate::inputs::{char_array, int_array, text};
use crate::{Scale, Workload};

pub fn workload(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 2_400,
        Scale::Full => 40_000,
    };
    let input = text(n, 0x1E8);
    // DFA over classes: 0=letter 1=digit 2=space/newline 3=punct 4=other.
    // States: 0=start 1=ident 2=number 3=punct-run (all but 0 accepting).
    const K: usize = 5;
    let delta: [i64; 4 * K] = [
        // letter digit space punct other   (from state)
        1, 2, 0, 3, 0, // start
        1, 1, 0, 3, 0, // ident (letters+digits continue)
        2, 2, 0, 3, 0, // number
        1, 2, 0, 3, 0, // punct run
    ];
    // kind per state: 1=identifier, 2=number, 3=punct run.
    let token_kind: [i64; 4] = [0, 1, 2, 3];
    let source = format!(
        "{data}{delta}{kinds}
int classify(int c) {{
    if (c >= 'a' && c <= 'z') return 0;
    if (c >= 'A' && c <= 'Z') return 0;
    if (c >= '0' && c <= '9') return 1;
    if (c == ' ' || c == '\\n' || c == '\\t') return 2;
    if (c == '.' || c == ',' || c == ';') return 3;
    return 4;
}}
int main() {{
    int i; int state; int cls; int next;
    int idents; int numbers; int puncts; int chars;
    state = 0; idents = 0; numbers = 0; puncts = 0; chars = 0;
    for (i = 0; text[i] != 0; i += 1) {{
        chars += 1;
        cls = classify(text[i]);
        next = delta[state * 5 + cls];
        if (next == 0 && state != 0) {{
            // Token ended; classify by the state we left.
            int kind; kind = kinds[state];
            if (kind == 1) idents += 1;
            else if (kind == 2) numbers += 1;
            else puncts += 1;
        }}
        state = next;
    }}
    if (state != 0) {{
        if (kinds[state] == 1) idents += 1;
    }}
    return idents + numbers * 10000 + puncts * 1000000 + chars;
}}
",
        data = char_array("text", &input),
        delta = int_array("delta", &delta),
        kinds = int_array("kinds", &token_kind)
    );
    Workload {
        name: "lex",
        description: "table-driven DFA scanner",
        source,
        args: vec![],
    }
}
