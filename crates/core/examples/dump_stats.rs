//! Dev tool: dump every SimStats field for the full sweep (baseline + 3
//! models per workload) so hot-path rewrites can be checked bit-identical.

use hyperpred::{run_matrix_workloads, Experiment, Model, Pipeline};
use hyperpred_workloads::Scale;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("full") => Scale::Full,
        _ => Scale::Test,
    };
    let workloads = hyperpred_workloads::all(scale);
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    let out = run_matrix_workloads(&exps, &workloads, &Pipeline::default(), 0).expect("matrix");
    for (e, fig) in out.figures.iter().enumerate() {
        for r in fig {
            println!("{} exp{} base {:?}", r.name, e, r.base);
            for (i, m) in Model::ALL.iter().enumerate() {
                println!("{} exp{} {} {:?}", r.name, e, m, r.models[i]);
            }
        }
    }
}
