//! The paper's experiment matrix: Figures 8–11 and Tables 2–3.

use crate::pipeline::{evaluate, speedup, Model, Pipeline, PipelineError};
use crate::report::{format_table, human_count, Row};
use hyperpred_sched::MachineConfig;
use hyperpred_sim::{CacheConfig, MemoryModel, SimConfig, SimStats, DEFAULT_CYCLE_LIMIT};
use hyperpred_workloads::{Scale, Workload};

/// Results of one benchmark under the three models plus the scalar
/// baseline.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// 1-issue superblock baseline (the paper's speedup denominator).
    pub base: SimStats,
    /// Superblock / CondMove / FullPred on the evaluated machine.
    pub models: [SimStats; 3],
}

impl BenchResult {
    /// Speedup of model `m` versus the scalar baseline.
    pub fn speedup(&self, m: Model) -> f64 {
        speedup(&self.base, &self.models[m.index()])
    }

    /// Statistics of model `m`.
    pub fn stats(&self, m: Model) -> &SimStats {
        &self.models[m.index()]
    }
}

/// One experiment configuration (a figure of the paper).
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Human-readable title.
    pub title: &'static str,
    /// Issue width.
    pub issue: u32,
    /// Branch slots per cycle.
    pub branches: u32,
    /// Memory model.
    pub memory: MemoryModel,
    /// Watchdog: cycle budget per simulated cell; a cell exceeding it
    /// fails with [`hyperpred_sim::SimError::CycleLimit`] instead of
    /// monopolizing a worker. The default is effectively unbounded for
    /// the paper's workloads.
    pub max_cycles: u64,
}

impl Experiment {
    /// Figure 8: 8-issue, 1-branch, perfect caches.
    pub fn fig8() -> Experiment {
        Experiment {
            title: "Figure 8: 8-issue, 1-branch, perfect caches",
            issue: 8,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// Figure 9: 8-issue, 2-branch, perfect caches.
    pub fn fig9() -> Experiment {
        Experiment {
            title: "Figure 9: 8-issue, 2-branch, perfect caches",
            issue: 8,
            branches: 2,
            memory: MemoryModel::Perfect,
            max_cycles: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// Figure 10: 4-issue, 1-branch, perfect caches.
    pub fn fig10() -> Experiment {
        Experiment {
            title: "Figure 10: 4-issue, 1-branch, perfect caches",
            issue: 4,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: DEFAULT_CYCLE_LIMIT,
        }
    }

    /// Figure 11: 8-issue, 1-branch, 64K I/D caches.
    pub fn fig11() -> Experiment {
        Experiment {
            title: "Figure 11: 8-issue, 1-branch, 64K caches",
            issue: 8,
            branches: 1,
            memory: MemoryModel::Caches(CacheConfig::default()),
            max_cycles: DEFAULT_CYCLE_LIMIT,
        }
    }

    pub(crate) fn machine(&self) -> MachineConfig {
        MachineConfig::new(self.issue, self.branches)
    }

    pub(crate) fn sim(&self) -> SimConfig {
        SimConfig {
            memory: self.memory,
            max_cycles: self.max_cycles,
            ..SimConfig::default()
        }
    }

    /// Simulation config for the paper's speedup denominator: the 1-issue
    /// superblock baseline always runs with perfect memory, whatever the
    /// evaluated machine uses, so every figure divides by the same number.
    pub(crate) fn baseline_sim(&self) -> SimConfig {
        SimConfig {
            memory: MemoryModel::Perfect,
            ..self.sim()
        }
    }
}

/// Runs one workload under an experiment configuration.
///
/// # Errors
/// Propagates pipeline failures.
pub fn run_workload(
    w: &Workload,
    exp: &Experiment,
    pipe: &Pipeline,
) -> Result<BenchResult, PipelineError> {
    // The baseline always uses perfect memory and 1-issue (the paper's
    // denominator is fixed across figures).
    let base = evaluate(
        &w.source,
        &w.args,
        Model::Superblock,
        MachineConfig::one_issue(),
        exp.baseline_sim(),
        pipe,
    )?;
    let mut models: [SimStats; 3] = Default::default();
    for model in Model::ALL {
        let s = evaluate(&w.source, &w.args, model, exp.machine(), exp.sim(), pipe)?;
        if s.ret != base.ret {
            // A model disagreeing with the baseline is a miscompile;
            // report it as a typed error so matrix drivers can contain it
            // to the cell instead of unwinding through the whole run.
            return Err(PipelineError::Diverged {
                workload: w.name.to_string(),
                model,
                got: s.ret,
                want: base.ret,
            });
        }
        models[model.index()] = s;
    }
    Ok(BenchResult {
        name: w.name,
        base,
        models,
    })
}

/// Runs all workloads at `scale` under `exp`.
///
/// # Errors
/// Propagates the first pipeline failure.
pub fn run_experiment(
    exp: &Experiment,
    scale: Scale,
    pipe: &Pipeline,
) -> Result<Vec<BenchResult>, PipelineError> {
    hyperpred_workloads::all(scale)
        .iter()
        .map(|w| run_workload(w, exp, pipe))
        .collect()
}

/// Renders an experiment's speedups as the paper's bar-chart data.
pub fn speedup_table(exp: &Experiment, results: &[BenchResult]) -> String {
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for r in results {
        let mut cells = Vec::new();
        for (i, m) in Model::ALL.iter().enumerate() {
            let s = r.speedup(*m);
            sums[i] += s;
            cells.push(format!("{s:.2}"));
        }
        rows.push(Row::new(r.name, cells));
    }
    let n = results.len() as f64;
    rows.push(Row::new(
        "average",
        sums.iter().map(|s| format!("{:.2}", s / n)).collect(),
    ));
    format_table(exp.title, &["Superblock", "Cond.Move", "Full Pred."], &rows)
}

/// Renders Table 2 (dynamic instruction counts, ratio vs. superblock).
pub fn instruction_table(results: &[BenchResult]) -> String {
    let mut rows = Vec::new();
    for r in results {
        let sup = r.stats(Model::Superblock).insts;
        let cm = r.stats(Model::CondMove).insts;
        let fp = r.stats(Model::FullPred).insts;
        rows.push(Row::new(
            r.name,
            vec![
                human_count(sup),
                format!("{} ({:.2})", human_count(cm), cm as f64 / sup as f64),
                format!("{} ({:.2})", human_count(fp), fp as f64 / sup as f64),
            ],
        ));
    }
    format_table(
        "Table 2: dynamic instruction count comparison",
        &["Superblk", "Cond. Move", "Full Pred."],
        &rows,
    )
}

/// Renders Table 3 (branches, mispredictions, misprediction rate).
pub fn branch_table(results: &[BenchResult]) -> String {
    let mut rows = Vec::new();
    for r in results {
        let mut cells = Vec::new();
        for m in Model::ALL {
            let s = r.stats(m);
            cells.push(format!(
                "{} {} {:.2}%",
                human_count(s.branches),
                human_count(s.mispredicts),
                100.0 * s.mispredict_rate()
            ));
        }
        rows.push(Row::new(r.name, cells));
    }
    format_table(
        "Table 3: branches (BR MP MPR) per model",
        &["Superblock", "Cond. Move", "Full Pred."],
        &rows,
    )
}

/// Arithmetic-mean speedup for a model across results.
pub fn mean_speedup(results: &[BenchResult], m: Model) -> f64 {
    results.iter().map(|r| r.speedup(m)).sum::<f64>() / results.len() as f64
}
