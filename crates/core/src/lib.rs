//! `hyperpred` — full vs. partial predicated execution for ILP processors.
//!
//! A reproduction of Mahlke, Hank, McCormick, August & Hwu, *"A Comparison
//! of Full and Partial Predicated Execution Support for ILP Processors"*
//! (ISCA 1995). This crate is the facade over the whole workspace: it
//! compiles MiniC programs under the paper's three machine/compiler
//! models, runs the emulation-driven timing simulation, and reproduces the
//! paper's tables and figures.
//!
//! # The three models
//!
//! * [`Model::Superblock`] — the baseline: no predication; superblock
//!   formation plus speculative code motion of silent instructions.
//! * [`Model::CondMove`] — *partial* predicate support: the same
//!   hyperblock if-conversion as the full model, then conversion of every
//!   predicated instruction into speculation + `cmov`/`cmov_com`.
//! * [`Model::FullPred`] — *full* predicate support: a predicate register
//!   file, guarded instructions, and typed predicate defines.
//!
//! # Quickstart
//!
//! ```
//! use hyperpred::{evaluate, speedup, Model, Pipeline};
//! use hyperpred_sched::MachineConfig;
//! use hyperpred_sim::SimConfig;
//!
//! let src = "int main() {
//!     int i; int s; s = 0;
//!     for (i = 0; i < 200; i += 1) { if (i % 2 == 0) s += 3; else s += 1; }
//!     return s;
//! }";
//! let pipe = Pipeline::default();
//! let machine = MachineConfig::new(8, 1);
//! let sim = SimConfig::default();
//! let base = evaluate(src, &[], Model::Superblock, MachineConfig::one_issue(), sim, &pipe)
//!     .unwrap();
//! let full = evaluate(src, &[], Model::FullPred, machine, sim, &pipe).unwrap();
//! assert_eq!(base.ret, full.ret);
//! assert!(speedup(&base, &full) > 1.0);
//! ```

pub mod client;
pub mod experiments;
pub mod faults;
pub mod fsck;
pub mod journal;
pub mod matrix;
pub mod pipeline;
pub mod predoracle;
pub mod report;
pub mod service;
pub mod soak;
pub mod store;
pub mod triage;
pub mod vfs;

pub use client::{Client, ClientConfig, ClientError};
pub use experiments::{
    branch_table, instruction_table, mean_speedup, run_experiment, run_workload, speedup_table,
    BenchResult, Experiment,
};
pub use fsck::{fsck, FsckOptions, FsckReport};
pub use journal::{fnv64, JournalConflict, JournalEntry, RecordOutcome, RunJournal};
pub use matrix::{
    request_fingerprint, run_matrix, run_matrix_configured, run_matrix_policy,
    run_matrix_with_stats, run_matrix_workloads, run_matrix_workloads_policy, run_request,
    CellFailure, CellOutcome, CellRequest, CellStat, EngineStats, FailurePayload, FailurePolicy,
    FailureReport, FailureStage, MatrixConfig, MatrixOutput, MatrixRun, RequestConfig,
    RequestFailure, RetryPolicy, MAX_REQUEST_ISSUE,
};
pub use pipeline::{
    compile_model, evaluate, speedup, Degradation, LintError, Model, Pipeline, PipelineError, Stage,
};
pub use report::{format_table, summarize_run, Row, RunSummary};
pub use soak::{run_soak, SoakConfig, SoakFailure, SoakReport, SOAK_EXPERIMENT};
pub use store::{CompactStats, Store, StoreConfig, SyncPolicy, DEFAULT_LOCK_STALE_AFTER};
pub use triage::{load_bundle, minimize_module, minimize_source, Bundle, ReproCell, TriageConfig};
pub use vfs::{Fault, FaultPlan, Vfs, VfsFile};

// Re-export the workspace layers so downstream users need one dependency.
pub use hyperpred_emu as emu;
pub use hyperpred_hyperblock as hyperblock;
pub use hyperpred_ir as ir;
pub use hyperpred_lang as lang;
pub use hyperpred_opt as opt;
pub use hyperpred_partial as partial;
pub use hyperpred_sched as sched;
pub use hyperpred_sim as sim;
pub use hyperpred_workloads as workloads;
